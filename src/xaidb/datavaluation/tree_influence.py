"""Influence of training points on gradient-boosted trees
(Sharchilev et al. 2018, "Finding Influential Training Samples for
Gradient Boosted Decision Trees").

Influence functions need twice-differentiable parametric losses, which
trees lack.  Sharchilev et al.'s **LeafRefit** fixes the ensemble
*structure* (splits stay put) and asks: how would the *leaf values*
change if training point ``i`` were removed?  Each Newton leaf value is
``sum(residuals) / sum(curvatures)`` over the training rows in the leaf,
so removing a row updates the leaf in O(1); chaining through the trees a
row participated in gives the change in any test prediction without
retraining.

This one-step variant ignores the cascade of changed raw scores into
later stages (the paper's LeafInfluence extension tracks it); tests
check the sign/ranking agreement with exact retraining, which is the
guarantee actually used when debugging data.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.gbm import GradientBoostedClassifier, GradientBoostedRegressor
from xaidb.utils.linalg import sigmoid
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["GBM", "LeafRefitInfluence"]

GBM = GradientBoostedClassifier | GradientBoostedRegressor


class LeafRefitInfluence:
    """LeafRefit influence for xaidb gradient-boosted models.

    Parameters
    ----------
    model:
        Fitted GBM (the exact arrays it trained on must be passed too —
        the model does not retain its training data).
    X_train, y_train:
        The training data used to fit ``model``.
    """

    def __init__(
        self, model: GBM, X_train: np.ndarray, y_train: np.ndarray
    ) -> None:
        if not isinstance(
            model, (GradientBoostedClassifier, GradientBoostedRegressor)
        ):
            raise ValidationError("model must be a fitted xaidb GBM")
        if model.trees_ is None:
            raise ValidationError("model must be fitted")
        self.model = model
        self.X_train = check_array(X_train, name="X_train", ndim=2)
        self.y_train = check_array(y_train, name="y_train", ndim=1)
        check_matching_lengths(("X_train", self.X_train), ("y_train", self.y_train))
        self._classification = isinstance(model, GradientBoostedClassifier)
        if self._classification:
            lookup = {label: idx for idx, label in enumerate(model.classes_)}
            self._targets = np.asarray(
                [lookup[label] for label in self.y_train], dtype=float
            )
        else:
            self._targets = self.y_train
        self._precompute()

    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        """Per tree: each training row's leaf, and each leaf's Newton
        numerator/denominator so removals are O(1)."""
        staged = self.model.staged_raw_scores(self.X_train)  # (T+1, n)
        self._tree_stats: list[dict] = []
        for stage, (tree, rows) in enumerate(
            zip(self.model.trees_, self.model.tree_train_rows_)
        ):
            raw = staged[stage]
            leaves = tree.tree_.apply(self.X_train[rows])
            numerators: dict[int, float] = {}
            denominators: dict[int, float] = {}
            membership: dict[int, int] = {}  # training row -> leaf
            contributions: dict[int, tuple[float, float]] = {}
            for row, leaf in zip(rows, leaves):
                membership[int(row)] = int(leaf)
                if self._classification:
                    p = float(sigmoid(raw[row]))
                    residual = self._targets[row] - p
                    curvature = p * (1.0 - p)
                else:
                    residual = self._targets[row] - raw[row]
                    curvature = 1.0
                contributions[int(row)] = (float(residual), float(curvature))
                numerators[int(leaf)] = numerators.get(int(leaf), 0.0) + residual
                denominators[int(leaf)] = (
                    denominators.get(int(leaf), 0.0) + curvature
                )
            self._tree_stats.append(
                {
                    "membership": membership,
                    "numerators": numerators,
                    "denominators": denominators,
                    "contributions": contributions,
                }
            )

    # ------------------------------------------------------------------
    def leaf_value_changes(self, index: int) -> list[dict[int, float]]:
        """Per tree, ``{leaf: delta_value}`` caused by removing training
        point ``index`` (empty dict when the point did not train that
        tree)."""
        if not 0 <= index < len(self.y_train):
            raise ValidationError("index out of range")
        changes = []
        for tree, stats in zip(self.model.trees_, self._tree_stats):
            membership = stats["membership"]
            if index not in membership:
                changes.append({})
                continue
            leaf = membership[index]
            numerator = stats["numerators"][leaf]
            denominator = stats["denominators"][leaf]
            raw_value = tree.tree_.value[leaf, 0]
            residual, curvature = stats["contributions"][index]
            new_denominator = denominator - curvature
            if new_denominator < 1e-12:
                new_value = 0.0
            else:
                new_value = (numerator - residual) / new_denominator
            changes.append({leaf: float(new_value - raw_value)})
        return changes

    def prediction_influence(
        self, index: int, X_test: np.ndarray
    ) -> np.ndarray:
        """Estimated change in the raw model output at each test row if
        training point ``index`` were removed (LeafRefit: structure fixed,
        affected leaves re-estimated)."""
        X_test = check_array(X_test, name="X_test", ndim=2)
        changes = self.leaf_value_changes(index)
        deltas = np.zeros(X_test.shape[0])
        for tree, leaf_changes in zip(self.model.trees_, changes):
            if not leaf_changes:
                continue
            test_leaves = tree.tree_.apply(X_test)
            for leaf, delta in leaf_changes.items():
                deltas[test_leaves == leaf] += self.model.learning_rate * delta
        return deltas

    def influence_ranking(self, X_test: np.ndarray) -> np.ndarray:
        """Training points ranked by total |prediction influence| on the
        test set, most influential first."""
        totals = np.zeros(len(self.y_train))
        for index in range(len(self.y_train)):
            totals[index] = float(
                np.abs(self.prediction_influence(index, X_test)).sum()
            )
        return np.argsort(-totals, kind="mergesort")
