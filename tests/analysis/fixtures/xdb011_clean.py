"""Clean fixture for XDB011: returns never alias the caller's arrays."""

import numpy as np

__all__ = ["Tight"]


class Tight:
    def explain(self, X):
        scores = X[1:]
        return scores.copy()  # explicit copy breaks the alias

    def explain_fresh(self, X):
        return X * 2.0  # arithmetic allocates fresh storage

    def explain_rebound(self, X):
        X = np.array(X)  # rebinding to a copy releases the parameter
        return X.reshape(-1)

    def fit(self, X, y):
        self.X_ = np.array(X)
        return self  # the fluent idiom is exempt
