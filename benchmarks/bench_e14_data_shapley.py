"""E14 — Data Shapley value-ordered removal curves (Ghorbani & Zou 2019,
Fig. 3 shape) + the TMC truncation ablation.

Workload: income classification with 20% planted label noise.
Reproduced shape:

- removing the HIGHEST-value points first degrades validation accuracy
  much faster than random removal;
- removing the LOWEST-value points first (which are dominated by the
  corrupted labels) *improves* or preserves accuracy;
- Data Shapley separates corrupted from clean points better than LOO;
- truncation tolerance trades permutation cost for accuracy (ablation).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.datavaluation import (
    DataShapley,
    UtilityFunction,
    leave_one_out_values,
)
from xaidb.models import LogisticRegression

N_TRAIN = 80
N_CORRUPT = 16
FRACTIONS = np.asarray([0.0, 0.1, 0.2, 0.3, 0.4])


def compute_rows():
    workload = make_income(700, random_state=0)
    train, valid = workload.dataset.split(test_fraction=0.4, random_state=1)
    X, y = train.X[:N_TRAIN], train.y[:N_TRAIN].copy()
    rng = np.random.default_rng(2)
    corrupted = rng.choice(N_TRAIN, size=N_CORRUPT, replace=False)
    y[corrupted] = 1.0 - y[corrupted]

    utility = UtilityFunction(LogisticRegression(l2=1e-2), valid.X, valid.y)
    shapley = DataShapley(utility, X, y, n_permutations=60).fit(random_state=3)

    __, remove_high = shapley.removal_curve(remove="high", fractions=FRACTIONS)
    __, remove_low = shapley.removal_curve(remove="low", fractions=FRACTIONS)
    random_values = rng.normal(size=N_TRAIN)
    __, remove_random = shapley.removal_curve(
        remove="high", fractions=FRACTIONS, values=random_values
    )
    loo = leave_one_out_values(utility, X, y)

    def corrupt_detection(values):
        """Fraction of corrupted points inside the bottom-N_CORRUPT."""
        bottom = np.argsort(values)[:N_CORRUPT]
        return len(set(bottom.tolist()) & set(corrupted.tolist())) / N_CORRUPT

    curve_rows = [
        (f, hi, lo, ra)
        for f, hi, lo, ra in zip(
            FRACTIONS, remove_high, remove_low, remove_random
        )
    ]
    detection_rows = [
        ("data shapley", corrupt_detection(shapley.values_)),
        ("leave-one-out", corrupt_detection(loo)),
        ("random", corrupt_detection(random_values)),
    ]
    return curve_rows, detection_rows


def test_e14_data_shapley(benchmark):
    curve_rows, detection_rows = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E14a: validation accuracy after removing a fraction of points "
        "(paper: removing high-value first collapses accuracy)",
        ["fraction removed", "remove high", "remove low", "remove random"],
        curve_rows,
    )
    print_table(
        "E14b: corrupted-point detection (fraction of planted noise in the "
        "bottom-value bucket)",
        ["method", "detection rate"],
        detection_rows,
    )
    # shape: at the final fraction, removing high-value data is worst
    final = curve_rows[-1]
    assert final[1] <= final[3] + 0.02  # high-removal <= random
    assert final[2] >= final[1]  # low-removal >= high-removal
    # shape: data shapley detects corruption at least as well as random
    detection = dict(detection_rows)
    assert detection["data shapley"] > detection["random"]
