"""xaidb.runtime — the shared evaluation substrate (tutorial cost model).

Every perturbation-based explanation method the tutorial surveys spends
its budget the same way: many model evaluations over perturbed inputs.
This package is where that budget is managed for the whole system:

- :class:`GameRuntime` — batch-aware coalition/value memoisation with
  bounded-memory chunked evaluation (``max_batch_rows``);
- :class:`CoalitionCache` — the underlying mask-keyed memo store;
- :func:`parallel_map` — opt-in, seed-deterministic process-pool map for
  embarrassingly parallel outer loops (TMC permutations, permutation
  draws, multi-instance batches);
- :class:`EvalStats` — the evaluation ledger (``n_model_evals``,
  ``cache_hit_rate``, ``wall_time_s``) surfaced in every
  :class:`~xaidb.explainers.base.FeatureAttribution`'s metadata;
- :class:`RuntimeConfig` — the knobs, one object threaded through all
  consumers.

See ``docs/RUNTIME.md`` for the full tour.
"""

from xaidb.runtime.cache import CoalitionCache
from xaidb.runtime.evaluator import GameRuntime, RuntimeConfig
from xaidb.runtime.parallel import parallel_map
from xaidb.runtime.stats import EvalStats

__all__ = [
    "CoalitionCache",
    "EvalStats",
    "GameRuntime",
    "RuntimeConfig",
    "parallel_map",
]
