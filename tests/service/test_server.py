"""Integration tests for the asyncio explanation server.

The invariants the serving layer stakes its correctness on:

1. **Coalescing changes cost, never results** — responses from a
   micro-batched burst are bitwise equal to the per-request serial
   explainer calls;
2. **deadlines are enforced** — a request whose budget elapses gets a
   typed :class:`DeadlineExceededError`, and expired work is dropped
   before dispatch when possible;
3. **overload sheds, it doesn't buffer** — beyond ``max_queue_depth``
   submissions fail fast with :class:`LoadShedError`;
4. dispatch failures (unknown model/explainer, backend bugs) surface as
   typed :class:`ServiceError`\\ s, not hangs.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from xaidb.data import make_income
from xaidb.explainers.base import predict_positive_proba
from xaidb.explainers.lime import LimeExplainer
from xaidb.explainers.shapley import KernelShapExplainer, TreeShapExplainer
from xaidb.models import RandomForestClassifier
from xaidb.rules.anchors import AnchorsExplainer
from xaidb.service import (
    DeadlineExceededError,
    Dispatcher,
    ExplainRequest,
    ExplanationServer,
    LoadShedError,
    ServiceError,
    UnknownExplainerError,
    UnknownModelError,
)

SHAP_CONFIG = {"n_coalitions": 32}
LIME_CONFIG = {"n_samples": 64}
ANCHORS_CONFIG = {
    "batch_size": 32,
    "max_samples_per_candidate": 100,
    "beam_width": 1,
    "max_anchor_size": 2,
}


@pytest.fixture(scope="module")
def served():
    workload = make_income(250, random_state=3)
    dataset = workload.dataset
    model = RandomForestClassifier(
        n_estimators=5, max_depth=4, random_state=0
    ).fit(dataset.X, dataset.y)
    predict_fn = predict_positive_proba(model)
    dispatcher = Dispatcher()
    dispatcher.register_model(
        "forest", predict_fn, dataset=dataset, background=dataset.X[:16]
    )
    return dispatcher, dataset, predict_fn


# ------------------------------------------------------------ coalescing
def test_batched_responses_bitwise_equal_serial(served):
    dispatcher, dataset, predict_fn = served

    async def burst():
        async with ExplanationServer(
            dispatcher, max_batch_size=16, max_wait_s=0.05
        ) as server:
            requests = [
                ExplainRequest(
                    model="forest",
                    explainer=explainer,
                    instance=dataset.X[i],
                    config=config,
                    random_state=900 + i,
                )
                for explainer, config in (
                    ("kernel_shap", SHAP_CONFIG),
                    ("lime", LIME_CONFIG),
                    ("anchors", ANCHORS_CONFIG),
                )
                for i in range(3)
            ]
            responses = await asyncio.gather(
                *(server.submit(request) for request in requests)
            )
            return requests, responses, server.stats

    requests, responses, stats = asyncio.run(burst())

    # every same-key triple shared one dispatched batch
    assert all(response.batch_size == 3 for response in responses)
    assert stats.n_completed == 9
    assert stats.mean_batch_size == pytest.approx(3.0)
    # the composed runtime ledger saw the batches' model evaluations
    assert stats.runtime.n_model_evals > 0

    shap = KernelShapExplainer(
        predict_fn, dataset.X[:16], **SHAP_CONFIG
    )
    lime = LimeExplainer(dataset, **LIME_CONFIG)
    anchors = AnchorsExplainer(predict_fn, dataset, **ANCHORS_CONFIG)
    for request, response in zip(requests, responses):
        seed = request.random_state
        if request.explainer == "kernel_shap":
            serial = shap.explain(request.instance, random_state=seed)
            assert np.array_equal(response.result.values, serial.values)
        elif request.explainer == "lime":
            serial = lime.explain(
                predict_fn, request.instance, random_state=seed
            )
            assert np.array_equal(response.result.values, serial.values)
        else:
            serial = anchors.explain(request.instance, random_state=seed)
            assert response.result.predicates == serial.predicates
            assert response.result.precision == serial.precision


def test_distinct_configs_do_not_coalesce(served):
    dispatcher, dataset, _ = served

    async def burst():
        async with ExplanationServer(
            dispatcher, max_batch_size=16, max_wait_s=0.05
        ) as server:
            requests = [
                ExplainRequest(
                    model="forest",
                    explainer="kernel_shap",
                    instance=dataset.X[i],
                    config={"n_coalitions": 32 + 16 * i},
                    random_state=i,
                )
                for i in range(3)
            ]
            return await asyncio.gather(
                *(server.submit(request) for request in requests)
            )

    responses = asyncio.run(burst())
    assert all(response.batch_size == 1 for response in responses)


def test_tree_shap_backend_bitwise_equal_per_row():
    workload = make_income(250, random_state=3)
    dataset = workload.dataset
    model = RandomForestClassifier(
        n_estimators=5, max_depth=4, random_state=0
    ).fit(dataset.X, dataset.y)
    dispatcher = Dispatcher()
    dispatcher.register_model(
        "forest", predict_positive_proba(model), model=model
    )

    async def burst():
        async with ExplanationServer(
            dispatcher, max_batch_size=16, max_wait_s=0.05
        ) as server:
            requests = [
                ExplainRequest(
                    model="forest",
                    explainer="tree_shap",
                    instance=dataset.X[i],
                    config={},
                    random_state=i,
                )
                for i in range(5)
            ]
            responses = await asyncio.gather(
                *(server.submit(request) for request in requests)
            )
            return responses

    responses = asyncio.run(burst())
    assert all(response.batch_size == 5 for response in responses)
    reference = TreeShapExplainer(model)
    for i, response in enumerate(responses):
        serial = reference.explain(dataset.X[i])
        assert np.array_equal(response.result.values, serial.values)
        assert response.result.base_value == serial.base_value
        assert response.result.metadata["batched"] is True


# ----------------------------------------------------- deadlines / shed
def _slow_backend_dispatcher(sleep_s: float) -> Dispatcher:
    dispatcher = Dispatcher()
    dispatcher.register_model("m", lambda X: np.zeros(len(X)))

    def factory(entry, config):
        def run(instances, seeds):
            time.sleep(sleep_s)
            return [float(i) for i in range(len(instances))], None

        return run

    dispatcher.register_explainer("slow", factory)
    return dispatcher


def test_deadline_expiry_raises_typed_error():
    dispatcher = _slow_backend_dispatcher(sleep_s=0.5)

    async def run():
        async with ExplanationServer(dispatcher, max_wait_s=0.0) as server:
            with pytest.raises(DeadlineExceededError):
                await server.submit(
                    ExplainRequest(
                        model="m",
                        explainer="slow",
                        instance=np.zeros(2),
                        deadline_s=0.05,
                    )
                )
            return server.stats

    stats = asyncio.run(run())
    assert stats.n_deadline_expired == 1
    assert stats.n_completed == 0


def test_expired_requests_dropped_before_dispatch():
    """A request whose deadline passes while queued never reaches the
    back-end: the dispatcher drops it and the caller gets the typed
    error (here the queue stalls behind a slow in-flight batch)."""
    dispatcher = _slow_backend_dispatcher(sleep_s=0.3)

    async def run():
        async with ExplanationServer(
            dispatcher,
            max_batch_size=1,
            max_wait_s=0.0,
            max_inflight_batches=1,
        ) as server:
            first = asyncio.create_task(
                server.submit(
                    ExplainRequest(
                        model="m", explainer="slow", instance=np.zeros(2)
                    )
                )
            )
            await asyncio.sleep(0.05)  # first batch now in flight
            with pytest.raises(DeadlineExceededError):
                await server.submit(
                    ExplainRequest(
                        model="m",
                        explainer="slow",
                        instance=np.zeros(2),
                        deadline_s=0.05,
                    )
                )
            response = await first
            return response, server.stats

    response, stats = asyncio.run(run())
    assert response.result == 0.0  # the in-flight request still lands
    assert stats.n_deadline_expired == 1
    assert stats.n_completed == 1


def test_load_shedding_rejects_with_typed_error():
    dispatcher = _slow_backend_dispatcher(sleep_s=0.3)

    async def run():
        async with ExplanationServer(
            dispatcher,
            max_queue_depth=2,
            max_batch_size=1,
            max_wait_s=0.0,
            max_inflight_batches=1,
        ) as server:
            pending = []
            for _ in range(3):  # 1 in flight + 2 queued = saturated
                pending.append(
                    asyncio.create_task(
                        server.submit(
                            ExplainRequest(
                                model="m",
                                explainer="slow",
                                instance=np.zeros(2),
                            )
                        )
                    )
                )
                # let the serve loop drain before the next submission so
                # saturation builds up deterministically
                await asyncio.sleep(0.02)
            with pytest.raises(LoadShedError):
                await server.submit(
                    ExplainRequest(
                        model="m", explainer="slow", instance=np.zeros(2)
                    )
                )
            responses = await asyncio.gather(*pending)
            return responses, server.stats

    responses, stats = asyncio.run(run())
    assert len(responses) == 3  # everything admitted completed
    assert stats.n_shed == 1
    assert stats.n_completed == 3
    assert stats.queue_depth_peak == 2


# ------------------------------------------------------- failure paths
def test_unknown_model_and_explainer_are_typed(served):
    dispatcher, dataset, _ = served

    async def run():
        async with ExplanationServer(dispatcher, max_wait_s=0.0) as server:
            with pytest.raises(UnknownModelError):
                await server.submit(
                    ExplainRequest(
                        model="nope",
                        explainer="lime",
                        instance=dataset.X[0],
                    )
                )
            with pytest.raises(UnknownExplainerError):
                await server.submit(
                    ExplainRequest(
                        model="forest",
                        explainer="nope",
                        instance=dataset.X[0],
                    )
                )
            return server.stats

    stats = asyncio.run(run())
    assert stats.n_failed == 2


def test_backend_exception_wrapped_as_service_error():
    dispatcher = Dispatcher()
    dispatcher.register_model("m", lambda X: np.zeros(len(X)))

    def factory(entry, config):
        def run(instances, seeds):
            raise RuntimeError("backend bug")

        return run

    dispatcher.register_explainer("broken", factory)

    async def run():
        async with ExplanationServer(dispatcher, max_wait_s=0.0) as server:
            with pytest.raises(ServiceError, match="backend bug"):
                await server.submit(
                    ExplainRequest(
                        model="m", explainer="broken", instance=np.zeros(2)
                    )
                )

    asyncio.run(run())


def test_submit_requires_running_server(served):
    dispatcher, dataset, _ = served
    server = ExplanationServer(dispatcher)

    async def run():
        with pytest.raises(ServiceError, match="not running"):
            await server.submit(
                ExplainRequest(
                    model="forest", explainer="lime", instance=dataset.X[0]
                )
            )

    asyncio.run(run())


def test_stop_fails_queued_requests():
    dispatcher = _slow_backend_dispatcher(sleep_s=0.2)

    async def run():
        server = ExplanationServer(
            dispatcher,
            max_batch_size=1,
            max_wait_s=0.0,
            max_inflight_batches=1,
        )
        await server.start()
        tasks = [
            asyncio.create_task(
                server.submit(
                    ExplainRequest(
                        model="m", explainer="slow", instance=np.zeros(2)
                    )
                )
            )
            for _ in range(3)
        ]
        await asyncio.sleep(0.05)
        await server.stop()
        return await asyncio.gather(*tasks, return_exceptions=True)

    outcomes = asyncio.run(run())
    # the in-flight batch completes; everything still queued fails typed
    assert sum(1 for o in outcomes if isinstance(o, ServiceError)) == 2
    assert sum(1 for o in outcomes if not isinstance(o, Exception)) == 1
