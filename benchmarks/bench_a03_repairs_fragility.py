"""A3 (extension) — Shapley-based repair explanations + attribution
fragility (tutorial §3 "database repairs" via Deutch et al. 2021;
§2.4 fragility via Ghorbani, Abid & Zou 2019).

Reproduced shapes:

- tuples' Shapley blame for FD violations equals half their conflict
  degree (closed form), and deleting by blame yields a minimal repair;
- a bounded input perturbation that preserves predictions can disrupt
  raw-saliency top-1 features on a sizable fraction of boundary points,
  while SmoothGrad attributions are disrupted no more often.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.attacks import fragility_attack
from xaidb.data import make_two_moons
from xaidb.db import (
    FunctionalDependency,
    Relation,
    greedy_repair,
    inconsistency_count,
    repair_blame,
)
from xaidb.explainers import predict_positive_proba, saliency, smoothgrad
from xaidb.models import MLPClassifier

N_PROBES = 8


def compute_rows():
    # --- repair explanations ------------------------------------------
    relation = Relation.from_dicts(
        "addr",
        [
            {"zip": "10001", "city": "NY"},
            {"zip": "10001", "city": "NY"},
            {"zip": "10001", "city": "LA"},   # conflicts with 0, 1
            {"zip": "90210", "city": "LA"},
            {"zip": "90210", "city": "SF"},   # conflicts with 3
        ],
    )
    fd = FunctionalDependency(lhs=("zip",), rhs=("city",))
    blame = repair_blame(relation, [fd])
    repaired, deleted = greedy_repair(relation, [fd])
    repair_rows = sorted(blame.items(), key=lambda kv: -kv[1])

    # --- fragility ------------------------------------------------------
    moons = make_two_moons(400, random_state=0)
    model = MLPClassifier(
        hidden_sizes=(16, 16), max_iter=600, random_state=0
    ).fit(moons.X, moons.y)
    f = predict_positive_proba(model)
    scores = f(moons.X)
    probes = moons.X[np.argsort(np.abs(scores - 0.5))[:N_PROBES]]

    def attack_success_rate(attribution_fn, seed):
        successes = 0
        for i, x in enumerate(probes):
            result = fragility_attack(
                f, attribution_fn, x,
                radius=0.25, k=1, n_iterations=60,
                max_prediction_change=0.1, random_state=seed + i,
            )
            # xailint: disable=XDB006 (overlap of empty top-k sets is exactly 0.0)
            successes += result.top_k_overlap == 0.0
        return successes / N_PROBES

    fragility_rows = [
        (
            "saliency",
            attack_success_rate(lambda z: saliency(model, z).values, 0),
        ),
        (
            "smoothgrad",
            attack_success_rate(
                lambda z: smoothgrad(
                    model, z, n_samples=20, random_state=0
                ).values,
                0,
            ),
        ),
    ]
    return repair_rows, deleted, inconsistency_count(repaired, [fd]), fragility_rows


def test_a03_repairs_fragility(benchmark):
    repair_rows, deleted, remaining, fragility_rows = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "A3a (extension): Shapley blame for FD violations "
        "(paper: blame = conflict degree / 2; greedy repair deletes "
        "top-blame tuples)",
        ["tuple", "shapley blame"],
        repair_rows,
    )
    print(f"greedy repair deleted {deleted}; remaining violations: {remaining}")
    print_table(
        "A3b (extension): fragility-attack success (top-1 flipped, "
        "prediction preserved) on boundary points",
        ["attribution", "attack success rate"],
        fragility_rows,
    )
    blame = dict(repair_rows)
    # closed form: addr:2 in 2 conflicts -> 1.0; addr:4 in 1 -> 0.5
    # xailint: disable=XDB006 (blame is a ratio of small integer counts, exact in IEEE)
    assert blame["addr:2"] == 1.0
    # xailint: disable=XDB006 (blame is a ratio of small integer counts, exact in IEEE)
    assert blame["addr:4"] == 0.5
    assert remaining == 0
    assert deleted[0] == "addr:2"
    by_method = dict(fragility_rows)
    # raw saliency is attackable on boundary points...
    assert by_method["saliency"] >= 0.25
    # ...and smoothing does not make things worse
    assert by_method["smoothgrad"] <= by_method["saliency"] + 0.25
