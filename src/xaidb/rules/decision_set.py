"""Interpretable decision sets (Lakkaraju, Bach & Leskovec 2016).

A decision set is an *unordered* collection of independent if-then rules.
Following the paper, candidate rules are mined as frequent predicate
itemsets per class, then a subset is selected by maximising a joint
objective that rewards accuracy and penalises the interpretability costs
— number of rules, total rule length, inter-rule overlap and uncovered
points — via greedy construction plus add/remove/swap local search (the
paper's smooth local search has the same ⅖-approximation flavour; the
objective here is the paper's up to constant weights).

Prediction: an instance takes the class of the highest-precision rule
covering it, falling back to the majority class.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["Predicate", "Rule", "DecisionSetClassifier"]


@dataclass(frozen=True)
class Predicate:
    """``feature in bin`` (numeric) or ``feature == code`` (categorical)."""

    column: int
    kind: str  # "bin" | "eq"
    value: int  # bin index or category code
    text: str

    def evaluate(self, bins: np.ndarray, rows: np.ndarray) -> np.ndarray:
        if self.kind == "eq":
            return rows[:, self.column] == float(self.value)
        return bins[:, self.column] == self.value


@dataclass(frozen=True)
class Rule:
    """An if-then rule: a conjunction of predicates implying a class."""

    predicates: tuple[Predicate, ...]
    target_class: int
    precision: float
    support: int

    @property
    def length(self) -> int:
        return len(self.predicates)

    def covers(self, bins: np.ndarray, rows: np.ndarray) -> np.ndarray:
        mask = np.ones(rows.shape[0], dtype=bool)
        for predicate in self.predicates:
            mask &= predicate.evaluate(bins, rows)
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " AND ".join(p.text for p in self.predicates)
        return (
            f"IF {body} THEN class={self.target_class} "
            f"(precision={self.precision:.2f}, support={self.support})"
        )


class DecisionSetClassifier:
    """Interpretable decision set learner.

    Parameters
    ----------
    max_rules:
        Interpretability budget on the number of selected rules.
    max_rule_length:
        Predicates per rule (the tutorial: rules beyond ~5 clauses are
        incomprehensible).
    n_bins:
        Quantile bins for numeric predicates.
    min_support:
        Minimum fraction of rows a candidate rule must cover.
    lambda_overlap / lambda_length:
        Interpretability penalty weights in the selection objective.
    """

    def __init__(
        self,
        *,
        max_rules: int = 8,
        max_rule_length: int = 3,
        n_bins: int = 3,
        min_support: float = 0.05,
        min_precision: float = 0.55,
        lambda_overlap: float = 0.1,
        lambda_length: float = 0.02,
        n_search_iterations: int = 200,
        random_state: RandomState = None,
    ) -> None:
        if max_rules < 1 or max_rule_length < 1:
            raise ValidationError("budgets must be >= 1")
        self.max_rules = max_rules
        self.max_rule_length = max_rule_length
        self.n_bins = n_bins
        self.min_support = min_support
        self.min_precision = min_precision
        self.lambda_overlap = lambda_overlap
        self.lambda_length = lambda_length
        self.n_search_iterations = n_search_iterations
        self.random_state = random_state
        self.rules_: list[Rule] | None = None
        self.default_class_: int | None = None
        self._bin_edges: dict[int, np.ndarray] | None = None
        self._dataset: Dataset | None = None

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "DecisionSetClassifier":
        if dataset.y is None:
            raise ValidationError("dataset must be labelled")
        self._dataset = dataset
        labels = dataset.y.astype(int)
        self.default_class_ = int(np.bincount(labels).argmax())
        self._bin_edges = {
            col: np.unique(
                np.quantile(
                    dataset.X[:, col], np.linspace(0, 1, self.n_bins + 1)[1:-1]
                )
            )
            for col in dataset.numeric_indices
        }
        bins = self._binned(dataset.X)
        candidates = self._mine_candidates(dataset, bins, labels)
        self.rules_ = self._select(candidates, dataset, bins, labels)
        return self

    def _binned(self, rows: np.ndarray) -> np.ndarray:
        bins = np.zeros_like(rows, dtype=int)
        for col, edges in self._bin_edges.items():
            bins[:, col] = np.searchsorted(edges, rows[:, col], side="right")
        return bins

    # ------------------------------------------------------------------
    def _all_predicates(self, dataset: Dataset) -> list[Predicate]:
        predicates = []
        for col, spec in enumerate(dataset.features):
            if spec.is_categorical:
                for code_value in np.unique(dataset.X[:, col]):
                    predicates.append(
                        Predicate(
                            column=col,
                            kind="eq",
                            value=int(code_value),
                            text=f"{spec.name} = {spec.decode(code_value)}",
                        )
                    )
            else:
                edges = self._bin_edges[col]
                n_bins_here = len(edges) + 1
                for b in range(n_bins_here):
                    if b == 0 and len(edges):
                        text = f"{spec.name} <= {edges[0]:.3g}"
                    elif b == len(edges) and len(edges):
                        text = f"{spec.name} > {edges[-1]:.3g}"
                    elif len(edges):
                        text = f"{edges[b-1]:.3g} < {spec.name} <= {edges[b]:.3g}"
                    else:
                        text = f"{spec.name} = any"
                    predicates.append(
                        Predicate(column=col, kind="bin", value=b, text=text)
                    )
        return predicates

    def _mine_candidates(
        self, dataset: Dataset, bins: np.ndarray, labels: np.ndarray
    ) -> list[Rule]:
        """Enumerate conjunctions up to ``max_rule_length`` predicates
        (one per feature), keeping those meeting support and precision."""
        predicates = self._all_predicates(dataset)
        n = dataset.n_rows
        min_count = max(1, int(self.min_support * n))
        # precompute coverage of single predicates
        coverage = {
            p: p.evaluate(bins, dataset.X) for p in predicates
        }
        candidates: list[Rule] = []
        classes = np.unique(labels)

        def consider(predicate_combo: tuple[Predicate, ...]) -> None:
            columns = [p.column for p in predicate_combo]
            if len(set(columns)) != len(columns):
                return
            mask = np.ones(n, dtype=bool)
            for p in predicate_combo:
                mask &= coverage[p]
            support = int(mask.sum())
            if support < min_count:
                return
            covered_labels = labels[mask]
            for cls in classes:
                precision = float(np.mean(covered_labels == cls))
                if precision >= self.min_precision:
                    candidates.append(
                        Rule(
                            predicates=predicate_combo,
                            target_class=int(cls),
                            precision=precision,
                            support=support,
                        )
                    )

        for length in range(1, self.max_rule_length + 1):
            for combo in combinations(predicates, length):
                consider(combo)
        return candidates

    # ------------------------------------------------------------------
    def _objective(
        self,
        selected: list[Rule],
        dataset: Dataset,
        bins: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        """Accuracy minus interpretability penalties (higher is better)."""
        if not selected:
            return -np.inf
        predictions = self._predict_with(selected, dataset.X, bins)
        accuracy = float(np.mean(predictions == labels))
        total_length = sum(r.length for r in selected)
        overlap = 0.0
        masks = [r.covers(bins, dataset.X) for r in selected]
        for i in range(len(selected)):
            for j in range(i + 1, len(selected)):
                if selected[i].target_class != selected[j].target_class:
                    overlap += float(np.mean(masks[i] & masks[j]))
        return (
            accuracy
            - self.lambda_length * total_length
            - self.lambda_overlap * overlap
        )

    def _select(
        self,
        candidates: list[Rule],
        dataset: Dataset,
        bins: np.ndarray,
        labels: np.ndarray,
    ) -> list[Rule]:
        if not candidates:
            return []
        rng = check_random_state(self.random_state)
        # greedy seed
        selected: list[Rule] = []
        pool = sorted(candidates, key=lambda r: (-r.precision, -r.support))
        for rule in pool:
            if len(selected) >= self.max_rules:
                break
            trial = selected + [rule]
            if self._objective(trial, dataset, bins, labels) > self._objective(
                selected, dataset, bins, labels
            ):
                selected = trial
        if not selected:
            selected = [pool[0]]
        # local search: add / remove / swap
        best_score = self._objective(selected, dataset, bins, labels)
        for _ in range(self.n_search_iterations):
            move = rng.integers(0, 3)
            trial = list(selected)
            if move == 0 and len(trial) < self.max_rules:
                trial.append(candidates[int(rng.integers(0, len(candidates)))])
            elif move == 1 and len(trial) > 1:
                trial.pop(int(rng.integers(0, len(trial))))
            elif len(trial) >= 1:
                trial[int(rng.integers(0, len(trial)))] = candidates[
                    int(rng.integers(0, len(candidates)))
                ]
            score = self._objective(trial, dataset, bins, labels)
            if score > best_score:
                selected, best_score = trial, score
        return selected

    # ------------------------------------------------------------------
    def _predict_with(
        self, rules: list[Rule], rows: np.ndarray, bins: np.ndarray
    ) -> np.ndarray:
        predictions = np.full(rows.shape[0], self.default_class_, dtype=int)
        best_precision = np.zeros(rows.shape[0])
        for rule in rules:
            mask = rule.covers(bins, rows)
            better = mask & (rule.precision > best_precision)
            predictions[better] = rule.target_class
            best_precision[better] = rule.precision
        return predictions

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.rules_ is None:
            raise NotFittedError("DecisionSetClassifier is not fitted")
        X = check_array(X, name="X", ndim=2)
        return self._predict_with(self.rules_, X, self._binned(X)).astype(float)

    def describe(self) -> str:
        """Human-readable rendering of the decision set."""
        if self.rules_ is None:
            raise NotFittedError("DecisionSetClassifier is not fitted")
        lines = [repr(rule) for rule in self.rules_]
        lines.append(f"ELSE class={self.default_class_}")
        return "\n".join(lines)

    @property
    def total_length(self) -> int:
        """Sum of rule lengths — the interpretability cost reported in E12."""
        if self.rules_ is None:
            raise NotFittedError("DecisionSetClassifier is not fitted")
        return sum(rule.length for rule in self.rules_)
