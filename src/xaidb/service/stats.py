"""Serving-side accounting: latency percentiles, queueing, batching.

:class:`ServiceStats` is to the serving layer what
:class:`~xaidb.runtime.stats.EvalStats` is to the evaluation substrate —
and it *composes* with it: every dispatched batch folds the explainer's
evaluation ledger into :attr:`ServiceStats.runtime`, so one object
answers both "how fast are responses?" (p50/p95/p99, shed and deadline
counts, batch-size histogram) and "how much model work bought them?"
(rows scored, cache behaviour, eviction pressure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from xaidb.exceptions import ValidationError
from xaidb.runtime.stats import EvalStats

__all__ = ["ServiceStats"]

#: Completed-request latencies kept for percentile estimation; beyond
#: this the buffer wraps (most-recent window) so a long-running server's
#: stats object cannot grow without bound — the same discipline the
#: bounded :class:`~xaidb.runtime.cache.CoalitionCache` follows.
DEFAULT_MAX_LATENCY_SAMPLES = 65536


@dataclass
class ServiceStats:
    """Counters and latency record for one explanation server.

    Attributes
    ----------
    n_received / n_completed / n_failed:
        Requests accepted into the queue, answered successfully, and
        failed in dispatch (backend error, unknown model/explainer).
    n_shed:
        Requests rejected at the door because the queue was full.
    n_deadline_expired:
        Requests whose deadline elapsed before completion (dropped
        pre-dispatch or discarded post-dispatch).
    n_batches:
        Dispatched micro-batches; ``batch_sizes`` histograms their
        sizes, so ``mean_batch_size`` measures how much coalescing the
        traffic actually admitted.
    queue_depth_peak:
        High-water mark of the bounded request queue.
    runtime:
        The composed :class:`~xaidb.runtime.stats.EvalStats` — every
        dispatched batch's evaluation ledger merged into one.
    """

    n_received: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_shed: int = 0
    n_deadline_expired: int = 0
    n_batches: int = 0
    queue_depth_peak: int = 0
    batch_sizes: dict[int, int] = field(default_factory=dict)
    runtime: EvalStats = field(default_factory=EvalStats)
    max_latency_samples: int = DEFAULT_MAX_LATENCY_SAMPLES
    _latencies: list[float] = field(default_factory=list, repr=False)
    _ring_next: int = field(default=0, repr=False)

    # ------------------------------------------------------------- record
    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def record_completion(self, latency_s: float) -> None:
        self.n_completed += 1
        if len(self._latencies) < self.max_latency_samples:
            self._latencies.append(float(latency_s))
        else:
            # wrap: keep a most-recent window without unbounded growth
            self._latencies[self._ring_next] = float(latency_s)
            self._ring_next = (
                self._ring_next + 1
            ) % self.max_latency_samples

    # ---------------------------------------------------------- percentiles
    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of recorded latencies (seconds).

        ``percentile(50)`` on ``n`` sorted samples returns the
        ``ceil(n/2)``-th — the textbook nearest-rank definition, chosen
        over interpolation so the reported p99 is a latency some request
        actually paid.  Returns 0.0 before any completion.
        """
        if not 0.0 < q <= 100.0:
            raise ValidationError("q must be in (0, 100]")
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_s(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    @property
    def n_latency_samples(self) -> int:
        return len(self._latencies)

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * n for size, n in self.batch_sizes.items())
        return total / self.n_batches if self.n_batches else 0.0

    # ------------------------------------------------------------- compose
    def merge_runtime(self, stats: EvalStats | None) -> None:
        """Fold one dispatched batch's evaluation ledger into
        :attr:`runtime` (None-tolerant for backends without a ledger)."""
        if stats is not None:
            self.runtime.merge(stats)

    def as_metadata(self) -> dict[str, Any]:
        """One serialisable block: serving counters + latency
        percentiles + the composed evaluation ledger."""
        return {
            "n_received": int(self.n_received),
            "n_completed": int(self.n_completed),
            "n_failed": int(self.n_failed),
            "n_shed": int(self.n_shed),
            "n_deadline_expired": int(self.n_deadline_expired),
            "n_batches": int(self.n_batches),
            "queue_depth_peak": int(self.queue_depth_peak),
            "mean_batch_size": float(self.mean_batch_size),
            "batch_size_hist": {
                str(size): int(count)
                for size, count in sorted(self.batch_sizes.items())
            },
            "p50_s": float(self.p50_s),
            "p95_s": float(self.p95_s),
            "p99_s": float(self.p99_s),
            "runtime": self.runtime.as_metadata(),
        }
