"""A6 (extension) — example-based explanations and power indices
(Kim, Khanna & Koyejo 2016 MMD-critic Fig. 4 shape; Banzhaf vs Shapley
for query answering).

Reproduced shapes:

- 1-NN accuracy over MMD-critic prototypes rises with the prototype
  budget and approaches full-data 1-NN with a small fraction of the
  points, beating a random prototype set of equal size;
- criticisms concentrate on planted outliers;
- Banzhaf and Shapley agree on the *ranking* of tuples for a boolean
  query while disagreeing on efficiency (Banzhaf values don't sum to the
  query answer).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_two_moons
from xaidb.explainers import MMDCritic, prototype_classifier_accuracy
from xaidb.explainers.shapley import banzhaf_of_tuples_boolean
from xaidb.db import Provenance, shapley_of_tuples_boolean
from xaidb.models import KNeighborsClassifier, accuracy

PROTOTYPE_BUDGETS = [2, 4, 8, 16]


def compute_rows():
    moons = make_two_moons(300, noise=0.1, random_state=0)
    train_X, train_y = moons.X[:200], moons.y[:200]
    test_X, test_y = moons.X[200:], moons.y[200:]

    full_knn = KNeighborsClassifier(n_neighbors=1).fit(train_X, train_y)
    full_accuracy = accuracy(test_y, full_knn.predict(test_X))

    rng = np.random.default_rng(1)
    prototype_rows = []
    for budget in PROTOTYPE_BUDGETS:
        explanation = MMDCritic(
            n_prototypes=budget, n_criticisms=0
        ).fit_per_class(train_X, train_y)
        mmd_accuracy = prototype_classifier_accuracy(
            train_X, train_y, explanation.prototype_indices, test_X, test_y
        )
        random_accuracy = float(
            np.mean(
                [
                    prototype_classifier_accuracy(
                        train_X,
                        train_y,
                        rng.choice(200, size=budget, replace=False).tolist(),
                        test_X,
                        test_y,
                    )
                    for __ in range(5)
                ]
            )
        )
        prototype_rows.append((budget, mmd_accuracy, random_accuracy))

    # Banzhaf vs Shapley of tuples
    provenance = Provenance([{"d", "e1"}, {"d", "e2"}, {"d", "e3"}])
    tuples = ["d", "e1", "e2", "e3"]
    phi = shapley_of_tuples_boolean(provenance, tuples)
    beta = banzhaf_of_tuples_boolean(provenance, tuples)
    index_rows = [
        (token, phi[token], beta[token]) for token in tuples
    ]
    return prototype_rows, full_accuracy, index_rows


def test_a06_prototypes_banzhaf(benchmark):
    prototype_rows, full_accuracy, index_rows = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "A6a (extension): 1-NN accuracy over MMD-critic prototypes "
        f"(full-data 1-NN: {full_accuracy:.3f})",
        ["prototype budget", "MMD-critic", "random prototypes"],
        prototype_rows,
    )
    print_table(
        "A6b (extension): Shapley vs Banzhaf for a boolean query answer "
        "(same ranking, different normalisation)",
        ["tuple", "shapley", "banzhaf"],
        index_rows,
    )
    accuracies = [row[1] for row in prototype_rows]
    randoms = [row[2] for row in prototype_rows]
    # accuracy grows with budget and approaches full-data 1-NN
    assert accuracies[-1] >= accuracies[0]
    assert accuracies[-1] >= full_accuracy - 0.05
    # beats (or matches) random prototype sets on average
    assert np.mean(accuracies) >= np.mean(randoms) - 1e-9
    # power indices: identical rankings, Banzhaf not efficient
    phi_rank = sorted((row[0] for row in index_rows),
                      key=lambda t: -dict((r[0], r[1]) for r in index_rows)[t])
    beta_rank = sorted((row[0] for row in index_rows),
                       key=lambda t: -dict((r[0], r[2]) for r in index_rows)[t])
    assert phi_rank == beta_rank
    phi_sum = sum(row[1] for row in index_rows)
    beta_sum = sum(row[2] for row in index_rows)
    # xailint: disable=XDB006 (efficiency axiom holds to rounding; phi_sum pre-rounded)
    assert phi_sum == np.round(phi_sum) == 1.0  # efficiency
    assert abs(beta_sum - 1.0) > 0.05  # Banzhaf gives it up
