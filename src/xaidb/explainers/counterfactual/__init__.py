"""Counterfactual explanations and algorithmic recourse (tutorial §2.1.4).

- :mod:`base` — containers, distance/feasibility machinery and the
  validity/proximity/sparsity/diversity quality metrics every method is
  evaluated on;
- :mod:`dice` — DiCE-style diverse counterfactual search;
- :mod:`geco` — GeCo-style genetic search under plausibility and
  feasibility constraints;
- :mod:`lewis` — LEWIS-style probabilistic contrastive counterfactuals
  (necessity/sufficiency scores) and SCM-grounded recourse;
- :mod:`recourse` — exact minimal-cost recourse for linear classifiers.
"""

from xaidb.explainers.counterfactual.base import (
    ActionSpace,
    Counterfactual,
    CounterfactualSet,
    mad_distance,
)
from xaidb.explainers.counterfactual.dice import DiceExplainer
from xaidb.explainers.counterfactual.geco import GecoExplainer
from xaidb.explainers.counterfactual.lewis import (
    LewisExplainer,
    NecessitySufficiencyScores,
)
from xaidb.explainers.counterfactual.recourse import (
    LinearRecourse,
    RecourseAction,
)

__all__ = [
    "Counterfactual",
    "CounterfactualSet",
    "ActionSpace",
    "mad_distance",
    "DiceExplainer",
    "GecoExplainer",
    "LewisExplainer",
    "NecessitySufficiencyScores",
    "LinearRecourse",
    "RecourseAction",
]
