"""Typestate & exception-flow rules (XDB028–XDB032).

The lifecycle tier: five silent-unless-provable rules built on the
pass F typestate summaries (:mod:`xaidb.analysis.typestate`) and the
pass G may-raise summaries (:mod:`xaidb.analysis.raises`).

- **XDB028** ``use-before-fit`` — a protocol operation that needs an
  enabling call first (``predict`` before ``fit``, ``submit`` before
  ``start``) is provably reached in the not-yet-enabled state on every
  path;
- **XDB029** ``use-after-close`` — a protocol operation provably
  reached after the terminal call (``map`` after ``close``,
  ``put_nowait`` after ``drain_nowait``) on every path;
- **XDB030** ``unawaited-coroutine`` — a coroutine is created as a
  bare expression statement and discarded, so its body never runs;
- **XDB031** ``untyped-exception-escapes-service-boundary`` — a task
  spawned into the server's fire-and-forget fan-out
  (``create_task``/``ensure_future``) provably raises a
  non-``ServiceError``, which the event loop swallows;
- **XDB032** ``swallowed-exception`` — a broad ``except`` whose body
  discards the exception on every path (no re-raise, no log, no read
  of the bound name).  Every XDB032 site is also an XDB005
  (broad-except) site; XDB005 points at the overly-wide *catch*,
  XDB032 at the silent *discard* — fixing the discard (log/re-raise)
  clears XDB032 while XDB005 may legitimately stay suppressed.

All five stay silent unless the violation is provable: typestate
proofs require every non-escaped automaton label to agree, may-raise
findings fire only on *named* raised types (never on the conservative
⊤ bit), and any object that reaches unknown code is poisoned out of
the proof.
"""

from __future__ import annotations

import ast

from xaidb.analysis.callgraph import dotted_name
from xaidb.analysis.dataflow import calls_dynamic_scope
from xaidb.analysis.raises import (
    decode_entry,
    is_cancellation,
    is_service_error,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    register,
)
from xaidb.analysis.typestate import PROTOCOLS, Violation

__all__ = [
    "UseBeforeFitRule",
    "UseAfterCloseRule",
    "UnawaitedCoroutineRule",
    "UntypedExceptionEscapesRule",
    "SwallowedExceptionRule",
]

#: Method names whose presence in a file is a necessary condition for a
#: "before"-kind (XDB028) / "after"-kind (XDB029) typestate violation —
#: the cheap syntactic gate that skips the fixpoint for most files.
_BEFORE_METHODS = frozenset(
    method
    for proto in PROTOCOLS
    for (method, _state), (kind, _advice) in proto.illegal.items()
    if kind == "before"
)
_AFTER_METHODS = frozenset(
    method
    for proto in PROTOCOLS
    for (method, _state), (kind, _advice) in proto.illegal.items()
    if kind == "after"
)


def _mentions_any(fn: ast.AST, methods: frozenset[str]) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in methods:
            return True
    return False


def _calls_obligated(interproc, fnode) -> bool:
    """Does ``fnode`` call anything whose summary exports a typestate
    obligation?  Such callers can violate a protocol without ever
    naming an illegal method themselves — the illegal call lives in
    the callee and is consumed at the argument-passing site."""
    for callee in interproc.graph.edges.get(fnode.qualname, ()):
        summary = interproc.summaries.get(callee)
        if summary is not None and summary.typestate_obligations:
            return True
    return False


def _typestate_violations(project: ProjectContext, methods):
    """``(ctx, violation)`` over every analysable function in the scan
    (examples and benchmarks included — lifecycle bugs live in caller
    code, not just inside the package)."""
    interproc = project.interproc()
    for ctx in project.files:
        for fnode in interproc.graph.functions_of(ctx):
            if calls_dynamic_scope(fnode.node):
                continue
            if not _mentions_any(fnode.node, methods) and not (
                _calls_obligated(interproc, fnode)
            ):
                continue
            cfg, problem, in_states = interproc.solution(
                "typestate", fnode.qualname
            )
            for violation in problem.facts(cfg, in_states).violations:
                yield ctx, violation


def _witness(violation: Violation) -> str:
    if violation.callee:
        return (
            f" (the illegal call is inside "
            f"{violation.callee}:{violation.callee_line})"
        )
    return ""


@register
class UseBeforeFitRule(ProjectRule):
    """XDB028: a lifecycle operation provably runs before the call
    that enables it."""

    rule_id = "XDB028"
    symbol = "use-before-fit"
    description = (
        "A protocol operation that requires an enabling call first — "
        "predict/explain before fit, submit before start — is provably "
        "reached in the not-yet-enabled state on every path"
    )

    def check_project(self, project: ProjectContext):
        for ctx, violation in _typestate_violations(
            project, _BEFORE_METHODS
        ):
            if violation.kind != "before":
                continue
            states = "/".join(violation.states)
            yield ctx.finding(
                self,
                violation.node,
                f"{violation.method}() on the "
                f"{violation.proto.object_kind} "
                f"({violation.origin}) is provably still in "
                f"state '{states}' here — "
                f"{violation.advice}{_witness(violation)}",
            )


@register
class UseAfterCloseRule(ProjectRule):
    """XDB029: a lifecycle operation provably runs after the terminal
    call."""

    rule_id = "XDB029"
    symbol = "use-after-close"
    description = (
        "A protocol operation provably runs after the object's "
        "terminal call on every path — map/share after close, "
        "put_nowait after drain_nowait, submit after stop"
    )

    def check_project(self, project: ProjectContext):
        for ctx, violation in _typestate_violations(
            project, _AFTER_METHODS
        ):
            if violation.kind != "after":
                continue
            states = "/".join(violation.states)
            yield ctx.finding(
                self,
                violation.node,
                f"{violation.method}() on the "
                f"{violation.proto.object_kind} "
                f"({violation.origin}) is provably already in "
                f"state '{states}' here — "
                f"{violation.advice}{_witness(violation)}",
            )


#: asyncio entry points that return a coroutine/future which is inert
#: until awaited — calling them as a bare statement is always a bug.
_ASYNC_BUILTINS = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.to_thread",
        "asyncio.open_connection",
    }
)


@register
class UnawaitedCoroutineRule(ProjectRule):
    """XDB030: a coroutine object is created and silently discarded."""

    rule_id = "XDB030"
    symbol = "unawaited-coroutine"
    description = (
        "A call that provably returns a coroutine is used as a bare "
        "expression statement — the coroutine is created, never "
        "awaited, and its body never runs"
    )

    def check_project(self, project: ProjectContext):
        interproc = project.interproc()
        graph = interproc.graph
        for ctx in project.files:
            if "async" not in ctx.source:
                continue
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                call = node.value
                name = self._coroutine_name(ctx, graph, call)
                if name is None:
                    continue
                yield ctx.finding(
                    self,
                    call,
                    f"{name}(...) returns a coroutine that is "
                    "never awaited — the statement builds the "
                    "coroutine object and discards it, so its "
                    "body never runs; await it or hand it to "
                    "asyncio.create_task(...)",
                )

    @staticmethod
    def _coroutine_name(
        ctx: FileContext, graph, call: ast.Call
    ) -> str | None:
        site = graph.callsites.get(id(call))
        if site is not None and site.candidates:
            fnodes = [
                graph.functions.get(qualname)
                for qualname in site.candidates
            ]
            if all(
                fnode is not None
                and isinstance(fnode.node, ast.AsyncFunctionDef)
                for fnode in fnodes
            ):
                return site.candidates[0].rpartition(".")[2]
            return None
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        aliases = graph.aliases.get(ctx.module_name, {})
        head, _, tail = dotted.partition(".")
        target = aliases.get(head)
        expanded = (
            f"{target}.{tail}"
            if target is not None and tail
            else (target or dotted)
        )
        if expanded in _ASYNC_BUILTINS or dotted in _ASYNC_BUILTINS:
            return dotted
        return None


@register
class UntypedExceptionEscapesRule(ProjectRule):
    """XDB031: a fire-and-forget task body provably raises something
    the service boundary does not model."""

    rule_id = "XDB031"
    symbol = "untyped-exception-escapes-service-boundary"
    description = (
        "A task spawned with create_task/ensure_future provably raises "
        "a non-ServiceError — fire-and-forget tasks have no awaiter, "
        "so the exception is lost in the event loop instead of "
        "reaching the response fan-out"
    )

    _SPAWNERS = frozenset({"create_task", "ensure_future"})

    def check_project(self, project: ProjectContext):
        interproc = project.interproc()
        graph = interproc.graph
        for ctx in project.files:
            if not any(
                spawner in ctx.source for spawner in self._SPAWNERS
            ):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                spawn_name = (dotted_name(node.func) or "").rpartition(
                    "."
                )[2]
                if spawn_name not in self._SPAWNERS or not node.args:
                    continue
                inner = node.args[0]
                if not isinstance(inner, ast.Call):
                    continue
                site = graph.callsites.get(id(inner))
                if site is None or not site.candidates:
                    continue
                escape = self._first_escape(interproc, site.candidates)
                if escape is None:
                    continue
                type_name, witness, qualname = escape
                short = type_name.rpartition(".")[2]
                yield ctx.finding(
                    self,
                    node,
                    f"task body {qualname.rpartition('.')[2]}() "
                    f"may raise {short} (raised at {witness}) "
                    "which is not a ServiceError — nothing "
                    "awaits this task, so the exception never "
                    "reaches the response fan-out; convert it "
                    "to a ServiceError at the boundary or "
                    "handle it inside the task",
                )

    @staticmethod
    def _first_escape(interproc, candidates):
        for qualname in candidates:
            summary = interproc.summaries.get(qualname)
            if summary is None:
                continue
            for entry in summary.raises_named:
                type_name, witness = decode_entry(entry)
                if is_cancellation(type_name):
                    continue
                if is_service_error(type_name, interproc.graph):
                    continue
                return type_name, witness, qualname
        return None


#: Dotted-name fragments that count as "the handler did something with
#: the error" — logging, reporting, failing the request, exiting.
_HANDLING_TOKENS = (
    "log",
    "warn",
    "print",
    "traceback",
    "exit",
    "set_exception",
    "fail",
)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(element, ast.Name)
            and element.id in _BROAD_NAMES
            for element in node.elts
        )
    return False


def _handler_acts(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise, read the bound exception, or
    call anything that looks like logging/reporting?"""
    bound = handler.name
    for stmt in handler.body:
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(node, ast.Raise):
                return True
            if (
                bound
                and isinstance(node, ast.Name)
                and node.id == bound
            ):
                return True
            if isinstance(node, ast.Call):
                dotted = (dotted_name(node.func) or "").lower()
                if any(tok in dotted for tok in _HANDLING_TOKENS):
                    return True
            stack.extend(ast.iter_child_nodes(node))
    return False


@register
class SwallowedExceptionRule(FileRule):
    """XDB032: a broad except discards the exception on every path."""

    rule_id = "XDB032"
    symbol = "swallowed-exception"
    description = (
        "A broad except (bare / Exception / BaseException) neither "
        "re-raises, reads the caught exception, nor calls anything "
        "that logs or reports it — the failure vanishes without a "
        "trace on every path through the handler"
    )

    def check_file(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _broad_handler(node):
                continue
            if _handler_acts(node):
                continue
            yield ctx.finding(
                self,
                node,
                "broad except swallows the exception: no path "
                "through the handler re-raises, reads the caught "
                "error, or logs it — narrow the except, log the "
                "failure, or re-raise (XDB005 flags the width of "
                "the catch; this flags the silent discard)",
            )
