"""Anchors internals: predicate rendering, conditional sampling and
coverage semantics."""

import numpy as np
import pytest

from xaidb.explainers import predict_positive_proba
from xaidb.rules import AnchorsExplainer


@pytest.fixture(scope="module")
def explainer(income, income_forest):
    return AnchorsExplainer(
        predict_positive_proba(income_forest),
        income.dataset,
        precision_threshold=0.9,
        max_anchor_size=3,
    )


class TestPredicateText:
    def test_categorical_predicate_decodes_label(self, explainer, income):
        gender = income.dataset.feature_index("gender")
        x = income.dataset.X[0]
        text = explainer._predicate_text(gender, x)
        assert text.startswith("gender = ")
        assert text.split("= ")[1] in ("female", "male")

    def test_numeric_predicate_edges(self, explainer, income):
        age = income.dataset.feature_index("age")
        lowest = income.dataset.X[np.argmin(income.dataset.X[:, age])]
        highest = income.dataset.X[np.argmax(income.dataset.X[:, age])]
        assert "<=" in explainer._predicate_text(age, lowest)
        assert ">" in explainer._predicate_text(age, highest)

    def test_middle_bin_renders_interval(self, explainer, income):
        age = income.dataset.feature_index("age")
        median_row = income.dataset.X[
            np.argsort(income.dataset.X[:, age])[income.dataset.n_rows // 2]
        ]
        text = explainer._predicate_text(age, median_row)
        assert text.count("<") >= 1 and "age" in text


class TestConditionalSampling:
    def test_anchored_categorical_pinned(self, explainer, income):
        gender = income.dataset.feature_index("gender")
        x = income.dataset.X[0]
        rng = np.random.default_rng(0)
        samples = explainer._sample_under((gender,), x, 100, rng)
        assert np.all(samples[:, gender] == x[gender])

    def test_anchored_numeric_stays_in_bin(self, explainer, income):
        age = income.dataset.feature_index("age")
        x = income.dataset.X[0]
        target_bin = explainer._bin_of(age, x[age])
        rng = np.random.default_rng(1)
        samples = explainer._sample_under((age,), x, 200, rng)
        sample_bins = explainer._column_bins(age, samples[:, age])
        assert np.all(sample_bins == target_bin)

    def test_unanchored_features_vary(self, explainer, income):
        x = income.dataset.X[0]
        rng = np.random.default_rng(2)
        samples = explainer._sample_under((), x, 100, rng)
        assert len(np.unique(samples[:, 0])) > 10


class TestCoverageSemantics:
    def test_satisfies_is_reflexive(self, explainer, income):
        x = income.dataset.X[5]
        anchor = (0, 1, 4)
        mask = explainer._satisfies(x[None, :], anchor, x)
        assert mask[0]

    def test_empty_anchor_covers_everything(self, explainer, income):
        mask = explainer._satisfies(income.dataset.X, (), income.dataset.X[0])
        assert mask.all()

    def test_longer_anchor_never_increases_coverage(self, explainer, income):
        x = income.dataset.X[3]
        shorter = explainer._satisfies(income.dataset.X, (0,), x).mean()
        longer = explainer._satisfies(income.dataset.X, (0, 1), x).mean()
        assert longer <= shorter + 1e-12
