"""Clean fixture for XDB024: the same transcendentals, arguments
clamped into their domains first."""

import numpy as np

__all__ = ["log_confidence", "root_deficit"]


def log_confidence(margin):
    conf = np.maximum(np.abs(margin), 1e-9)  # proven range [1e-9, inf]
    return np.log(conf)


def root_deficit(delta):
    shortfall = np.maximum(np.minimum(delta, 0.0), 0.0)  # exactly 0
    return np.sqrt(shortfall)
