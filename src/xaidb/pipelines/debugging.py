"""Holding pipeline stages accountable for model behaviour (tutorial §3).

Two complementary attributions:

- **interventional** (:meth:`PipelineDebugger.stage_ablation`): re-run the
  pipeline with each stage ablated, retrain, and measure the validation
  metric — the stage whose removal helps most is blamed (provenance makes
  the replay cheap and exact, including stage RNG seeds);
- **lineage-based** (:meth:`PipelineDebugger.blame_stages_for_rows`):
  given rows already identified as harmful (e.g. by influence functions
  or complaint debugging), use per-stage touch records to find which
  stage last modified them — connecting §2.3 data-based explanations to
  §3 provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Model, clone
from xaidb.pipelines.pipeline import PipelineResult, ProvenancePipeline
from xaidb.utils.validation import check_array

__all__ = ["MetricFn", "StageAttribution", "PipelineDebugger"]

MetricFn = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class StageAttribution:
    """Blame assigned to one pipeline stage."""

    stage_index: int
    stage_name: str
    metric_with_stage: float
    metric_without_stage: float

    @property
    def harm(self) -> float:
        """How much the stage *hurts* the metric (positive = harmful)."""
        return self.metric_without_stage - self.metric_with_stage


class PipelineDebugger:
    """Attribute model errors to pipeline stages.

    Parameters
    ----------
    pipeline:
        The preparation pipeline under suspicion.
    model:
        Template estimator retrained per intervention.
    metric:
        ``metric(y_true, y_pred) -> float`` on the validation set
        (higher = better).
    """

    def __init__(
        self,
        pipeline: ProvenancePipeline,
        model: Model,
        metric: MetricFn,
    ) -> None:
        self.pipeline = pipeline
        self.model = model
        self.metric = metric

    # ------------------------------------------------------------------
    def _train_and_score(
        self,
        result: PipelineResult,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
    ) -> float:
        """Retrain on a pipeline output and score on validation data.

        An ablated pipeline can produce untrainable data (e.g. NaNs when
        the imputation stage is removed); that ablation scores as the
        trivial majority predictor — the stage was essential.
        """
        from xaidb.exceptions import XaidbError

        estimator = clone(self.model)
        try:
            estimator.fit(result.X, result.y)
            predictions = estimator.predict(X_valid)
        except XaidbError:
            values, counts = np.unique(result.y, return_counts=True)
            predictions = np.full_like(y_valid, values[np.argmax(counts)])
        return float(self.metric(y_valid, predictions))

    def stage_ablation(
        self,
        X_raw: np.ndarray,
        y_raw: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
    ) -> list[StageAttribution]:
        """Leave-one-stage-out attribution, sorted most harmful first."""
        X_raw = check_array(X_raw, name="X_raw", ndim=2, ensure_finite=False)
        y_raw = check_array(y_raw, name="y_raw", ndim=1)
        baseline = self._train_and_score(
            self.pipeline.run(X_raw, y_raw), X_valid, y_valid
        )
        attributions = []
        for index, stage in enumerate(self.pipeline.stages):
            ablated = self.pipeline.run_without_stage(X_raw, y_raw, index)
            score = self._train_and_score(ablated, X_valid, y_valid)
            attributions.append(
                StageAttribution(
                    stage_index=index,
                    stage_name=stage.name,
                    metric_with_stage=baseline,
                    metric_without_stage=score,
                )
            )
        attributions.sort(key=lambda a: -a.harm)
        return attributions

    # ------------------------------------------------------------------
    def blame_stages_for_rows(
        self,
        result: PipelineResult,
        harmful_output_rows: Sequence[int],
    ) -> dict[str, int]:
        """Count, per stage, how many of the harmful output rows it
        touched (tracing through lineage to original row ids).  Stages
        that touched many harmful rows are prime suspects."""
        if not harmful_output_rows:
            raise ValidationError("harmful_output_rows is empty")
        counts: dict[str, int] = {record.name: 0 for record in result.records}
        for output_row in harmful_output_rows:
            original = int(result.lineage[int(output_row)])
            for record in result.records:
                if original in record.touched_rows:
                    counts[record.name] += 1
        return dict(sorted(counts.items(), key=lambda item: -item[1]))
