import numpy as np
import pytest

from xaidb.causal import (
    AdditiveNoiseMechanism,
    BernoulliMechanism,
    CausalGraph,
    DiscreteMechanism,
    StructuralCausalModel,
)
from xaidb.exceptions import ValidationError


@pytest.fixture()
def chain_scm():
    """a -> b -> c with unit linear effects."""
    graph = CausalGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
    return StructuralCausalModel(
        graph,
        {
            "a": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
            "b": AdditiveNoiseMechanism(lambda p: 2.0 * p["a"], noise_scale=0.5),
            "c": AdditiveNoiseMechanism(lambda p: 1.0 * p["b"], noise_scale=0.5),
        },
    )


class TestConstruction:
    def test_missing_mechanism_rejected(self):
        graph = CausalGraph(["a", "b"], [("a", "b")])
        with pytest.raises(ValidationError, match="missing mechanisms"):
            StructuralCausalModel(
                graph, {"a": AdditiveNoiseMechanism(lambda p: 0.0)}
            )

    def test_extra_mechanism_rejected(self):
        graph = CausalGraph(["a"], [])
        with pytest.raises(ValidationError, match="unknown nodes"):
            StructuralCausalModel(
                graph,
                {
                    "a": AdditiveNoiseMechanism(lambda p: 0.0),
                    "z": AdditiveNoiseMechanism(lambda p: 0.0),
                },
            )


class TestSampling:
    def test_deterministic_with_seed(self, chain_scm):
        a = chain_scm.sample(50, random_state=0)
        b = chain_scm.sample(50, random_state=0)
        for node in ("a", "b", "c"):
            assert np.array_equal(a[node], b[node])

    def test_linear_effects_in_expectation(self, chain_scm):
        data = chain_scm.sample(20000, random_state=1)
        slope_ab = np.polyfit(data["a"], data["b"], 1)[0]
        assert slope_ab == pytest.approx(2.0, abs=0.05)

    def test_intervention_severs_parents(self, chain_scm):
        data = chain_scm.sample(5000, interventions={"b": 10.0}, random_state=2)
        assert np.all(data["b"] == 10.0)
        # c responds to the intervention
        assert data["c"].mean() == pytest.approx(10.0, abs=0.05)
        # a is unaffected
        assert data["a"].mean() == pytest.approx(0.0, abs=0.05)

    def test_intervention_array_value(self, chain_scm):
        values = np.linspace(0, 1, 100)
        data = chain_scm.sample(100, interventions={"a": values}, random_state=3)
        assert np.array_equal(data["a"], values)

    def test_intervention_on_unknown_node(self, chain_scm):
        with pytest.raises(ValidationError):
            chain_scm.sample(10, interventions={"z": 1.0})

    def test_sample_matrix_column_order(self, chain_scm):
        matrix = chain_scm.sample_matrix(10, ["c", "a"], random_state=4)
        columns = chain_scm.sample(10, random_state=4)
        assert np.array_equal(matrix[:, 0], columns["c"])
        assert np.array_equal(matrix[:, 1], columns["a"])


class TestCounterfactuals:
    def test_identity_counterfactual(self, chain_scm):
        observation = {"a": 1.0, "b": 2.5, "c": 3.0}
        twin = chain_scm.counterfactual(observation, {})
        for node, value in observation.items():
            assert twin[node] == pytest.approx(value)

    def test_counterfactual_propagates_downstream(self, chain_scm):
        observation = {"a": 1.0, "b": 2.5, "c": 3.0}
        # noise: u_b = 2.5 - 2*1 = 0.5 ; u_c = 3 - 2.5 = 0.5
        twin = chain_scm.counterfactual(observation, {"a": 2.0})
        assert twin["b"] == pytest.approx(2 * 2.0 + 0.5)
        assert twin["c"] == pytest.approx(twin["b"] + 0.5)

    def test_counterfactual_upstream_unchanged(self, chain_scm):
        observation = {"a": 1.0, "b": 2.5, "c": 3.0}
        twin = chain_scm.counterfactual(observation, {"b": 0.0})
        assert twin["a"] == pytest.approx(1.0)
        assert twin["b"] == 0.0
        assert twin["c"] == pytest.approx(0.5)

    def test_abduct_requires_full_observation(self, chain_scm):
        with pytest.raises(ValidationError, match="missing"):
            chain_scm.abduct({"a": 1.0})


class TestBernoulliMechanism:
    def test_probability_respected(self):
        graph = CausalGraph(["x"], [])
        scm = StructuralCausalModel(
            graph, {"x": BernoulliMechanism(lambda p: 0.3)}
        )
        data = scm.sample(20000, random_state=0)
        assert data["x"].mean() == pytest.approx(0.3, abs=0.02)

    def test_abduction_reproduces_observation(self):
        mechanism = BernoulliMechanism(lambda p: np.asarray([0.4]))
        noise = mechanism.abduct(np.asarray([1.0]), {})
        assert mechanism.compute({}, noise)[0] == 1.0
        noise0 = mechanism.abduct(np.asarray([0.0]), {})
        assert mechanism.compute({}, noise0)[0] == 0.0

    def test_counterfactual_monotone(self):
        # unit with outcome 1 under p=0.4 keeps outcome 1 when p rises
        mechanism = BernoulliMechanism(lambda p: np.asarray([0.4]))
        noise = mechanism.abduct(np.asarray([1.0]), {})
        higher = BernoulliMechanism(lambda p: np.asarray([0.7]))
        assert higher.compute({}, noise)[0] == 1.0


class TestDiscreteMechanism:
    def test_marginal_probabilities(self):
        graph = CausalGraph(["x"], [])
        scm = StructuralCausalModel(
            graph,
            {
                "x": DiscreteMechanism(
                    categories=(0.0, 1.0, 2.0),
                    probs=lambda p: np.asarray([0.2, 0.5, 0.3]),
                )
            },
        )
        data = scm.sample(30000, random_state=0)
        counts = np.bincount(data["x"].astype(int), minlength=3) / 30000
        assert np.allclose(counts, [0.2, 0.5, 0.3], atol=0.02)

    def test_abduction_roundtrip(self):
        mechanism = DiscreteMechanism(
            categories=(0.0, 1.0, 2.0),
            probs=lambda p: np.asarray([0.2, 0.5, 0.3]),
        )
        for value in (0.0, 1.0, 2.0):
            noise = mechanism.abduct(np.asarray([value]), {})
            assert mechanism.compute({}, noise)[0] == value

    def test_unknown_category_abduction(self):
        mechanism = DiscreteMechanism(
            categories=(0.0, 1.0), probs=lambda p: np.asarray([0.5, 0.5])
        )
        with pytest.raises(ValidationError):
            mechanism.abduct(np.asarray([7.0]), {})

    def test_needs_two_categories(self):
        with pytest.raises(ValidationError):
            DiscreteMechanism(categories=(1.0,), probs=lambda p: None)
