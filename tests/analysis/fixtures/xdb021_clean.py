"""Clean fixture for XDB021: async handlers yield to the loop and hop
blocking work to an executor."""

import asyncio

__all__ = ["serve_one", "serve_two"]


def _train(model, X, y):
    model.fit(X, y)
    return model


async def serve_one(request):
    await asyncio.sleep(0.05)  # cooperative: yields the event loop
    return request


async def serve_two(model, X, y):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _train, model, X, y)
