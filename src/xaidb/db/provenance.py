"""Why-provenance as positive boolean (DNF) polynomials.

Every base tuple carries an atomic provenance token (its tuple id).
Relational operators combine provenance in the usual semiring style:

- **join / conjunction** multiplies: each output monomial is the union of
  one monomial from each side;
- **union / projection / duplicate elimination** adds: monomial sets are
  unioned, with absorption (a monomial that is a superset of another is
  redundant — if ``{a}`` suffices to derive the tuple, ``{a, b}`` adds
  nothing).

A :class:`Provenance` is therefore a set of *witnesses*: minimal sets of
base tuples each sufficient to derive the output tuple.  This is exactly
the structure Shapley-of-tuples and responsibility computations need.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from xaidb.exceptions import ProvenanceError

__all__ = ["Provenance"]


class Provenance:
    """An absorption-minimised DNF over base-tuple ids."""

    __slots__ = ("witnesses",)

    def __init__(self, witnesses: Iterable[frozenset] = ()) -> None:
        self.witnesses: frozenset[frozenset] = _absorb(
            frozenset(frozenset(w) for w in witnesses)
        )

    # ------------------------------------------------------------------
    @classmethod
    def atom(cls, tuple_id: Hashable) -> "Provenance":
        """The provenance of a base tuple: itself."""
        return cls([frozenset([tuple_id])])

    @classmethod
    def empty(cls) -> "Provenance":
        """Unsatisfiable provenance (no derivation)."""
        return cls()

    @classmethod
    def always(cls) -> "Provenance":
        """Trivially true provenance (derivable from nothing — used for
        constants)."""
        return cls([frozenset()])

    # ------------------------------------------------------------------
    def __mul__(self, other: "Provenance") -> "Provenance":
        """Conjunction (join)."""
        return Provenance(
            a | b for a in self.witnesses for b in other.witnesses
        )

    def __add__(self, other: "Provenance") -> "Provenance":
        """Disjunction (union / alternative derivations)."""
        return Provenance(self.witnesses | other.witnesses)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Provenance) and self.witnesses == other.witnesses

    def __hash__(self) -> int:
        return hash(self.witnesses)

    def __bool__(self) -> bool:
        return bool(self.witnesses)

    # ------------------------------------------------------------------
    def lineage(self) -> frozenset:
        """All base tuples appearing in any derivation (the classic
        lineage / why-provenance union)."""
        out: set = set()
        for witness in self.witnesses:
            out |= witness
        return frozenset(out)

    def satisfied_by(self, present: Iterable[Hashable]) -> bool:
        """Whether the tuple is derivable when only ``present`` base
        tuples exist."""
        available = frozenset(present)
        return any(witness <= available for witness in self.witnesses)

    def is_counterfactual_cause(self, tuple_id: Hashable) -> bool:
        """Whether removing ``tuple_id`` alone kills every derivation."""
        if not self.witnesses:
            raise ProvenanceError("tuple has no derivation")
        return all(tuple_id in witness for witness in self.witnesses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.witnesses:
            return "Provenance(⊥)"
        terms = " + ".join(
            "·".join(sorted(map(str, witness))) or "1"
            for witness in sorted(self.witnesses, key=lambda w: sorted(map(str, w)))
        )
        return f"Provenance({terms})"


def _absorb(witnesses: frozenset[frozenset]) -> frozenset[frozenset]:
    """Drop witnesses that are supersets of other witnesses."""
    minimal = []
    for witness in sorted(witnesses, key=len):
        if not any(kept <= witness for kept in minimal):
            minimal.append(witness)
    return frozenset(minimal)
