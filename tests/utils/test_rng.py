import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import check_random_state, spawn_seeds


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).integers(0, 1000, 10)
        b = check_random_state(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")

    def test_numpy_integer_accepted(self):
        seed = np.int64(5)
        assert isinstance(check_random_state(seed), np.random.Generator)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        assert spawn_seeds(0, 5) == spawn_seeds(0, 5)
        assert len(spawn_seeds(0, 5)) == 5

    def test_children_differ(self):
        seeds = spawn_seeds(1, 10)
        assert len(set(seeds)) == 10

    def test_consumes_generator_state(self):
        rng = np.random.default_rng(0)
        first = spawn_seeds(rng, 3)
        second = spawn_seeds(rng, 3)
        assert first != second
