"""Sanity checks for attribution methods (Adebayo et al. 2018).

A faithful explanation must depend on what the model learned: randomising
the model's parameters should destroy the attribution.  The check
randomises the top layers of an MLP cascade-style and reports the rank
correlation between attributions before and after — a method whose
attributions survive randomisation (correlation near 1) is explaining the
*input*, not the *model*, and fails the check.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from xaidb.evaluation.fidelity import rank_correlation
from xaidb.exceptions import ValidationError
from xaidb.models.mlp import MLPClassifier
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["AttributionForModel", "parameter_randomization_check"]

AttributionForModel = Callable[[MLPClassifier, np.ndarray], np.ndarray]


def parameter_randomization_check(
    model: MLPClassifier,
    attribution_fn: AttributionForModel,
    instances: np.ndarray,
    *,
    layers: int | None = None,
    random_state: RandomState = None,
) -> float:
    """Mean rank correlation between attributions on the trained model and
    on a parameter-randomised copy.

    Near 0 = the method passes (attributions track the model);
    near 1 = the method fails (attributions ignore the model).
    """
    instances = check_array(instances, name="instances", ndim=2)
    if instances.shape[0] < 1:
        raise ValidationError("need at least one instance")
    rng = check_random_state(random_state)
    randomized = model.randomize_parameters(layers=layers, random_state=rng)
    correlations = []
    for row in instances:
        original = np.asarray(attribution_fn(model, row), dtype=float)
        shuffled = np.asarray(attribution_fn(randomized, row), dtype=float)
        correlations.append(rank_correlation(original, shuffled))
    return float(np.mean(correlations))
