"""E13 — FP-Growth vs Apriori runtime (Han, Pei & Yin 2000 figure shape).

Reproduced shape: the two miners return identical frequent itemsets, and
as the support threshold drops (longer/denser patterns), FP-Growth's
single-pass prefix-tree approach wins by a growing factor over Apriori's
candidate generation.
"""

import time

from benchmarks._tables import print_table
from xaidb.data import make_transactions
from xaidb.rules import apriori, fp_growth

SUPPORTS = [0.30, 0.20, 0.10, 0.06]


def compute_rows():
    database = make_transactions(
        800, n_items=40, n_patterns=6, pattern_probability=0.35,
        noise_items=3, random_state=0,
    )
    rows = []
    for support in SUPPORTS:
        start = time.perf_counter()
        apriori_result = apriori(database, support)
        apriori_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fp_result = fp_growth(database, support)
        fp_seconds = time.perf_counter() - start
        rows.append(
            (
                support,
                len(apriori_result),
                apriori_seconds,
                fp_seconds,
                apriori_seconds / max(fp_seconds, 1e-9),
                apriori_result == fp_result,
            )
        )
    return rows


def test_e13_rule_mining(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E13: Apriori vs FP-Growth runtime over support thresholds "
        "(paper: FP-Growth wins, gap grows at low support)",
        [
            "min support",
            "frequent itemsets",
            "apriori s",
            "fp-growth s",
            "speedup",
            "identical output",
        ],
        rows,
    )
    # outputs identical at every threshold
    assert all(row[5] for row in rows)
    # FP-Growth wins at the lowest support
    assert rows[-1][4] > 1.0
    # the speedup grows (in trend) as support drops
    assert rows[-1][4] > rows[0][4]
