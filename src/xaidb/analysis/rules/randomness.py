"""XDB002 — unseeded / global-state randomness.

Every stochastic routine in xaidb threads an explicit
``numpy.random.Generator`` obtained from
:func:`xaidb.utils.rng.check_random_state`, so one integer seed
reproduces a whole experiment (E2's LIME-stability and E19/E20's
sanity/fooling results depend on this).  The legacy ``np.random.*``
module-level API and the stdlib ``random`` module both mutate hidden
global state, which silently breaks that guarantee; ``np.random.seed``
is the classic footgun that *looks* reproducible but couples unrelated
call sites through one global stream.

Allowed: ``np.random.default_rng`` (the sanctioned construction point,
wrapped by ``check_random_state``), ``np.random.Generator`` /
``SeedSequence`` / ``PCG64`` attribute access (types, not calls).
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["UnseededRandomnessRule"]

_NUMPY_ALIASES = {"np", "numpy"}
_ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "PCG64"}
_STDLIB_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "seed",
    "getrandbits",
}


def _is_np_random(node: ast.AST) -> bool:
    """True for an ``np.random`` / ``numpy.random`` attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_ALIASES
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "UnseededRandomnessRule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.imports_stdlib_random = False

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.imports_stdlib_random = True
                self.findings.append(
                    self.ctx.finding(
                        self.rule,
                        node,
                        "import of the stdlib 'random' module: its global "
                        "state defeats seed threading; use a "
                        "numpy Generator from xaidb.utils.rng instead",
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.findings.append(
                self.ctx.finding(
                    self.rule,
                    node,
                    "import from the stdlib 'random' module: its global "
                    "state defeats seed threading; use a "
                    "numpy Generator from xaidb.utils.rng instead",
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if _is_np_random(func.value):
                if func.attr not in _ALLOWED_NP_RANDOM:
                    self.findings.append(
                        self.ctx.finding(
                            self.rule,
                            node,
                            f"call to legacy global-state API "
                            f"np.random.{func.attr}(); thread an explicit "
                            f"np.random.Generator via "
                            f"xaidb.utils.rng.check_random_state instead",
                        )
                    )
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in _STDLIB_RANDOM_FNS
            ):
                self.findings.append(
                    self.ctx.finding(
                        self.rule,
                        node,
                        f"call to stdlib random.{func.attr}(); thread an "
                        f"explicit np.random.Generator via "
                        f"xaidb.utils.rng.check_random_state instead",
                    )
                )
        self.generic_visit(node)


@register
class UnseededRandomnessRule(FileRule):
    rule_id = "XDB002"
    symbol = "unseeded-randomness"
    description = (
        "Use of global-state randomness (legacy np.random.* calls, "
        "np.random.seed, stdlib random) instead of threading an "
        "explicit numpy Generator from xaidb.utils.rng."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
