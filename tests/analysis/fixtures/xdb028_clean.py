"""Clean fixture for XDB028: the same call shapes, but every use is
provably preceded by fit() — directly, via the fit()-returns-self
chain, and across the helper boundary."""

__all__ = ["trained_predictions", "trained_scores"]


class RidgeModel:
    def __init__(self):
        self.coef_ = None

    def fit(self, X, y):
        self.coef_ = [sum(row) for row in X]
        return self

    def predict(self, X):
        return [sum(row) for row in X]


def _score_all(model, X):
    # same obligation as the dirty twin, but every caller hands in a
    # fitted model, so it is never consumed
    return model.predict(X)


def trained_predictions(X, y):
    model = RidgeModel().fit(X, y)  # fit() returns self, state fitted
    return model.predict(X)


def trained_scores(X, y):
    model = RidgeModel()
    model.fit(X, y)
    return _score_all(model, X)
