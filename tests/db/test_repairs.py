import numpy as np
import pytest

from xaidb.db import (
    FunctionalDependency,
    Relation,
    greedy_repair,
    inconsistency_count,
    repair_blame,
    violating_pairs,
)
from xaidb.exceptions import ValidationError


@pytest.fixture()
def zip_city():
    return Relation.from_dicts(
        "t",
        [
            {"zip": "10001", "city": "NY"},
            {"zip": "10001", "city": "LA"},  # conflicts with rows 0 and 2
            {"zip": "10001", "city": "NY"},
            {"zip": "90210", "city": "LA"},
        ],
    )


@pytest.fixture()
def fd():
    return FunctionalDependency(lhs=("zip",), rhs=("city",))


class TestViolations:
    def test_pairs_found(self, zip_city, fd):
        pairs = violating_pairs(zip_city, fd)
        assert sorted(tuple(sorted(p)) for p in pairs) == [
            ("t:0", "t:1"),
            ("t:1", "t:2"),
        ]

    def test_consistent_relation_has_none(self, fd):
        clean = Relation.from_dicts(
            "t", [{"zip": "1", "city": "a"}, {"zip": "2", "city": "b"}]
        )
        assert violating_pairs(clean, fd) == []
        assert inconsistency_count(clean, [fd]) == 0

    def test_unknown_column_rejected(self, zip_city):
        bad = FunctionalDependency(lhs=("nope",), rhs=("city",))
        with pytest.raises(ValidationError):
            violating_pairs(zip_city, bad)

    def test_empty_fd_rejected(self):
        with pytest.raises(ValidationError):
            FunctionalDependency(lhs=(), rhs=("city",))


class TestRepairBlame:
    def test_blame_is_half_violation_degree(self, zip_city, fd):
        """For pair-counting games the Shapley value has a closed form:
        each violating pair splits evenly between its endpoints."""
        blame = repair_blame(zip_city, [fd])
        assert blame["t:1"] == pytest.approx(1.0)  # in 2 pairs
        assert blame["t:0"] == pytest.approx(0.5)
        assert blame["t:2"] == pytest.approx(0.5)
        assert blame["t:3"] == pytest.approx(0.0)

    def test_blame_sums_to_total_violations(self, zip_city, fd):
        blame = repair_blame(zip_city, [fd])
        assert sum(blame.values()) == pytest.approx(
            inconsistency_count(zip_city, [fd])
        )

    def test_sampled_blame_close(self, zip_city, fd):
        blame = repair_blame(
            zip_city, [fd], n_permutations=2000, random_state=0
        )
        assert blame["t:1"] == pytest.approx(1.0, abs=0.1)

    def test_multiple_fds_accumulate(self, fd):
        rel = Relation.from_dicts(
            "t",
            [
                {"zip": "1", "city": "a", "state": "x"},
                {"zip": "1", "city": "b", "state": "y"},
            ],
        )
        fd2 = FunctionalDependency(lhs=("zip",), rhs=("state",))
        blame = repair_blame(rel, [fd, fd2])
        # each tuple participates in 2 violating pairs (one per FD)
        assert blame["t:0"] == pytest.approx(1.0)
        assert blame["t:1"] == pytest.approx(1.0)


class TestGreedyRepair:
    def test_repairs_to_consistency(self, zip_city, fd):
        repaired, deleted = greedy_repair(zip_city, [fd])
        assert inconsistency_count(repaired, [fd]) == 0

    def test_deletes_the_minimal_culprit(self, zip_city, fd):
        __, deleted = greedy_repair(zip_city, [fd])
        assert deleted == ["t:1"]  # one deletion suffices

    def test_consistent_input_untouched(self, fd):
        clean = Relation.from_dicts(
            "t", [{"zip": "1", "city": "a"}, {"zip": "2", "city": "b"}]
        )
        repaired, deleted = greedy_repair(clean, [fd])
        assert deleted == []
        assert len(repaired) == 2

    def test_repair_matches_blame_ranking(self, zip_city, fd):
        blame = repair_blame(zip_city, [fd])
        __, deleted = greedy_repair(zip_city, [fd])
        top_blamed = max(blame, key=blame.get)
        assert deleted[0] == top_blamed
