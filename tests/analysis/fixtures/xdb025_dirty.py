"""Dirty fixture for XDB025: a reduction over a provably empty array
and a ddof that provably reaches the sample count."""

import numpy as np

__all__ = ["mean_of_nothing", "variance_of_one"]


def mean_of_nothing():
    scores = np.zeros((0,))  # proven length [0, 0]
    return scores.mean()  # finding 1: mean of an empty array is NaN


def variance_of_one():
    sample = np.ones(1)  # proven length [1, 1]
    return sample.std(ddof=1)  # finding 2: n - ddof = 0, result NaN
