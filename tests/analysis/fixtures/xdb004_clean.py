"""XDB004 clean fixture: explicit public surface."""

__all__ = ["public_function"]


def public_function() -> int:
    return 1


def _private_helper() -> int:
    return 2
