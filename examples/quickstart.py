"""Quickstart: explain one model decision five different ways.

Trains a gradient-boosted classifier on the synthetic income workload and
explains a single prediction with the main §2.1/§2.2 method families:
LIME, KernelSHAP, TreeSHAP, an anchor rule and a sufficient reason.

Run:  python examples/quickstart.py
"""

import numpy as np

from xaidb.data import make_income
from xaidb.explainers import LimeExplainer, predict_positive_proba
from xaidb.explainers.shapley import KernelShapExplainer, TreeShapExplainer
from xaidb.models import (
    DecisionTreeClassifier,
    GradientBoostedClassifier,
    accuracy,
    roc_auc,
)
from xaidb.rules import AnchorsExplainer, sufficient_reason


def main() -> None:
    # --- data and model -------------------------------------------------
    workload = make_income(1500, random_state=0)
    train, test = workload.dataset.split(test_fraction=0.3, random_state=1)
    model = GradientBoostedClassifier(
        n_estimators=40, max_depth=3, random_state=0
    ).fit(train.X, train.y)
    f = predict_positive_proba(model)
    print("model: gradient boosted trees on synthetic census income")
    print(f"  test accuracy: {accuracy(test.y, model.predict(test.X)):.3f}")
    print(f"  test AUC:      {roc_auc(test.y, f(test.X)):.3f}")

    # --- the instance to explain ----------------------------------------
    instance = test.X[0]
    score = float(f(instance[None, :])[0])
    print("\ninstance:", {
        name: round(value, 2)
        for name, value in zip(train.feature_names, instance)
    })
    print(f"predicted P(income > 50K) = {score:.3f}")

    # --- LIME ------------------------------------------------------------
    lime = LimeExplainer(train, n_samples=1500)
    lime_attribution = lime.explain(f, instance, random_state=0)
    print("\n[LIME] local surrogate coefficients "
          f"(fit R^2 = {lime_attribution.metadata['score']:.2f}):")
    for name, value in lime_attribution.top(3):
        print(f"  {name:15s} {value:+.4f}")

    # --- KernelSHAP -------------------------------------------------------
    kernel = KernelShapExplainer(
        f, train.X[:30], feature_names=train.feature_names
    )
    shap_attribution = kernel.explain(instance, random_state=0)
    print("\n[KernelSHAP] Shapley values "
          f"(base {shap_attribution.base_value:.3f} + contributions "
          f"= {shap_attribution.prediction:.3f}):")
    for name, value in shap_attribution.top(3):
        print(f"  {name:15s} {value:+.4f}")
    assert shap_attribution.additive_check(atol=1e-8)

    # --- TreeSHAP ----------------------------------------------------------
    tree_shap = TreeShapExplainer(model, feature_names=train.feature_names)
    tree_attribution = tree_shap.explain(instance)
    print("\n[TreeSHAP] polynomial-time exact attribution of the raw margin:")
    for name, value in tree_attribution.top(3):
        print(f"  {name:15s} {value:+.4f}")

    # --- Anchors -------------------------------------------------------------
    anchors = AnchorsExplainer(
        f, train, precision_threshold=0.9, max_anchor_size=3
    )
    anchor = anchors.explain(instance, random_state=0)
    print(f"\n[Anchors] {anchor}")

    # --- sufficient reason on an interpretable distillation -----------------
    surrogate_tree = DecisionTreeClassifier(
        max_depth=4, min_samples_leaf=40, random_state=0
    ).fit(train.X, train.y)
    reason = sufficient_reason(surrogate_tree, instance)
    print("\n[Sufficient reason] on a depth-4 decision tree, fixing only "
          f"{[train.feature_names[i] for i in reason]} already entails the "
          "prediction whatever the other features are.")


if __name__ == "__main__":
    main()
