"""The xailint engine: file discovery, parsing, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so it can gate CI in the same offline environment the library
itself targets.  Usage::

    from xaidb.analysis import run_paths

    result = run_paths(["src", "benchmarks"])
    assert result.ok, result.findings
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from xaidb.analysis.findings import Finding, LintResult
from xaidb.analysis.registry import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    all_rules,
)
from xaidb.analysis.suppressions import parse_suppressions

__all__ = ["discover_files", "lint_source", "run_paths", "PARSE_ERROR_ID"]

#: Pseudo rule id for files the parser rejects; not suppressible.
PARSE_ERROR_ID = "XDB000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into a sorted list of
    ``.py`` files, skipping cache/VCS directories."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                found.add(candidate)
    return sorted(found)


def _module_name(path: Path) -> tuple[str, bool]:
    """Best-effort dotted module name and whether it is inside ``xaidb``.

    Works from the path alone: everything after a ``src`` or site-root
    component is treated as package structure.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("xaidb",):
        if anchor in parts:
            tail = parts[parts.index(anchor):]
            if tail[-1] == "__init__":
                tail = tail[:-1]
            return ".".join(tail), True
    name = parts[-1] if parts[-1] != "__init__" else (
        parts[-2] if len(parts) > 1 else ""
    )
    return name, False


def _build_context(path: Path, root: Path | None) -> FileContext | Finding:
    """Parse ``path``; return a context, or a parse-error finding."""
    relpath = str(path)
    if root is not None:
        try:
            relpath = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            relpath = str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            path=relpath,
            line=1,
            col=0,
            rule_id=PARSE_ERROR_ID,
            symbol="unreadable-file",
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_ID,
            symbol="syntax-error",
            message=f"syntax error: {exc.msg}",
        )
    module_name, in_xaidb = _module_name(path)
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        in_xaidb_package=in_xaidb,
        module_name=module_name,
    )


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module_name: str = "",
    in_xaidb_package: bool = False,
    rule_ids: Sequence[str] | None = None,
) -> LintResult:
    """Lint a source string — the in-memory entry point used by tests.

    Project rules see a single-file corpus, so XDB008-style checks run
    against exactly the snippet provided.
    """
    result = LintResult(files_scanned=1)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                symbol="syntax-error",
                message=f"syntax error: {exc.msg}",
            )
        )
        return result
    ctx = FileContext(
        path=Path(filename),
        relpath=filename,
        source=source,
        tree=tree,
        in_xaidb_package=in_xaidb_package,
        module_name=module_name,
    )
    _run_rules([ctx], result, rule_ids)
    return result


def run_paths(
    paths: Iterable[str | Path],
    *,
    root: str | Path | None = None,
    rule_ids: Sequence[str] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and return the result.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    root:
        Optional base directory findings are reported relative to.
    rule_ids:
        Optional subset of rule ids to run (default: all registered).
    """
    root_path = Path(root) if root is not None else None
    result = LintResult()
    contexts: list[FileContext] = []
    for path in discover_files(paths):
        built = _build_context(path, root_path)
        if isinstance(built, Finding):
            result.findings.append(built)
        else:
            contexts.append(built)
        result.files_scanned += 1
    _run_rules(contexts, result, rule_ids)
    return result


def _run_rules(
    contexts: list[FileContext],
    result: LintResult,
    rule_ids: Sequence[str] | None,
) -> None:
    """Dispatch file rules, then project rules; filter suppressions."""
    rules = all_rules(rule_ids)
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    raw: list[Finding] = []
    for ctx in contexts:
        for rule in file_rules:
            raw.extend(rule.check_file(ctx))
    if project_rules:
        project = ProjectContext(files=contexts)
        for rule in project_rules:
            raw.extend(rule.check_project(project))

    suppression_index = {
        ctx.relpath: parse_suppressions(ctx.source) for ctx in contexts
    }
    for finding in raw:
        index = suppression_index.get(finding.path)
        if index is not None and index.is_suppressed(
            finding.line, finding.rule_id
        ):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
