"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP-517 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
