"""Actionable recourse for linear classifiers (Ustun, Spangher & Liu 2019).

For a linear score ``w . x + b`` the minimal-cost action that flips a
negative decision is a continuous knapsack: each actionable feature offers
"margin per unit cost" at rate ``|w_i| / c_i``, bounded by its feasible
movement range.  Greedy filling by decreasing rate is exact, so recourse
here is closed-form rather than search-based — the structural advantage of
interpretable model classes that the tutorial contrasts with black boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import InfeasibleError, ValidationError
from xaidb.explainers.counterfactual.base import ActionSpace
from xaidb.models.logistic import LogisticRegression
from xaidb.utils.validation import check_array

__all__ = ["RecourseAction", "LinearRecourse"]


@dataclass
class RecourseAction:
    """A minimal-cost feature-change plan guaranteeing a positive decision."""

    changes: dict[str, tuple[float, float]]  # feature -> (from, to)
    cost: float
    new_margin: float
    flipped: bool = True
    deltas: dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        steps = ", ".join(
            f"{name}: {pair[0]:.2f}->{pair[1]:.2f}"
            for name, pair in self.changes.items()
        )
        return f"RecourseAction({steps}; cost={self.cost:.3f})"


class LinearRecourse:
    """Exact minimal-cost recourse over a dataset-derived action space.

    Parameters
    ----------
    model:
        A fitted :class:`~xaidb.models.logistic.LogisticRegression`.
    dataset:
        Supplies actionability, monotonicity and range constraints.
    costs:
        Optional per-feature unit costs (default: inverse MAD, so moving
        one robust standard deviation costs ~1 in any feature).
    margin_target:
        Decision margin the action must reach (0 = the boundary; a small
        positive value leaves a safety buffer).
    """

    def __init__(
        self,
        model: LogisticRegression,
        dataset: Dataset,
        *,
        costs: np.ndarray | None = None,
        margin_target: float = 1e-3,
    ) -> None:
        if model.coef_ is None:
            raise ValidationError("model must be fitted")
        self.model = model
        self.dataset = dataset
        self.space = ActionSpace.from_dataset(dataset)
        if costs is None:
            self.costs = 1.0 / np.maximum(self.space.mad, 1e-6)
        else:
            self.costs = check_array(costs, name="costs", ndim=1)
            if np.any(self.costs <= 0):
                raise ValidationError("costs must be strictly positive")
        self.margin_target = margin_target

    # ------------------------------------------------------------------
    def feasible_range(self, instance: np.ndarray, feature: int) -> tuple[float, float]:
        """The interval the feature may move to, given the action space."""
        spec = self.space.features[feature]
        if not spec.actionable:
            value = float(instance[feature])
            return value, value
        low = float(self.space.lower[feature])
        high = float(self.space.upper[feature])
        if spec.monotone == 1:
            low = float(instance[feature])
        elif spec.monotone == -1:
            high = float(instance[feature])
        return low, high

    def find(self, instance: np.ndarray) -> RecourseAction:
        """Minimal-cost action flipping ``instance`` to a positive decision.

        Raises :class:`InfeasibleError` when no feasible action reaches the
        boundary (e.g. all influential features are immutable).
        """
        instance = check_array(instance, name="instance", ndim=1)
        w = self.model.coef_
        margin = float(self.model.decision_function(instance[None, :])[0])
        if margin >= 0:
            return RecourseAction(changes={}, cost=0.0, new_margin=margin)
        needed = -margin + self.margin_target

        # candidate moves: (rate = |w|/cost, max margin gain, feature, direction)
        candidates = []
        for i in range(len(w)):
            # xailint: disable=XDB006 (exact-zero weight: feature absent from the linear model)
            if w[i] == 0.0 or not self.space.features[i].actionable:
                continue
            if self.space.features[i].is_categorical:
                # categorical features are handled as discrete single swaps
                continue
            low, high = self.feasible_range(instance, i)
            direction = 1.0 if w[i] > 0 else -1.0
            headroom = (high - instance[i]) if direction > 0 else (instance[i] - low)
            if headroom <= 0:
                continue
            gain_cap = abs(w[i]) * headroom
            rate = abs(w[i]) / self.costs[i]
            candidates.append((rate, gain_cap, i, direction, headroom))
        # discrete: best single categorical swap is considered afterwards
        candidates.sort(key=lambda c: -c[0])

        deltas = np.zeros(len(w))
        gained = 0.0
        cost = 0.0
        for rate, gain_cap, i, direction, headroom in candidates:
            if gained >= needed:
                break
            gain_here = min(gain_cap, needed - gained)
            # xailint: disable=XDB023 (candidates only admits features with w[i] != 0)
            move = gain_here / abs(w[i])
            deltas[i] = direction * move
            gained += gain_here
            cost += self.costs[i] * move
        if gained + 1e-12 < needed:
            achieved = self._try_categorical_boost(
                instance, deltas, needed - gained
            )
            if achieved is None:
                raise InfeasibleError(
                    "no feasible action reaches a positive decision"
                )
            extra_cost, extra_deltas = achieved
            deltas += extra_deltas
            cost += extra_cost

        candidate = self.space.clip(instance, instance + deltas)
        new_margin = float(self.model.decision_function(candidate[None, :])[0])
        changes = {
            self.dataset.feature_names[i]: (float(instance[i]), float(candidate[i]))
            for i in range(len(w))
            if not np.isclose(instance[i], candidate[i])
        }
        named_deltas = {
            self.dataset.feature_names[i]: float(candidate[i] - instance[i])
            for i in range(len(w))
            if not np.isclose(instance[i], candidate[i])
        }
        return RecourseAction(
            changes=changes,
            cost=float(cost),
            new_margin=new_margin,
            flipped=new_margin >= 0,
            deltas=named_deltas,
        )

    # ------------------------------------------------------------------
    def _try_categorical_boost(
        self, instance: np.ndarray, deltas: np.ndarray, needed: float
    ):
        """Cheapest single categorical swap covering the remaining margin."""
        w = self.model.coef_
        best = None
        for i in self.dataset.categorical_indices:
            spec = self.space.features[i]
            # xailint: disable=XDB006 (exact-zero weight: feature absent from the linear model)
            if not spec.actionable or w[i] == 0.0:
                continue
            for code in self.space.category_codes.get(i, []):
                gain = w[i] * (code - instance[i])
                if gain >= needed:
                    swap_cost = self.costs[i] * abs(code - instance[i])
                    if best is None or swap_cost < best[0]:
                        extra = np.zeros(len(w))
                        extra[i] = code - instance[i]
                        best = (swap_cost, extra)
        return best
