"""Inline suppression handling for xailint.

A finding can be silenced with a comment of the form::

    risky_line()  # xailint: disable=XDB002 (seeding handled by caller)
    other_line()  # xailint: disable=XDB002,XDB006 (both are intentional)

The comment silences the named rules on its own physical line.  A
comment that is the *only* content of its line silences the named rules
on the next non-blank line instead, so long statements can carry a
suppression without exceeding line-length budgets::

    # xailint: disable=XDB006 (exact-zero denominator guard)
    if ss_tot == 0.0:
        ...

The parenthesised reason string is optional for the engine but required
by this repo's convention (documented in docs/LINTING.md): a
suppression without a why is a review smell.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex", "parse_suppressions"]

_DISABLE_RE = re.compile(
    r"#\s*xailint:\s*disable=(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


class SuppressionIndex:
    """Maps line numbers to the set of rule ids suppressed there."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}

    def add(self, line: int, rule_ids: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rule_ids)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self._by_line.get(line, set())

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan ``source`` for ``# xailint: disable=...`` comments.

    Uses :mod:`tokenize` rather than a per-line regex so comments inside
    string literals do not count as suppressions.
    """
    index = SuppressionIndex()
    standalone: list[tuple[int, set[str]]] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index

    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(tok.string)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        line_no = tok.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        if line_text.strip().startswith("#"):
            standalone.append((line_no, ids))
        else:
            index.add(line_no, ids)

    # A standalone comment applies to the next non-blank, non-comment line.
    for line_no, ids in standalone:
        target = line_no + 1
        while target <= len(lines):
            stripped = lines[target - 1].strip()
            if stripped and not stripped.startswith("#"):
                break
            target += 1
        if target <= len(lines):
            index.add(target, ids)
    return index
