"""SARIF-baseline diffing: gate CI on *new* findings only.

Adopting a new rule on a living codebase creates a standoff: the rule
surfaces pre-existing findings nobody can fix today, so either the gate
stays red (and gets ignored) or the rule waits.  The baseline breaks
it.  ``xailint --write-baseline`` snapshots the current findings into a
committed SARIF file (``xailint_baseline.sarif``); ``xailint
--baseline`` then reports and gates on findings *not* present in the
snapshot, so pre-existing debt is tolerated but every newly introduced
violation still fails CI.

Matching is by ``(rule id, path, message)`` — deliberately **not** by
line number, so editing an unrelated part of a file does not shift a
baselined finding into "new".  Identical findings are matched by count:
a file with two baselined ``XDB006`` comparisons tolerates two, and a
third is new.  The baseline is plain SARIF (the ``--format sarif``
output, byte-for-byte), so the same file feeds CI annotation and the
diff gate.

A finding that disappears simply stops matching — the baseline is a
ceiling, not a ledger, and ``--write-baseline`` re-snapshots it after a
cleanup so the ceiling only ever moves down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from xaidb.analysis.findings import Finding, LintResult

__all__ = [
    "BaselineError",
    "baseline_key",
    "load_baseline",
    "partition_findings",
    "apply_baseline",
    "DEFAULT_BASELINE_FILE",
]

#: Committed snapshot, relative to the working directory.
DEFAULT_BASELINE_FILE = "xailint_baseline.sarif"

#: What identifies a finding across runs (no line/col: edits above a
#: finding must not un-baseline it).
BaselineKey = tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is missing or not a readable SARIF document."""


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: Path | str) -> Counter:
    """Parse a SARIF baseline into a multiset of finding keys.

    Raises :class:`BaselineError` on a missing or malformed file — a
    gate that silently treats "no baseline" as "empty baseline" would
    fail on every pre-existing finding, or worse, a typo'd path could
    make it pass vacuously in write-then-read workflows.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(
            f"cannot read baseline {path}: {exc}"
        ) from exc
    except ValueError as exc:
        raise BaselineError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    keys: Counter = Counter()
    try:
        runs = document["runs"]
        for run in runs:
            for entry in run.get("results", ()):
                rule_id = str(entry["ruleId"])
                message = str(entry["message"]["text"])
                locations = entry.get("locations") or [{}]
                uri = str(
                    locations[0]
                    .get("physicalLocation", {})
                    .get("artifactLocation", {})
                    .get("uri", "")
                )
                keys[(rule_id, uri, message)] += 1
    except (KeyError, TypeError, IndexError) as exc:
        raise BaselineError(
            f"baseline {path} is not a SARIF results document: {exc}"
        ) from exc
    return keys


def partition_findings(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, known)`` against the baseline
    multiset.  Matching consumes baseline entries, so N baselined
    occurrences of an identical finding tolerate exactly N."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        key = baseline_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            known.append(finding)
        else:
            new.append(finding)
    return new, known


def apply_baseline(
    result: LintResult, baseline: Counter
) -> tuple[LintResult, int]:
    """A result whose findings are only those *not* in the baseline,
    plus the count of matched (tolerated) findings.  Stats and
    suppression bookkeeping carry over unchanged."""
    new, known = partition_findings(result.findings, baseline)
    filtered = LintResult(
        findings=new,
        files_scanned=result.files_scanned,
        suppressed=result.suppressed,
        stats=result.stats,
    )
    return filtered, len(known)
