"""Causality-aware Shapley values (tutorial §2.1.3).

- :class:`AsymmetricShapleyExplainer` (Frye, Rowat & Feige 2019) keeps the
  classic marginal-contribution averaging but *discards coalitions/orderings
  that violate the causal ordering* — sacrificing the symmetry axiom to
  place credit on causally antecedent features.
- :class:`CausalShapleyExplainer` (Heskes et al. 2020) keeps all the
  Shapley axioms but changes the value function to interventional
  expectations ``v(S) = E[f(X) | do(X_S = x_S)]`` evaluated on a
  structural causal model, and decomposes each feature's contribution into
  its **direct** effect and the **indirect** effect it exerts through its
  descendants.

Both need a fitted/known :class:`~xaidb.causal.scm.StructuralCausalModel`
over the feature variables (the generating SCMs of
:mod:`xaidb.data.synthetic` provide ground truth in experiments).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Sequence

import numpy as np

from xaidb.causal.scm import StructuralCausalModel
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.utils.combinatorics import shapley_subset_weight
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array

__all__ = ["CausalShapleyExplainer", "AsymmetricShapleyExplainer"]

_MAX_EXACT_FEATURES = 12


class _InterventionalGame:
    """``v(S) = E[f(X) | do(X_S = x_S)]`` by Monte-Carlo SCM sampling.

    Every coalition uses its own deterministic child seed so results are
    reproducible and coalition values are cached.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        scm: StructuralCausalModel,
        feature_nodes: Sequence[Hashable],
        instance: np.ndarray,
        n_samples: int,
        random_state: RandomState,
    ) -> None:
        self.predict_fn = predict_fn
        self.scm = scm
        self.feature_nodes = list(feature_nodes)
        self.instance = instance
        self.n_samples = n_samples
        self._seed_root = check_random_state(random_state)
        self._seeds: dict[frozenset, int] = {}
        self._cache: dict[frozenset, float] = {}

    def _seed_for(self, key: frozenset) -> int:
        if key not in self._seeds:
            self._seeds[key] = spawn_seeds(self._seed_root, 1)[0]
        return self._seeds[key]

    def _sample_features(self, coalition: frozenset) -> np.ndarray:
        interventions = {
            self.feature_nodes[i]: float(self.instance[i]) for i in coalition
        }
        return self.scm.sample_matrix(
            self.n_samples,
            self.feature_nodes,
            interventions=interventions,
            random_state=self._seed_for(coalition),
        )

    def value(self, coalition) -> float:
        key = frozenset(coalition)
        if key not in self._cache:
            matrix = self._sample_features(key)
            self._cache[key] = float(np.mean(self.predict_fn(matrix)))
        return self._cache[key]

    def direct_value(self, coalition: frozenset, feature: int) -> float:
        """Expected output when ``feature`` is pinned to the instance value
        *without letting its descendants respond* — the context variables
        are sampled under ``do(X_S)`` only.  Used for the direct/indirect
        split of the marginal contribution of ``feature`` joining ``S``."""
        matrix = self._sample_features(frozenset(coalition))
        matrix = matrix.copy()
        matrix[:, feature] = self.instance[feature]
        return float(np.mean(self.predict_fn(matrix)))


class CausalShapleyExplainer(Explainer):
    """Causal Shapley values on an SCM with direct/indirect decomposition.

    Parameters
    ----------
    predict_fn:
        Scalar model output over the feature matrix (columns ordered as
        ``feature_nodes``).
    scm:
        Structural causal model containing every feature node (extra
        nodes, e.g. the label, are simply ignored).
    feature_nodes:
        SCM node name per model feature column.
    n_samples:
        Monte-Carlo samples per coalition evaluation.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        scm: StructuralCausalModel,
        feature_nodes: Sequence[Hashable],
        *,
        n_samples: int = 500,
        feature_names: list[str] | None = None,
    ) -> None:
        missing = [n for n in feature_nodes if n not in scm.graph]
        if missing:
            raise ValidationError(f"SCM is missing feature nodes: {missing}")
        if len(feature_nodes) > _MAX_EXACT_FEATURES:
            raise ValidationError(
                f"causal Shapley enumerates 2^d coalitions; "
                f"{len(feature_nodes)} features exceed the limit "
                f"{_MAX_EXACT_FEATURES}"
            )
        self.predict_fn = predict_fn
        self.scm = scm
        self.feature_nodes = list(feature_nodes)
        self.n_samples = n_samples
        self.feature_names = feature_names or [str(n) for n in feature_nodes]

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
        decompose: bool = True,
    ) -> FeatureAttribution:
        """Causal Shapley attribution; metadata carries the
        ``direct`` / ``indirect`` split per feature when ``decompose``."""
        instance = check_array(instance, name="instance", ndim=1)
        d = len(self.feature_nodes)
        if instance.shape[0] != d:
            raise ValidationError("instance length != number of feature nodes")
        game = _InterventionalGame(
            self.predict_fn,
            self.scm,
            self.feature_nodes,
            instance,
            self.n_samples,
            random_state,
        )
        phi = np.zeros(d)
        direct = np.zeros(d)
        players = list(range(d))
        for player in players:
            others = [p for p in players if p != player]
            for size in range(d):
                weight = shapley_subset_weight(size, d)
                for subset in combinations(others, size):
                    s = frozenset(subset)
                    with_player = game.value(s | {player})
                    without = game.value(s)
                    phi[player] += weight * (with_player - without)
                    if decompose:
                        direct_value = game.direct_value(s, player)
                        direct[player] += weight * (direct_value - without)
        metadata = {"method": "causal_shapley", "n_samples": self.n_samples}
        if decompose:
            metadata["direct"] = direct.tolist()
            metadata["indirect"] = (phi - direct).tolist()
        return FeatureAttribution(
            feature_names=list(self.feature_names),
            values=phi,
            base_value=game.value(frozenset()),
            prediction=game.value(frozenset(players)),
            metadata=metadata,
        )


class AsymmetricShapleyExplainer(Explainer):
    """Asymmetric Shapley values: average marginal contributions only over
    orderings consistent with the causal DAG (causally antecedent features
    always enter coalitions first).

    The value function is interventional (``do``-based) like causal
    Shapley's; with a fully disconnected graph every ordering is valid and
    the result coincides with symmetric Shapley values (a property the
    tests check).
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        scm: StructuralCausalModel,
        feature_nodes: Sequence[Hashable],
        *,
        n_samples: int = 500,
        max_orderings: int = 5000,
        feature_names: list[str] | None = None,
    ) -> None:
        missing = [n for n in feature_nodes if n not in scm.graph]
        if missing:
            raise ValidationError(f"SCM is missing feature nodes: {missing}")
        self.predict_fn = predict_fn
        self.scm = scm
        self.feature_nodes = list(feature_nodes)
        self.n_samples = n_samples
        self.max_orderings = max_orderings
        self.feature_names = feature_names or [str(n) for n in feature_nodes]

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        d = len(self.feature_nodes)
        subgraph = self.scm.graph.subgraph_on(self.feature_nodes)
        orders = subgraph.all_topological_orders(limit=self.max_orderings)
        if not orders:
            raise ValidationError("causal graph admits no topological order")
        node_index = {node: i for i, node in enumerate(self.feature_nodes)}
        game = _InterventionalGame(
            self.predict_fn,
            self.scm,
            self.feature_nodes,
            instance,
            self.n_samples,
            random_state,
        )
        phi = np.zeros(d)
        for order in orders:
            coalition: set[int] = set()
            previous = game.value(frozenset())
            for node in order:
                player = node_index[node]
                coalition.add(player)
                current = game.value(frozenset(coalition))
                phi[player] += current - previous
                previous = current
        # xailint: disable=XDB023 (the no-topological-order guard above raises first)
        phi /= len(orders)
        return FeatureAttribution(
            feature_names=list(self.feature_names),
            values=phi,
            base_value=game.value(frozenset()),
            prediction=game.value(frozenset(range(d))),
            metadata={
                "method": "asymmetric_shapley",
                "n_orderings": len(orders),
                "n_samples": self.n_samples,
            },
        )
