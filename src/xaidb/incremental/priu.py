"""PrIU: provenance-based incremental update of regression models
(Wu, Tannen & Davidson 2020).

Deleting training rows should not require retraining from scratch.  The
provenance insight: a model fitted from *sufficient statistics* can be
updated by subtracting exactly the deleted rows' contributions.

- **Linear regression** is exact: the normal equations depend on data
  only through ``X^T X`` and ``X^T y``; deleting rows downdates both in
  ``O(k d^2)`` and re-solving costs ``O(d^3)`` — independent of ``n``.
- **Logistic regression** has no finite sufficient statistics; PrIU keeps
  the provenance (per-row gradient/curvature contributions at the current
  parameters) and takes an incremental Newton step against the
  downweighted Hessian, optionally polished with warm-started Newton
  iterations on the remaining data.  The approximation error is measured
  against full retraining in experiment E18.

Both classes remember which original rows are still "in" the model —
the deletion provenance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.linear import LinearRegression
from xaidb.models.logistic import LogisticRegression
from xaidb.utils.linalg import sigmoid, solve_psd
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["IncrementalLinearRegression", "IncrementalLogisticRegression"]


class IncrementalLinearRegression:
    """Exact incremental deletion for (ridge) linear regression."""

    def __init__(self, *, l2: float = 0.0, fit_intercept: bool = True) -> None:
        self.model = LinearRegression(l2=l2, fit_intercept=fit_intercept)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.active_rows_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "IncrementalLinearRegression":
        X = check_array(X, name="X", ndim=2)
        y = check_array(y, name="y", ndim=1)
        check_matching_lengths(("X", X), ("y", y))
        self._X, self._y = X.copy(), y.copy()
        self.active_rows_ = np.ones(len(y), dtype=bool)
        self.model.fit(X, y)
        return self

    def delete_rows(self, rows: Sequence[int]) -> "IncrementalLinearRegression":
        """Remove training rows and update the model exactly, in time
        independent of the remaining dataset size."""
        if self._X is None:
            raise ValidationError("fit() first")
        rows = np.asarray(sorted(set(int(r) for r in rows)))
        if rows.size == 0:
            raise ValidationError("rows is empty")
        if not np.all(self.active_rows_[rows]):
            raise ValidationError("some rows were already deleted")
        design = self.model._augment(self._X[rows])
        self.model.xtx_ = self.model.xtx_ - design.T @ design
        self.model.xty_ = self.model.xty_ - design.T @ self._y[rows]
        self.model.refit_from_statistics(self.model.xtx_, self.model.xty_)
        self.active_rows_[rows] = False
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict(X)

    @property
    def coef_(self) -> np.ndarray:
        return self.model.coef_

    @property
    def intercept_(self) -> float:
        return self.model.intercept_

    def retrained_reference(self) -> LinearRegression:
        """Full retrain on the surviving rows (the equality oracle for
        tests — incremental must match this to numerical precision)."""
        reference = LinearRegression(
            l2=self.model.l2, fit_intercept=self.model.fit_intercept
        )
        return reference.fit(
            self._X[self.active_rows_], self._y[self.active_rows_]
        )


class IncrementalLogisticRegression:
    """Approximate incremental deletion for logistic regression.

    Parameters
    ----------
    l2:
        Ridge strength (> 0 keeps the incremental Hessian invertible).
    refine_steps:
        Warm-started Newton iterations on the remaining data after the
        influence-style jump (0 = pure incremental step; 1-2 brings the
        parameters within numerical precision of a full retrain at a
        fraction of the cost).
    """

    def __init__(
        self,
        *,
        l2: float = 1e-3,
        fit_intercept: bool = True,
        refine_steps: int = 1,
    ) -> None:
        if refine_steps < 0:
            raise ValidationError("refine_steps must be >= 0")
        self.model = LogisticRegression(l2=l2, fit_intercept=fit_intercept)
        self.refine_steps = refine_steps
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.active_rows_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "IncrementalLogisticRegression":
        X = check_array(X, name="X", ndim=2)
        y = check_array(y, name="y", ndim=1)
        self._X, self._y = X.copy(), y.copy()
        self.active_rows_ = np.ones(len(y), dtype=bool)
        self.model.fit(X, y)
        return self

    def _design(self, X: np.ndarray) -> np.ndarray:
        return self.model._augment(X)

    def delete_rows(self, rows: Sequence[int]) -> "IncrementalLogisticRegression":
        """Incremental Newton update after deleting rows."""
        if self._X is None:
            raise ValidationError("fit() first")
        rows = np.asarray(sorted(set(int(r) for r in rows)))
        if rows.size == 0:
            raise ValidationError("rows is empty")
        if not np.all(self.active_rows_[rows]):
            raise ValidationError("some rows were already deleted")
        self.active_rows_[rows] = False
        keep = self.active_rows_
        X_keep, y_keep = self._X[keep], self._y[keep]
        y_index = (y_keep == self.model.classes_[1]).astype(float)

        # influence-style jump: gradient of removed rows against the
        # downweighted Hessian
        theta = self.model.theta_
        removed_design = self._design(self._X[rows])
        removed_y = (self._y[rows] == self.model.classes_[1]).astype(float)
        removed_gradient = removed_design.T @ (
            sigmoid(removed_design @ theta) - removed_y
        )
        keep_design = self._design(X_keep)
        probabilities = sigmoid(keep_design @ theta)
        curvature = probabilities * (1.0 - probabilities)
        penalty = self.model._penalty_vector(keep_design.shape[1])
        hessian = (keep_design * curvature[:, None]).T @ keep_design + np.diag(
            penalty
        )
        theta = theta + solve_psd(hessian, removed_gradient)

        # warm-started Newton refinement on the remaining data
        for __ in range(self.refine_steps):
            probabilities = sigmoid(keep_design @ theta)
            gradient = keep_design.T @ (probabilities - y_index) + penalty * theta
            curvature = probabilities * (1.0 - probabilities)
            hessian = (keep_design * curvature[:, None]).T @ keep_design + np.diag(
                penalty
            )
            theta = theta - solve_psd(hessian, gradient)
        self.model.set_theta(theta)
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(X)

    @property
    def theta_(self) -> np.ndarray:
        return self.model.theta_

    def retrained_reference(self) -> LogisticRegression:
        """Full retrain on the surviving rows (accuracy oracle)."""
        reference = LogisticRegression(
            l2=self.model.l2, fit_intercept=self.model.fit_intercept
        )
        return reference.fit(
            self._X[self.active_rows_], self._y[self.active_rows_]
        )
