"""Forward dataflow over :mod:`xaidb.analysis.cfg` graphs.

The framework is a classic worklist fixpoint over a *map lattice*: an
abstract state maps variable names to frozensets of labels, join is
pointwise set union, and a :class:`ForwardProblem` supplies the entry
state plus a per-item transfer function.  Three layers build on it:

- :func:`item_defs` / :func:`item_uses` — the def/use interpretation of
  CFG items (a compound-statement header item contributes only its
  header expressions; bodies live in successor blocks);
- :class:`ReachingDefinitions` — which assignments may reach each
  program point (XDB013's dead-store detection replays uses over it);
- :class:`ValueTaint` — label propagation through assignment chains,
  tuple unpacking and augmented assignment, with pluggable call
  semantics (XDB010's seed-provenance taint) — and its view-aliasing
  variant built on :func:`view_sources` (XDB011's escape analysis).

Everything is intraprocedural and conservative: a joined state
over-approximates the set of facts that may hold, so rules fire only on
"may happen on some path" evidence.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from xaidb.analysis.cfg import CFG

__all__ = [
    "State",
    "ForwardProblem",
    "solve_forward",
    "solve_refined",
    "replay",
    "item_defs",
    "item_uses",
    "item_exprs",
    "expr_uses",
    "ReachingDefinitions",
    "Definition",
    "ValueTaint",
    "view_sources",
    "VIEW_METHODS",
    "VIEW_FUNCTIONS",
]

#: Abstract state: variable name -> set of labels (meaning is per-problem).
State = dict[str, frozenset[str]]


# ---------------------------------------------------------------------------
# def/use extraction
# ---------------------------------------------------------------------------


def expr_uses(expr: ast.AST | None) -> list[ast.Name]:
    """Every ``Name`` read inside ``expr`` (loads only), in source order."""
    if expr is None:
        return []
    return [
        node
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    ]


def _walrus_defs(expr: ast.AST | None) -> list[tuple[str, ast.AST]]:
    """``(name := ...)`` bindings inside an expression."""
    if expr is None:
        return []
    return [
        (node.target.id, node.target)
        for node in ast.walk(expr)
        if isinstance(node, ast.NamedExpr)
        and isinstance(node.target, ast.Name)
    ]


def _target_defs(target: ast.AST) -> list[tuple[str, ast.AST]]:
    """Plain names bound by an assignment target (tuples recursed)."""
    if isinstance(target, ast.Name):
        return [(target.id, target)]
    if isinstance(target, ast.Starred):
        return _target_defs(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        defs: list[tuple[str, ast.AST]] = []
        for element in target.elts:
            defs.extend(_target_defs(element))
        return defs
    return []  # Subscript / Attribute stores bind nothing new


def _target_uses(target: ast.AST) -> list[ast.Name]:
    """Names *read* by an assignment target: ``x[i] = v`` reads x and i,
    ``x.attr = v`` reads x."""
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        return expr_uses(target)
    if isinstance(target, (ast.Tuple, ast.List)):
        uses: list[ast.Name] = []
        for element in target.elts:
            uses.extend(_target_uses(element))
        return uses
    if isinstance(target, ast.Starred):
        return _target_uses(target.value)
    return []


def item_defs(item: ast.AST) -> list[tuple[str, ast.AST]]:
    """Names a CFG item binds, with the anchoring AST node.

    Header items contribute only their header bindings (a ``for`` target,
    a ``with ... as`` name, an ``except ... as`` name); bodies are
    separate blocks.
    """
    if isinstance(item, ast.Assign):
        defs = []
        for target in item.targets:
            defs.extend(_target_defs(target))
        return defs + _walrus_defs(item.value)
    if isinstance(item, ast.AnnAssign):
        if item.value is None:
            return []
        return _target_defs(item.target) + _walrus_defs(item.value)
    if isinstance(item, ast.AugAssign):
        return _target_defs(item.target) + _walrus_defs(item.value)
    if isinstance(item, (ast.For, ast.AsyncFor)):
        return _target_defs(item.target) + _walrus_defs(item.iter)
    if isinstance(item, (ast.With, ast.AsyncWith)):
        defs = []
        for with_item in item.items:
            if with_item.optional_vars is not None:
                defs.extend(_target_defs(with_item.optional_vars))
            defs.extend(_walrus_defs(with_item.context_expr))
        return defs
    if isinstance(item, ast.ExceptHandler):
        if item.name:
            return [(item.name, item)]
        return []
    if isinstance(item, (ast.Import, ast.ImportFrom)):
        defs = []
        for alias in item.names:
            name = alias.asname or alias.name.split(".")[0]
            if name != "*":
                defs.append((name, item))
        return defs
    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [(item.name, item)]
    if isinstance(item, (ast.If, ast.While)):
        return _walrus_defs(item.test)
    if isinstance(item, (ast.Expr, ast.Return, ast.Assert, ast.Raise)):
        return _walrus_defs(item)
    return []


def item_uses(item: ast.AST) -> list[ast.Name]:
    """Names a CFG item reads (header expressions only, see above)."""
    if isinstance(item, ast.Assign):
        uses = expr_uses(item.value)
        for target in item.targets:
            uses.extend(_target_uses(target))
        return uses
    if isinstance(item, ast.AnnAssign):
        return expr_uses(item.value) + _target_uses(item.target)
    if isinstance(item, ast.AugAssign):
        uses = expr_uses(item.value)
        if isinstance(item.target, ast.Name):
            uses.append(item.target)  # x += v reads x
        else:
            uses.extend(_target_uses(item.target))
        return uses
    if isinstance(item, (ast.If, ast.While)):
        return expr_uses(item.test)
    if isinstance(item, (ast.For, ast.AsyncFor)):
        return expr_uses(item.iter)
    if isinstance(item, (ast.With, ast.AsyncWith)):
        uses = []
        for with_item in item.items:
            uses.extend(expr_uses(with_item.context_expr))
        return uses
    if isinstance(item, ast.ExceptHandler):
        return expr_uses(item.type)
    if isinstance(item, ast.Match):
        return expr_uses(item.subject)
    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
        uses = []
        for decorator in item.decorator_list:
            uses.extend(expr_uses(decorator))
        for default in list(item.args.defaults) + [
            d for d in item.args.kw_defaults if d is not None
        ]:
            uses.extend(expr_uses(default))
        return uses
    if isinstance(item, ast.ClassDef):
        uses = []
        for decorator in item.decorator_list:
            uses.extend(expr_uses(decorator))
        for base in item.bases:
            uses.extend(expr_uses(base))
        return uses
    if isinstance(item, ast.Delete):
        return [
            node for node in ast.walk(item) if isinstance(node, ast.Name)
        ]
    # Expr / Return / Assert / Raise / Global / Nonlocal / Pass ...
    return expr_uses(item)


def item_exprs(item: ast.AST) -> list[ast.AST]:
    """The expression roots evaluated *by this CFG item itself* — the
    safe set to walk for sink checks.  Walking the whole item would
    descend into compound-statement bodies that live in other blocks."""
    if isinstance(item, ast.Assign):
        return [item.value] + list(item.targets)
    if isinstance(item, ast.AnnAssign):
        return ([item.value] if item.value is not None else []) + [
            item.target
        ]
    if isinstance(item, ast.AugAssign):
        return [item.value, item.target]
    if isinstance(item, (ast.If, ast.While)):
        return [item.test]
    if isinstance(item, (ast.For, ast.AsyncFor)):
        return [item.iter]
    if isinstance(item, (ast.With, ast.AsyncWith)):
        return [w.context_expr for w in item.items]
    if isinstance(item, ast.ExceptHandler):
        return [item.type] if item.type is not None else []
    if isinstance(item, ast.Match):
        return [item.subject]
    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return list(item.decorator_list) + [
            d
            for d in list(item.args.defaults) + list(item.args.kw_defaults)
            if d is not None
        ]
    if isinstance(item, ast.ClassDef):
        return list(item.decorator_list) + list(item.bases)
    if isinstance(item, ast.Return):
        return [item.value] if item.value is not None else []
    if isinstance(item, ast.Expr):
        return [item.value]
    if isinstance(item, ast.Assert):
        return [item.test] + ([item.msg] if item.msg is not None else [])
    if isinstance(item, ast.Raise):
        return [e for e in (item.exc, item.cause) if e is not None]
    if isinstance(item, ast.Delete):
        return list(item.targets)
    return []


# ---------------------------------------------------------------------------
# the fixpoint engine
# ---------------------------------------------------------------------------


class ForwardProblem:
    """A forward may-analysis over the map lattice (join = union)."""

    def entry_state(self) -> State:
        return {}

    def transfer(self, item: ast.AST, state: State) -> None:
        """Mutate ``state`` with the effect of one CFG item."""
        raise NotImplementedError


def _join_into(acc: State, other: State) -> None:
    for name, labels in other.items():
        existing = acc.get(name)
        acc[name] = labels if existing is None else existing | labels


def solve_forward(
    cfg: CFG, problem: ForwardProblem
) -> dict[int, State]:
    """Run ``problem`` to fixpoint; return the IN state of every
    reachable block."""
    order = [block.id for block in cfg.reachable()]
    in_states: dict[int, State] = {}
    out_states: dict[int, State] = {}
    worklist: deque[int] = deque(order)
    queued = set(order)
    # the lattice is finite and transfers are monotone in practice, but a
    # hard cap keeps a pathological function from wedging the linter
    max_steps = max(64, len(order) * 64)
    steps = 0
    while worklist and steps < max_steps:
        steps += 1
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        new_in: State = (
            dict(problem.entry_state()) if block_id == cfg.entry else {}
        )
        for pred in block.preds:
            if pred in out_states:
                _join_into(new_in, out_states[pred])
        in_states[block_id] = new_in
        state = dict(new_in)
        for item in block.items:
            problem.transfer(item, state)
        if out_states.get(block_id) != state:
            out_states[block_id] = state
            for succ in block.succs:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return in_states


def solve_refined(
    cfg: CFG,
    problem: ForwardProblem,
    *,
    refine: Callable[[State, int, int], State] | None = None,
    widen: Callable[[State, State], State] | None = None,
    widen_after: int = 3,
    narrow_rounds: int = 2,
) -> dict[int, State]:
    """:func:`solve_forward` for *infinite-height* domains.

    Two extra hooks make path-sensitive numeric analyses possible:

    - ``refine(out_state, src, dst)`` filters a predecessor's OUT state
      through the branch condition on the ``src -> dst`` edge (see
      :attr:`~xaidb.analysis.cfg.CFG.branches`) before it is joined into
      the successor's IN state — ``if x > 0:`` narrows ``x`` on the true
      edge.  It must return a fresh state and never mutate its input.
    - ``widen(previous_in, new_in)`` is applied to a block's IN state
      after the block has been visited more than ``widen_after`` times,
      jumping growing bounds to a finite threshold set so loops converge
      (plain union join never terminates over intervals: a loop counter
      climbs one lattice step per iteration forever).

    After the widened fixpoint, ``narrow_rounds`` plain passes (refine
    but no widen) re-run in block order to claw back precision the
    widening overshot — the classic widen-then-narrow recipe.  Both
    hooks defaulting to ``None`` degrades to :func:`solve_forward`.
    """

    def edge_state(pred: int, block_id: int) -> State | None:
        out = out_states.get(pred)
        if out is None:
            return None
        if refine is None:
            return out
        return refine(out, pred, block_id)

    order = [block.id for block in cfg.reachable()]
    in_states: dict[int, State] = {}
    out_states: dict[int, State] = {}
    worklist: deque[int] = deque(order)
    queued = set(order)
    visits: dict[int, int] = {}
    max_steps = max(64, len(order) * 64)
    steps = 0
    while worklist and steps < max_steps:
        steps += 1
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        new_in: State = (
            dict(problem.entry_state()) if block_id == cfg.entry else {}
        )
        for pred in block.preds:
            refined = edge_state(pred, block_id)
            if refined is not None:
                _join_into(new_in, refined)
        visits[block_id] = visits.get(block_id, 0) + 1
        if (
            widen is not None
            and visits[block_id] > widen_after
            and block_id in in_states
        ):
            new_in = widen(in_states[block_id], new_in)
        in_states[block_id] = new_in
        state = dict(new_in)
        for item in block.items:
            problem.transfer(item, state)
        if out_states.get(block_id) != state:
            out_states[block_id] = state
            for succ in block.succs:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    for _round in range(narrow_rounds):
        changed = False
        for block_id in order:
            block = cfg.blocks[block_id]
            new_in = (
                dict(problem.entry_state())
                if block_id == cfg.entry
                else {}
            )
            for pred in block.preds:
                refined = edge_state(pred, block_id)
                if refined is not None:
                    _join_into(new_in, refined)
            if new_in != in_states.get(block_id):
                in_states[block_id] = new_in
                changed = True
            state = dict(new_in)
            for item in block.items:
                problem.transfer(item, state)
            if out_states.get(block_id) != state:
                out_states[block_id] = state
                changed = True
        if not changed:
            break
    return in_states


def replay(
    cfg: CFG,
    problem: ForwardProblem,
    in_states: dict[int, State],
    visit: Callable[[ast.AST, State], None],
) -> None:
    """One deterministic pass over all reachable items in fixpoint
    states: ``visit(item, state)`` sees the state *before* the item's
    own transfer — the place sink checks and use accounting belong."""
    for block in cfg.reachable():
        state = dict(in_states.get(block.id, {}))
        for item in block.items:
            visit(item, state)
            problem.transfer(item, state)


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Definition:
    """One binding site of a local variable."""

    name: str
    label: str
    node: ast.AST = field(compare=False, hash=False)
    item: ast.AST = field(compare=False, hash=False)


class ReachingDefinitions(ForwardProblem):
    """Which definition of each name may reach each program point.

    Labels are stable per-function strings (``name@line:col``, with an
    ordinal tiebreak), so states are comparable across iterations.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.definitions: dict[str, Definition] = {}
        self._labels_by_site: dict[tuple[int, str], str] = {}
        ordinal = 0
        for block in cfg:
            for item in block.items:
                for name, node in item_defs(item):
                    label = (
                        f"{name}@{getattr(node, 'lineno', 0)}:"
                        f"{getattr(node, 'col_offset', 0)}#{ordinal}"
                    )
                    ordinal += 1
                    self._labels_by_site[(id(item), name)] = label
                    self.definitions[label] = Definition(
                        name=name, label=label, node=node, item=item
                    )

    def transfer(self, item: ast.AST, state: State) -> None:
        for name, _node in item_defs(item):
            label = self._labels_by_site.get((id(item), name))
            if label is not None:
                state[name] = frozenset({label})

    def solve(self) -> dict[int, State]:
        return solve_forward(self.cfg, self)


# ---------------------------------------------------------------------------
# value taint
# ---------------------------------------------------------------------------


class ValueTaint(ForwardProblem):
    """Label propagation through assignment chains.

    The default expression semantics is the union of the labels of every
    name the expression reads — "derived from" in the loosest sense —
    with :meth:`eval_call` as the override point for call expressions
    (sources, sanitisers, passthroughs).  Tuple-unpacking assignments
    with a literal tuple/list value propagate element-wise; any other
    unpacking joins the whole right-hand side into each target.
    """

    def __init__(self, entry: State | None = None) -> None:
        self._entry: State = dict(entry or {})

    def entry_state(self) -> State:
        return dict(self._entry)

    # -- expression semantics ----------------------------------------

    def eval_expr(self, expr: ast.AST | None, state: State) -> frozenset[str]:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, state)
        labels: frozenset[str] = frozenset()
        for name in expr_uses(expr):
            labels |= state.get(name.id, frozenset())
        # calls nested deeper in the expression still get their say
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                labels |= self.eval_call(node, state)
        return labels

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        labels: frozenset[str] = frozenset()
        for name in expr_uses(call):
            labels |= state.get(name.id, frozenset())
        return labels

    # -- transfer ----------------------------------------------------

    def transfer(self, item: ast.AST, state: State) -> None:
        if isinstance(item, ast.Assign):
            value_labels = self.eval_expr(item.value, state)
            for target in item.targets:
                self._assign(target, item.value, value_labels, state)
        elif isinstance(item, ast.AnnAssign):
            if item.value is not None:
                self._assign(
                    item.target,
                    item.value,
                    self.eval_expr(item.value, state),
                    state,
                )
        elif isinstance(item, ast.AugAssign):
            if isinstance(item.target, ast.Name):
                state[item.target.id] = state.get(
                    item.target.id, frozenset()
                ) | self.eval_expr(item.value, state)
        elif isinstance(item, (ast.For, ast.AsyncFor)):
            # iterating a labelled value yields labelled elements
            labels = self.eval_expr(item.iter, state)
            for name, _node in _target_defs(item.target):
                state[name] = labels
        elif isinstance(item, (ast.With, ast.AsyncWith)):
            for with_item in item.items:
                if with_item.optional_vars is not None:
                    labels = self.eval_expr(with_item.context_expr, state)
                    for name, _node in _target_defs(
                        with_item.optional_vars
                    ):
                        state[name] = labels
        elif isinstance(
            item,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Import,
                ast.ImportFrom,
            ),
        ):
            for name, _node in item_defs(item):
                state[name] = frozenset()
        elif isinstance(item, ast.ExceptHandler):
            if item.name:
                state[item.name] = frozenset()
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        # walrus bindings inside any header/expression item
        for name, node in item_defs(item):
            if isinstance(node, ast.Name) and isinstance(
                getattr(node, "ctx", None), ast.Store
            ):
                parent = _walrus_value(item, node)
                if parent is not None:
                    state[name] = self.eval_expr(parent, state)

    def _assign(
        self,
        target: ast.AST,
        value: ast.AST,
        value_labels: frozenset[str],
        state: State,
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = value_labels
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, value, value_labels, state)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts) and not any(
                isinstance(e, ast.Starred) for e in target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._assign(
                        sub_target,
                        sub_value,
                        self.eval_expr(sub_value, state),
                        state,
                    )
            else:
                for sub_target in target.elts:
                    self._assign(sub_target, value, value_labels, state)


def _walrus_value(item: ast.AST, target: ast.Name) -> ast.AST | None:
    """The value expression of the ``NamedExpr`` binding ``target``."""
    for node in ast.walk(item):
        if isinstance(node, ast.NamedExpr) and node.target is target:
            return node.value
    return None


# ---------------------------------------------------------------------------
# ndarray view aliasing
# ---------------------------------------------------------------------------

#: Method calls / attribute accesses returning a view of the receiver.
VIEW_METHODS = {
    "reshape",
    "view",
    "ravel",
    "transpose",
    "swapaxes",
    "squeeze",
    "T",
    "flat",
}

#: numpy-level functions that can return their first argument's buffer.
VIEW_FUNCTIONS = {
    "asarray",
    "asanyarray",
    "ascontiguousarray",
    "asfortranarray",
    "atleast_1d",
    "atleast_2d",
    "atleast_3d",
    "reshape",
    "ravel",
    "transpose",
    "squeeze",
    "broadcast_to",
}


def view_sources(expr: ast.AST | None) -> set[str]:
    """Names whose ndarray buffer ``expr``'s value may share.

    ``x[a:b]``, ``x.T``, ``x.reshape(...)`` and the no-copy numpy
    passthroughs (``np.asarray(x)`` …) all alias ``x``; arithmetic,
    ``.copy()`` and ``np.array(...)`` allocate fresh storage and return
    the empty set.  Containers propagate element-wise so a tuple return
    can still leak a view.
    """
    if expr is None:
        return set()
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, ast.Starred):
        return view_sources(expr.value)
    if isinstance(expr, ast.Subscript):
        return view_sources(expr.value)
    if isinstance(expr, ast.Attribute):
        if expr.attr in VIEW_METHODS:
            return view_sources(expr.value)
        return set()
    if isinstance(expr, (ast.Tuple, ast.List)):
        sources: set[str] = set()
        for element in expr.elts:
            sources |= view_sources(element)
        return sources
    if isinstance(expr, ast.IfExp):
        return view_sources(expr.body) | view_sources(expr.orelse)
    if isinstance(expr, ast.NamedExpr):
        return view_sources(expr.value)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            if func.attr in VIEW_METHODS:
                return view_sources(func.value)
            if func.attr in VIEW_FUNCTIONS and expr.args:
                return view_sources(expr.args[0])
            return set()
        if isinstance(func, ast.Name) and func.id in VIEW_FUNCTIONS:
            if expr.args:
                return view_sources(expr.args[0])
        return set()
    return set()


def names_read_in_nested_scopes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names loaded anywhere inside nested functions/classes/lambdas of
    ``fn`` — a flow-insensitive escape hatch for closure captures."""
    captured: set[str] = set()
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Name) and isinstance(
                    inner.ctx, ast.Load
                ):
                    captured.add(inner.id)
    return captured


def calls_dynamic_scope(fn: ast.AST) -> bool:
    """True when ``fn`` calls ``locals``/``vars``/``eval``/``exec`` —
    any local may then be read invisibly, so skip precise analyses."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"locals", "vars", "eval", "exec"}
        ):
            return True
    return False


def function_params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    """All parameter names of ``fn`` in declaration order."""
    args = fn.args
    names = [
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    ]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def iter_functions(
    tree: ast.AST,
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree`` (nested included —
    each is analysed as its own scope)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
