import pytest

from xaidb.causal import CausalGraph
from xaidb.exceptions import ValidationError


@pytest.fixture()
def diamond():
    #    a
    #   / \
    #  b   c
    #   \ /
    #    d
    return CausalGraph(
        ["a", "b", "c", "d"], [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )


class TestCausalGraph:
    def test_rejects_cycles(self):
        with pytest.raises(ValidationError, match="acyclic"):
            CausalGraph(["a", "b"], [("a", "b"), ("b", "a")])

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(ValidationError, match="unknown node"):
            CausalGraph(["a"], [("a", "z")])

    def test_parents_children(self, diamond):
        assert diamond.parents("d") == ["b", "c"]
        assert diamond.children("a") == ["b", "c"]
        assert diamond.parents("a") == []

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.descendants("a") == {"b", "c", "d"}

    def test_roots(self, diamond):
        assert diamond.roots() == ["a"]

    def test_topological_order_is_causal(self, diamond):
        order = diamond.topological_order()
        assert diamond.is_causal_order(order)
        assert order[0] == "a"
        assert order[-1] == "d"

    def test_all_topological_orders_of_diamond(self, diamond):
        orders = diamond.all_topological_orders()
        assert len(orders) == 2  # b,c interchangeable
        assert all(diamond.is_causal_order(o) for o in orders)

    def test_all_orders_limit(self):
        independent = CausalGraph(list("abcd"), [])
        assert len(independent.all_topological_orders(limit=5)) == 5

    def test_is_causal_order_rejects_wrong_sets(self, diamond):
        assert not diamond.is_causal_order(["a", "b", "c"])
        assert not diamond.is_causal_order(["d", "c", "b", "a"])

    def test_subgraph(self, diamond):
        sub = diamond.subgraph_on(["a", "b", "d"])
        assert set(sub.nodes) == {"a", "b", "d"}
        assert ("a", "b") in sub.edges
        assert ("b", "d") in sub.edges
        assert len(sub.edges) == 2

    def test_contains(self, diamond):
        assert "a" in diamond
        assert "z" not in diamond

    def test_unknown_node_queries_raise(self, diamond):
        with pytest.raises(ValidationError):
            diamond.parents("z")

    def test_to_networkx_is_copy(self, diamond):
        g = diamond.to_networkx()
        g.add_edge("d", "a")  # make it cyclic in the copy
        assert diamond.is_causal_order(diamond.topological_order())
