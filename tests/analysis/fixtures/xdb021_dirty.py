"""Dirty fixture for XDB021: async request handlers that block the
event loop, directly and through a helper."""

import time

__all__ = ["serve_one", "serve_two"]


def _train(model, X, y):
    model.fit(X, y)  # summary: may_block (model-evaluation path)
    return model


async def serve_one(request):
    time.sleep(0.05)  # finding 1: blocking sleep in async body
    return request


async def serve_two(model, X, y):
    trained = _train(model, X, y)  # finding 2: blocking helper, awaited by nobody
    return trained
