"""Linear regression (ordinary least squares with optional ridge).

Fitted in closed form from the normal equations.  The sufficient
statistics ``X^T X`` and ``X^T y`` are exposed because PrIU-style
incremental maintenance (:mod:`xaidb.incremental.priu`) updates exactly
those quantities when training rows are deleted.
"""

from __future__ import annotations

import numpy as np

from xaidb.models.base import Regressor
from xaidb.utils.linalg import solve_psd
from xaidb.utils.validation import check_array, check_fitted, check_positive

__all__ = ["LinearRegression"]


class LinearRegression(Regressor):
    """OLS / ridge regression.

    Parameters
    ----------
    l2:
        Ridge penalty strength (0 gives plain OLS).  The intercept is
        never penalised.
    fit_intercept:
        Whether to learn an additive intercept term.
    """

    def __init__(self, *, l2: float = 0.0, fit_intercept: bool = True) -> None:
        if l2 < 0:
            check_positive(l2, name="l2", strict=False)
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.xtx_: np.ndarray | None = None
        self.xty_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _augment(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.column_stack([X, np.ones(X.shape[0])])

    def _penalty_matrix(self, n_columns: int) -> np.ndarray:
        penalty = np.eye(n_columns) * self.l2
        if self.fit_intercept:
            penalty[-1, -1] = 0.0
        return penalty

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = self._validate_fit_args(X, y)
        design = self._augment(X)
        self.xtx_ = design.T @ design
        self.xty_ = design.T @ y
        theta = solve_psd(
            self.xtx_ + self._penalty_matrix(design.shape[1]), self.xty_
        )
        self._unpack(theta)
        return self

    def _unpack(self, theta: np.ndarray) -> None:
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0

    def refit_from_statistics(
        self, xtx: np.ndarray, xty: np.ndarray
    ) -> "LinearRegression":
        """Solve the normal equations from externally maintained sufficient
        statistics (the PrIU incremental-update entry point)."""
        xtx = check_array(xtx, name="xtx", ndim=2)
        xty = check_array(xty, name="xty", ndim=1)
        self.xtx_ = xtx
        self.xty_ = xty
        theta = solve_psd(xtx + self._penalty_matrix(xtx.shape[0]), xty)
        self._unpack(theta)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["coef_"])
        X = check_array(X, name="X", ndim=2)
        return X @ self.coef_ + self.intercept_

    # ------------------------------------------------------------------
    # hooks for influence functions
    # ------------------------------------------------------------------
    @property
    def theta_(self) -> np.ndarray:
        """Full parameter vector (coefficients, then intercept if any)."""
        check_fitted(self, ["coef_"])
        if self.fit_intercept:
            return np.append(self.coef_, self.intercept_)
        return self.coef_.copy()

    def loss_gradients(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-example gradient of the squared loss at the fitted theta:
        ``grad_i = (x_i^T theta - y_i) * x_i`` (intercept column included)."""
        check_fitted(self, ["coef_"])
        design = self._augment(check_array(X, name="X", ndim=2))
        residuals = design @ self.theta_ - np.asarray(y, dtype=float)
        return design * residuals[:, None]

    def loss_hessian(self, X: np.ndarray) -> np.ndarray:
        """Average Hessian of the penalised squared loss: ``X^T X / n + L2``."""
        check_fitted(self, ["coef_"])
        design = self._augment(check_array(X, name="X", ndim=2))
        # xailint: disable=XDB023 (check_array rejects an empty X and _augment keeps its rows)
        return design.T @ design / design.shape[0] + self._penalty_matrix(
            design.shape[1]
        ) / design.shape[0]
