"""A11 (ablation) — parallel xailint scan over the shared worker pool.

The concurrency tier (XDB018-XDB022) is *about* the shared-memory
runtime; this bench closes the loop by running the linter's own
per-file phase over that runtime.  ``run_paths(jobs=N)`` fans the
parse + file-rule work out over ``WorkerPool`` processes while project
rules, suppression filtering and the final sort stay in the parent, so
the contract mirrors ``parallel_map``'s: findings are *byte-identical*
to a serial scan for every job count — only wall-clock may change.

Asserted invariants:

1. *identity*: the serial and ``jobs=4`` cold scans are
   finding-for-finding identical (suppressions included);
2. *no silent fallback*: the pooled scan really crossed the process
   boundary (``WorkerPool.n_maps`` advanced) — a pickling regression in
   the per-file task would otherwise hide behind the serial fallback;
3. *bounded overhead*: fan-out never costs more than 2x serial wall
   (on a single-CPU host there is nothing to win, only overhead to
   bound; with >= 4 CPUs the per-file phase must actually win).

The run emits ``benchmarks/BENCH_lint.json`` with the measured wall
times, the speedup and the CPU count the numbers were taken on.
"""

import json
import os
import time

from pathlib import Path

from benchmarks._tables import print_table
from xaidb.analysis import run_paths
from xaidb.runtime.parallel import WorkerPool

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The repo-standard scan set (mirrors tools/xailint.py defaults).
SCAN_PATHS = [
    REPO_ROOT / name
    for name in ("src", "benchmarks", "examples", "tools")
    if (REPO_ROOT / name).is_dir()
]

N_JOBS = 4


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings + result.suppressed
    ]


def _timed_scan(jobs):
    started = time.perf_counter()
    result = run_paths(
        SCAN_PATHS, root=REPO_ROOT, cache_path=None, jobs=jobs
    )
    return result, time.perf_counter() - started


def compute_rows():
    WorkerPool.close_global()
    try:
        serial, serial_seconds = _timed_scan(None)
        maps_before = WorkerPool.get().n_maps
        fanned, fanned_seconds = _timed_scan(N_JOBS)
        maps_after = WorkerPool.get().n_maps
    finally:
        WorkerPool.close_global()
    speedup = serial_seconds / fanned_seconds
    rows = [
        (
            "serial",
            serial.stats.files_scanned,
            f"{serial_seconds * 1e3:.1f}",
            "1.0x",
        ),
        (
            f"--jobs {N_JOBS}",
            fanned.stats.files_scanned,
            f"{fanned_seconds * 1e3:.1f}",
            f"{speedup:.2f}x",
        ),
    ]
    record = {
        "n_jobs": N_JOBS,
        "n_cpus": os.cpu_count(),
        "files_scanned": serial.stats.files_scanned,
        "serial_s": serial_seconds,
        "jobs_s": fanned_seconds,
        "speedup": speedup,
        "identical": _fingerprint(serial) == _fingerprint(fanned),
        "pool_maps": maps_after - maps_before,
    }
    context = {"serial": serial, "fanned": fanned, "record": record}
    if os.environ.get("XAIDB_A11_SMOKE") != "1":
        out_path = Path(__file__).resolve().parent / "BENCH_lint.json"
        # keep foreign keys (the A13 "a13_numeric" record) intact
        merged = {}
        if out_path.exists():
            merged = json.loads(out_path.read_text())
        merged.update(record)
        out_path.write_text(json.dumps(merged, indent=2) + "\n")
    return rows, context


def test_a11_concurrency_lint(benchmark):
    rows, context = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    record = context["record"]
    print_table(
        f"A11 (ablation): xailint --jobs {N_JOBS} over the shared "
        f"WorkerPool vs serial (cold, {record['n_cpus']} CPU(s))",
        ["scan", "files", "wall ms", "speedup"],
        rows,
    )
    # identity: the fan-out must be invisible in the verdicts
    assert record["identical"]
    serial, fanned = context["serial"], context["fanned"]
    assert serial.files_scanned == fanned.files_scanned
    # the pooled scan really used worker processes — a per-file task
    # that stopped pickling would silently fall back to serial and
    # this bench would measure nothing
    assert record["pool_maps"] >= 1
    # fan-out overhead is bounded; with real cores it must pay off
    assert record["speedup"] >= 0.5
    if (record["n_cpus"] or 1) >= 4:
        assert record["speedup"] >= 1.1
    # the gate this bench models is currently green
    assert serial.ok, [f.message for f in serial.findings]
