"""Finding and result containers for the xailint static-analysis pass.

A :class:`Finding` is one rule violation anchored to a file position; a
:class:`LintResult` is the outcome of a whole run (findings that survived
suppression filtering, plus bookkeeping for the reporters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "LintResult", "ScanStats", "SEVERITIES"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    path:
        Path of the offending file, relative to the lint root when
        possible (stable across machines, so reporters can be diffed).
    line, col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Stable identifier, e.g. ``"XDB002"``.
    symbol:
        Human-readable kebab-case name, e.g. ``"unseeded-randomness"``.
    message:
        Specific description of this occurrence.
    severity:
        ``"error"`` (gates CI) or ``"warning"``.
    """

    path: str
    line: int
    col: int
    rule_id: str
    symbol: str
    message: str
    severity: str = "error"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class ScanStats:
    """Bookkeeping for one scan: cache effectiveness and where the
    time went (the ``--stats`` CLI flag renders this)."""

    files_scanned: int = 0
    #: Files whose results were served from the incremental cache.
    cache_hits: int = 0
    #: Files that had to be parsed and linted from scratch.
    cache_misses: int = 0
    #: Whether the cross-module (project) rule results were cached.
    project_from_cache: bool = False
    #: Call-graph SCCs whose function summaries came from the cache
    #: (zero/zero when no interprocedural rule ran or the project
    #: results themselves were cached wholesale).
    summary_hits: int = 0
    #: SCCs whose summaries had to be recomputed bottom-up.
    summary_misses: int = 0
    parse_seconds: float = 0.0
    #: Wall time spent inside each rule, across all files.
    rule_seconds: dict[str, float] = field(default_factory=dict)
    #: Wall time per function-summary pass (alias/seed/shape/effects/
    #: interval/typestate/raises) across every SCC that had to be
    #: recomputed.
    pass_seconds: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def summary_hit_rate(self) -> float:
        total = self.summary_hits + self.summary_misses
        return self.summary_hits / total if total else 0.0


@dataclass
class LintResult:
    """Aggregate outcome of linting a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: list[Finding] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)

    @property
    def ok(self) -> bool:
        """True when no unsuppressed error-severity findings remain."""
        return not any(f.severity == "error" for f in self.findings)

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))
