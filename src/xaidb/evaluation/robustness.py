"""Robustness of explanations to input perturbation.

"Interpretation of neural networks is fragile" (Ghorbani, Abid & Zou
2019): tiny, prediction-preserving input changes can swing attributions
wildly.  The local attribution-Lipschitz estimate here quantifies that:
the maximum ratio of attribution change to input change over sampled
neighbours.  Lower = more robust.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_positive

__all__ = ["AttributionFn", "attribution_lipschitz"]

AttributionFn = Callable[[np.ndarray], np.ndarray]


def attribution_lipschitz(
    attribution_fn: AttributionFn,
    instance: np.ndarray,
    *,
    radius: float = 0.1,
    n_samples: int = 20,
    random_state: RandomState = None,
) -> float:
    """Empirical local Lipschitz constant of an attribution map.

    ``attribution_fn`` maps an input vector to its attribution vector;
    ``n_samples`` perturbations are drawn uniformly in an L-inf ball of
    ``radius``, and the maximum of
    ``||phi(x') - phi(x)|| / ||x' - x||`` is returned.
    """
    instance = check_array(instance, name="instance", ndim=1)
    check_positive(radius, name="radius")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    rng = check_random_state(random_state)
    base = np.asarray(attribution_fn(instance), dtype=float)
    worst = 0.0
    for __ in range(n_samples):
        delta = rng.uniform(-radius, radius, size=instance.shape[0])
        neighbour = instance + delta
        values = np.asarray(attribution_fn(neighbour), dtype=float)
        denominator = float(np.linalg.norm(delta))
        if denominator < 1e-12:
            continue
        worst = max(worst, float(np.linalg.norm(values - base)) / denominator)
    return worst
