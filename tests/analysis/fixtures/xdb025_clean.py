"""Clean fixture for XDB025: the same reductions over provably
non-degenerate samples."""

import numpy as np

__all__ = ["mean_of_some", "variance_of_two"]


def mean_of_some():
    scores = np.zeros((4,))  # proven length [4, 4]
    return scores.mean()


def variance_of_two():
    sample = np.ones(2)  # proven length [2, 2]: n - ddof = 1
    return sample.std(ddof=1)
