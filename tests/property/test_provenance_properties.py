"""Property-based tests: why-provenance must obey the positive-semiring
laws, and satisfaction must be monotone."""

from hypothesis import given, settings
from hypothesis import strategies as st

from xaidb.db import Provenance

atoms = st.sampled_from(list("abcdef"))
witness = st.frozensets(atoms, min_size=0, max_size=3)
provenance = st.builds(
    Provenance, st.frozensets(witness, min_size=0, max_size=4)
)
subset = st.frozensets(atoms, min_size=0, max_size=6)


@settings(max_examples=100, deadline=None)
@given(p=provenance, q=provenance)
def test_addition_commutative(p, q):
    assert p + q == q + p


@settings(max_examples=100, deadline=None)
@given(p=provenance, q=provenance)
def test_multiplication_commutative(p, q):
    assert p * q == q * p


@settings(max_examples=60, deadline=None)
@given(p=provenance, q=provenance, r=provenance)
def test_addition_associative(p, q, r):
    assert (p + q) + r == p + (q + r)


@settings(max_examples=60, deadline=None)
@given(p=provenance, q=provenance, r=provenance)
def test_multiplication_associative(p, q, r):
    assert (p * q) * r == p * (q * r)


@settings(max_examples=60, deadline=None)
@given(p=provenance, q=provenance, r=provenance)
def test_distributivity(p, q, r):
    assert p * (q + r) == p * q + p * r


@settings(max_examples=100, deadline=None)
@given(p=provenance)
def test_identities(p):
    assert p + Provenance.empty() == p
    assert p * Provenance.always() == p
    assert (p * Provenance.empty()) == Provenance.empty()


@settings(max_examples=100, deadline=None)
@given(p=provenance)
def test_idempotence(p):
    """Why-provenance is an absorptive (hence idempotent) semiring."""
    assert p + p == p
    assert p * p == p


@settings(max_examples=100, deadline=None)
@given(p=provenance, present=subset, extra=atoms)
def test_satisfaction_monotone(p, present, extra):
    """Adding tuples can only make more things derivable."""
    if p.satisfied_by(present):
        assert p.satisfied_by(present | {extra})


@settings(max_examples=100, deadline=None)
@given(p=provenance, q=provenance, present=subset)
def test_satisfaction_homomorphism(p, q, present):
    """Evaluation under a world commutes with + (OR) and * (AND)."""
    assert (p + q).satisfied_by(present) == (
        p.satisfied_by(present) or q.satisfied_by(present)
    )
    assert (p * q).satisfied_by(present) == (
        p.satisfied_by(present) and q.satisfied_by(present)
    )


@settings(max_examples=100, deadline=None)
@given(p=provenance)
def test_lineage_covers_all_witnesses(p):
    lineage = p.lineage()
    for w in p.witnesses:
        assert w <= lineage
