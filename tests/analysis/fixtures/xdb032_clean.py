"""Clean fixture for XDB032: each handler either narrows the catch or
does something observable with the failure (logs it, re-raises)."""

import logging

__all__ = ["load_cache", "shutdown"]

logger = logging.getLogger(__name__)


def load_cache(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:  # narrow: only the failure this path can produce
        return ""


def shutdown(workers):
    for worker in workers:
        try:
            worker.halt()
        except Exception as exc:
            logger.warning("worker halt failed: %s", exc)
            raise
