import numpy as np
import pytest

from xaidb.datavaluation import (
    UtilityFunction,
    distributional_shapley_values,
    knn_shapley_values,
)
from xaidb.datavaluation.knn_shapley import knn_utility
from xaidb.exceptions import ValidationError
from xaidb.models import KNeighborsClassifier


@pytest.fixture(scope="module")
def knn_setup(income):
    train, valid = income.dataset.split(test_fraction=0.3, random_state=20)
    return train.X[:60], train.y[:60], valid.X[:40], valid.y[:40]


class TestKnnShapley:
    def test_efficiency_axiom_exact(self, knn_setup):
        """The closed form must satisfy sum(values) == v(D) exactly."""
        X, y, Xv, yv = knn_setup
        values = knn_shapley_values(X, y, Xv, yv, k=5)
        assert values.sum() == pytest.approx(knn_utility(X, y, Xv, yv, k=5))

    def test_matches_monte_carlo_on_small_problem(self):
        """Cross-check the recursion against TMC over the same utility."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(12, 2))
        y = (X[:, 0] > 0).astype(float)
        Xv = rng.normal(size=(20, 2))
        yv = (Xv[:, 0] > 0).astype(float)
        exact = knn_shapley_values(X, y, Xv, yv, k=3)

        from xaidb.explainers.shapley.games import CachedGame, FunctionGame
        from xaidb.explainers.shapley import exact_shapley_values

        def utility(subset):
            if not subset:
                return 0.0
            rows = sorted(subset)
            return knn_utility(X[rows], y[rows], Xv, yv, k=3)

        game = CachedGame(FunctionGame(12, utility))
        phi = exact_shapley_values(game)
        assert np.allclose(exact, phi, atol=1e-10)

    def test_helpful_neighbour_valued_higher(self):
        X = np.asarray([[0.0], [0.1], [5.0]])
        y = np.asarray([1.0, 1.0, 0.0])
        Xv = np.asarray([[0.05]])
        yv = np.asarray([1.0])
        values = knn_shapley_values(X, y, Xv, yv, k=1)
        assert values[0] > values[2]
        assert values[1] > values[2]

    def test_k_out_of_range(self, knn_setup):
        X, y, Xv, yv = knn_setup
        with pytest.raises(ValidationError):
            knn_shapley_values(X, y, Xv, yv, k=0)
        with pytest.raises(ValidationError):
            knn_shapley_values(X, y, Xv, yv, k=len(y) + 1)

    def test_fast_on_moderate_n(self, income):
        import time

        train, valid = income.dataset.split(test_fraction=0.3, random_state=21)
        start = time.perf_counter()
        knn_shapley_values(train.X, train.y, valid.X[:50], valid.y[:50], k=5)
        assert time.perf_counter() - start < 5.0


class TestDistributionalShapley:
    def test_shapes_and_determinism(self, knn_setup):
        X, y, Xv, yv = knn_setup
        utility = UtilityFunction(KNeighborsClassifier(n_neighbors=3), Xv, yv)
        a, ea = distributional_shapley_values(
            utility, X[:4], y[:4], X, y,
            n_iterations=10, min_cardinality=8, random_state=0,
        )
        b, __ = distributional_shapley_values(
            utility, X[:4], y[:4], X, y,
            n_iterations=10, min_cardinality=8, random_state=0,
        )
        assert a.shape == (4,)
        assert np.array_equal(a, b)
        assert np.all(ea >= 0)

    def test_stability_across_pools(self, income):
        """The E15 property: distributional values of the same points are
        correlated across disjoint context pools."""
        train, valid = income.dataset.split(test_fraction=0.4, random_state=22)
        utility = UtilityFunction(
            KNeighborsClassifier(n_neighbors=5), valid.X[:60], valid.y[:60]
        )
        points_X, points_y = train.X[:8], train.y[:8]
        pool_a_X, pool_a_y = train.X[10:110], train.y[10:110]
        pool_b_X, pool_b_y = train.X[110:210], train.y[110:210]
        values_a, __ = distributional_shapley_values(
            utility, points_X, points_y, pool_a_X, pool_a_y,
            n_iterations=60, min_cardinality=15, max_cardinality=60,
            random_state=1,
        )
        values_b, __ = distributional_shapley_values(
            utility, points_X, points_y, pool_b_X, pool_b_y,
            n_iterations=60, min_cardinality=15, max_cardinality=60,
            random_state=2,
        )
        # directions should agree for most points
        agreement = np.mean(np.sign(values_a) == np.sign(values_b))
        assert agreement >= 0.5

    def test_resampler_hook(self, income):
        train, valid = income.dataset.split(test_fraction=0.4, random_state=23)
        utility = UtilityFunction(
            KNeighborsClassifier(n_neighbors=3), valid.X[:30], valid.y[:30]
        )
        calls = {"n": 0}

        def resampler(m, rng):
            calls["n"] += 1
            fresh = income.resample(m, random_state=rng)
            return fresh.X, fresh.y

        distributional_shapley_values(
            utility, train.X[:2], train.y[:2], train.X, train.y,
            n_iterations=5, min_cardinality=10, max_cardinality=20,
            resampler=resampler, random_state=3,
        )
        assert calls["n"] == 5

    def test_invalid_cardinalities(self, knn_setup):
        X, y, Xv, yv = knn_setup
        utility = UtilityFunction(KNeighborsClassifier(n_neighbors=3), Xv, yv)
        with pytest.raises(ValidationError):
            distributional_shapley_values(
                utility, X[:2], y[:2], X, y,
                min_cardinality=50, max_cardinality=50,
            )
