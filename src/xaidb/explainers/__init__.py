"""Feature-based explanations (tutorial §2.1): surrogate methods (LIME,
global/local surrogates), Shapley-value methods (exact, sampling, Kernel,
Tree, QII, causal/asymmetric, flow), gradient attributions, and
counterfactual explanations with algorithmic recourse."""

from xaidb.explainers.base import (
    Explainer,
    FeatureAttribution,
    as_predict_fn,
    predict_positive_proba,
)
from xaidb.explainers.cxplain import CXPlainExplainer, granger_importance_targets
from xaidb.explainers.gradient import (
    gradient_times_input,
    integrated_gradients,
    saliency,
    smoothgrad,
)
from xaidb.explainers.global_methods import (
    accumulated_local_effects,
    ice_curves,
    partial_dependence,
    permutation_importance,
)
from xaidb.explainers.lime import LimeExplainer, LimeExplanation
from xaidb.explainers.prototypes import (
    MMDCritic,
    PrototypeExplanation,
    prototype_classifier_accuracy,
)
from xaidb.explainers.lime_text import (
    BagOfWordsClassifier,
    LimeTextExplainer,
    tokenize,
)
from xaidb.explainers.surrogate import (
    GlobalSurrogate,
    LinearModelTreeSurrogate,
    surrogate_fidelity,
)

__all__ = [
    "Explainer",
    "FeatureAttribution",
    "as_predict_fn",
    "predict_positive_proba",
    "LimeExplainer",
    "LimeExplanation",
    "LimeTextExplainer",
    "BagOfWordsClassifier",
    "tokenize",
    "GlobalSurrogate",
    "LinearModelTreeSurrogate",
    "surrogate_fidelity",
    "saliency",
    "gradient_times_input",
    "integrated_gradients",
    "smoothgrad",
    "CXPlainExplainer",
    "granger_importance_targets",
    "partial_dependence",
    "ice_curves",
    "accumulated_local_effects",
    "permutation_importance",
    "MMDCritic",
    "PrototypeExplanation",
    "prototype_classifier_accuracy",
]
