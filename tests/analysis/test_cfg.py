"""Shape tests for the per-function CFG builder."""

from __future__ import annotations

import ast
import textwrap

import pytest

from xaidb.analysis import build_cfg, function_cfg


def _cfg(src: str):
    tree = ast.parse(textwrap.dedent(src))
    return function_cfg(tree.body[0])


def _block_with(cfg, node_type):
    """The unique block holding an item of ``node_type``."""
    matches = [
        block
        for block in cfg
        if any(isinstance(item, node_type) for item in block.items)
    ]
    assert len(matches) == 1, matches
    return matches[0]


def test_straight_line_single_block():
    cfg = _cfg(
        """
        def f(a):
            x = a
            y = x
            return y
        """
    )
    entry = cfg.block(cfg.entry)
    assert [type(i).__name__ for i in entry.items] == [
        "Assign",
        "Assign",
        "Return",
    ]
    assert entry.succs == {cfg.exit}
    assert len(cfg.reachable()) == 2  # entry + exit


def test_if_else_diamond():
    cfg = _cfg(
        """
        def f(a):
            if a:
                x = 1
            else:
                x = 2
            return x
        """
    )
    header = _block_with(cfg, ast.If)
    # then-entry and else-entry; the join is reached through them
    assert len(header.succs) == 2
    ret = _block_with(cfg, ast.Return)
    assert len(ret.preds) == 2  # both branches converge on the join


def test_if_without_else_falls_through():
    cfg = _cfg(
        """
        def f(a):
            if a:
                x = 1
            return a
        """
    )
    header = _block_with(cfg, ast.If)
    ret = _block_with(cfg, ast.Return)
    # the not-taken edge goes straight from the header to the join
    assert ret.id in header.succs


@pytest.mark.parametrize(
    "src,header_type",
    [
        (
            """
            def f(xs):
                total = 0
                while xs:
                    total += 1
                return total
            """,
            ast.While,
        ),
        (
            """
            def f(xs):
                total = 0
                for x in xs:
                    total += x
                return total
            """,
            ast.For,
        ),
    ],
)
def test_loop_has_back_edge_and_exit_edge(src, header_type):
    cfg = _cfg(src)
    header = _block_with(cfg, header_type)
    body = _block_with(cfg, ast.AugAssign)
    assert header.id in body.succs  # back edge
    assert body.id in header.succs  # taken edge
    ret = _block_with(cfg, ast.Return)
    # not-taken edge reaches the after-loop block feeding the return
    assert header.id in {p for p in ret.preds} or any(
        header.id in cfg.block(p).preds for p in ret.preds
    )


def test_break_and_continue_resolve_to_innermost_loop():
    cfg = _cfg(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
                continue
            return 0
        """
    )
    header = _block_with(cfg, ast.For)
    brk = _block_with(cfg, ast.Break)
    cont = _block_with(cfg, ast.Continue)
    assert header.id in cont.succs  # continue -> loop header
    # break -> the after-loop block, where the return lives
    ret = _block_with(cfg, ast.Return)
    assert ret.id in brk.succs


def test_try_body_blocks_edge_to_handler():
    cfg = _cfg(
        """
        def f(a):
            try:
                x = a
                y = x
            except ValueError:
                y = 0
            return y
        """
    )
    handler = _block_with(cfg, ast.ExceptHandler)
    body_blocks = [
        block
        for block in cfg
        if any(isinstance(i, ast.Assign) for i in block.items)
        and block.id != handler.id
    ]
    # an exception can fire between any two try-body statements, so the
    # body block(s) carry conservative edges into the handler
    for block in body_blocks:
        if handler.id not in block.succs:
            continue
        break
    else:
        raise AssertionError("no try-body block edges into the handler")
    ret = _block_with(cfg, ast.Return)
    assert len(ret.preds) >= 2  # normal path and handler path both join


def test_with_stays_in_block_and_binds_header():
    cfg = _cfg(
        """
        def f(path):
            with open(path) as fh:
                data = fh.read()
            return data
        """
    )
    entry = cfg.block(cfg.entry)
    assert isinstance(entry.items[0], ast.With)
    # with-body statements continue in the same block
    assert any(isinstance(i, ast.Assign) for i in entry.items)


def test_nested_loop_in_branch():
    cfg = _cfg(
        """
        def f(xss):
            total = 0
            if xss:
                for xs in xss:
                    while xs:
                        total += 1
                        xs = xs[1:]
            return total
        """
    )
    outer = _block_with(cfg, ast.For)
    inner = _block_with(cfg, ast.While)
    # the inner loop is reachable through the outer loop's body
    reachable_ids = {block.id for block in cfg.reachable()}
    assert {outer.id, inner.id} <= reachable_ids
    body = _block_with(cfg, ast.AugAssign)
    assert inner.id in body.succs or any(
        inner.id in cfg.block(s).succs for s in body.succs
    )


def test_code_after_return_is_unreachable():
    cfg = _cfg(
        """
        def f(a):
            return a
            x = 1
        """
    )
    dead = _block_with(cfg, ast.Assign)
    assert not dead.preds
    assert dead.id not in {block.id for block in cfg.reachable()}


def test_build_cfg_accepts_module_body():
    tree = ast.parse("x = 1\ny = x\n")
    cfg = build_cfg(tree.body)
    entry = cfg.block(cfg.entry)
    assert len(entry.items) == 2
    assert entry.succs == {cfg.exit}


def test_finally_after_return_is_reachable():
    """Regression: `try: return x finally: cleanup()` — the finally body
    runs after the return, so it must be reachable from the return block
    (it used to be an orphan block with no predecessors)."""
    cfg = _cfg(
        """
        def f(p):
            handle = open(p)
            try:
                return handle.read()
            finally:
                handle.close()
        """
    )
    ret = _block_with(cfg, ast.Return)
    fin = _block_with(cfg, ast.Expr)
    reachable_ids = {block.id for block in cfg.reachable()}
    assert fin.id in reachable_ids
    assert fin.id in ret.succs
    # the finally still flows to the function exit, not onward
    assert cfg.exit in fin.succs


def test_finally_after_raise_is_reachable():
    cfg = _cfg(
        """
        def f(p):
            try:
                raise ValueError(p)
            finally:
                p.close()
        """
    )
    rais = _block_with(cfg, ast.Raise)
    fin = _block_with(cfg, ast.Expr)
    assert fin.id in rais.succs
    assert fin.id in {block.id for block in cfg.reachable()}


def test_finally_on_normal_path_still_falls_through():
    """A try body that completes normally keeps flowing through the
    finally into the statement after the try."""
    cfg = _cfg(
        """
        def f(p):
            try:
                x = p + 1
            finally:
                log = 1
            return x
        """
    )
    ret = _block_with(cfg, ast.Return)
    reachable_ids = {block.id for block in cfg.reachable()}
    assert ret.id in reachable_ids
    fin_assigns = [
        block
        for block in cfg
        if any(
            isinstance(item, ast.Assign)
            and isinstance(item.targets[0], ast.Name)
            and item.targets[0].id == "log"
            for item in block.items
        )
    ]
    assert len(fin_assigns) == 1
    assert fin_assigns[0].id in reachable_ids


def test_break_inside_try_finally_crosses_the_finally():
    """`for: try: break finally: ...` — the break runs the finally on
    its way out of the loop, so the finally must be a successor."""
    cfg = _cfg(
        """
        def f(items):
            for item in items:
                try:
                    break
                finally:
                    item.close()
        """
    )
    brk = _block_with(cfg, ast.Break)
    fin = _block_with(cfg, ast.Expr)
    assert fin.id in brk.succs
    assert fin.id in {block.id for block in cfg.reachable()}


def test_break_outside_inner_try_does_not_run_outer_finally():
    """A loop *inside* a try/finally: break leaves only the loop, it
    does not cross the enclosing finally."""
    cfg = _cfg(
        """
        def f(items):
            try:
                for item in items:
                    break
            finally:
                items.close()
        """
    )
    brk = _block_with(cfg, ast.Break)
    fin = _block_with(cfg, ast.Expr)
    assert fin.id not in brk.succs
