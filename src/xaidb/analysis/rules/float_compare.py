"""XDB006 — exact equality against float literals.

``x == 0.1`` is almost never the predicate the author meant: floating
arithmetic that *should* land on the literal frequently lands one ulp
away, and whether it does can change with numpy version, BLAS backend
or reduction order — the hidden-instability channel the tutorial warns
reproductions about.  Use ``np.isclose``/``math.isclose`` (or compare
integers) instead.

Legitimate exact comparisons exist — exact-zero denominator guards,
labels stored as exact 0.0/1.0 floats, values that are exact by IEEE
construction — and take an inline suppression stating which case they
are.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["FloatEqualityRule"]


def _float_literal(node: ast.AST) -> float | None:
    """The float value of a (possibly signed) float literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        return node.operand.value
    return None


@register
class FloatEqualityRule(FileRule):
    rule_id = "XDB006"
    symbol = "float-equality"
    description = (
        "== / != comparison against a float literal; use np.isclose "
        "(or suppress with the reason the comparison is exact)."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next(
                    (
                        value
                        for value in (
                            _float_literal(operand) for operand in operands
                        )
                        if value is not None
                    ),
                    None,
                )
                if literal is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    self,
                    node,
                    f"exact {symbol} comparison against float literal "
                    f"{literal!r}; use np.isclose, or suppress with the "
                    f"reason the comparison is exact",
                )
                break  # one finding per Compare node
