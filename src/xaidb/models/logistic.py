"""L2-regularised binary logistic regression fitted by Newton-Raphson.

This is the parametric, twice-differentiable workhorse that influence
functions (Koh & Liang 2017), Data Shapley and PrIU all operate on, so it
exposes per-example loss gradients and the exact Hessian of the (average)
regularised loss at any parameter vector.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ConvergenceError, ValidationError
from xaidb.models.base import Classifier
from xaidb.utils.linalg import sigmoid, solve_psd
from xaidb.utils.validation import check_array, check_fitted, check_positive

__all__ = ["LogisticRegression"]


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Minimises ``(1/n) sum_i logloss(theta; x_i, y_i) + (l2/2n)||w||^2``
    (the intercept is unpenalised).  With ``l2 > 0`` the problem is
    strongly convex and Newton's method converges in a handful of steps.

    Parameters
    ----------
    l2:
        L2 penalty strength (on the *sum* loss scale; must be > 0 for the
        influence-function Hessian to be safely invertible).
    fit_intercept:
        Whether to learn an intercept.
    max_iter, tol:
        Newton iteration budget and gradient-norm stopping threshold.
    """

    def __init__(
        self,
        *,
        l2: float = 1e-3,
        fit_intercept: bool = True,
        max_iter: int = 100,
        tol: float = 1e-8,
    ) -> None:
        check_positive(l2, name="l2", strict=False)
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_iter_: int | None = None

    # ------------------------------------------------------------------
    def _augment(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.column_stack([X, np.ones(X.shape[0])])

    def _penalty_vector(self, n_columns: int) -> np.ndarray:
        penalty = np.full(n_columns, self.l2)
        if self.fit_intercept:
            penalty[-1] = 0.0
        return penalty

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        X, y = self._validate_fit_args(X, y)
        y_index = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValidationError(
                f"LogisticRegression is binary; got {len(self.classes_)} classes"
            )
        design = self._augment(X)
        n, d = design.shape
        weights = (
            np.ones(n)
            if sample_weight is None
            else check_array(sample_weight, name="sample_weight", ndim=1)
        )
        if weights.shape[0] != n:
            raise ValidationError("sample_weight length mismatch")
        penalty = self._penalty_vector(d)
        theta = np.zeros(d)
        for iteration in range(1, self.max_iter + 1):
            probabilities = sigmoid(design @ theta)
            gradient = design.T @ (weights * (probabilities - y_index)) + penalty * theta
            if np.linalg.norm(gradient) <= self.tol * n:
                self.n_iter_ = iteration - 1
                break
            curvature = weights * probabilities * (1.0 - probabilities)
            hessian = (design * curvature[:, None]).T @ design + np.diag(penalty)
            theta = theta - solve_psd(hessian, gradient)
        else:
            probabilities = sigmoid(design @ theta)
            gradient = design.T @ (weights * (probabilities - y_index)) + penalty * theta
            if np.linalg.norm(gradient) > max(self.tol * n, 1e-4 * n):
                raise ConvergenceError(
                    f"Newton solver did not converge in {self.max_iter} "
                    f"iterations (gradient norm {np.linalg.norm(gradient):.2e})"
                )
            self.n_iter_ = self.max_iter
        self._unpack(theta)
        return self

    def _unpack(self, theta: np.ndarray) -> None:
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["coef_"])
        X = check_array(X, name="X", ndim=2)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    # ------------------------------------------------------------------
    # hooks for influence functions and incremental maintenance
    # ------------------------------------------------------------------
    @property
    def theta_(self) -> np.ndarray:
        """Full parameter vector (coefficients, then intercept if any)."""
        check_fitted(self, ["coef_"])
        if self.fit_intercept:
            return np.append(self.coef_, self.intercept_)
        return self.coef_.copy()

    def set_theta(self, theta: np.ndarray) -> "LogisticRegression":
        """Overwrite parameters (used by incremental update / unlearning).

        ``classes_`` must already be set (either by a previous fit or
        manually) so predictions decode correctly.
        """
        theta = check_array(theta, name="theta", ndim=1)
        if self.classes_ is None:
            self.classes_ = np.asarray([0.0, 1.0])
        self._unpack(theta)
        return self

    def loss_gradients(
        self, X: np.ndarray, y: np.ndarray, *, theta: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-example gradient of the *unpenalised* logloss:
        ``grad_i = (sigmoid(x_i^T theta) - y_i) x_i`` with the intercept
        column appended when fitted with one."""
        check_fitted(self, ["coef_"])
        design = self._augment(check_array(X, name="X", ndim=2))
        theta = self.theta_ if theta is None else theta
        residuals = sigmoid(design @ theta) - np.asarray(y, dtype=float)
        return design * residuals[:, None]

    def loss_hessian(
        self, X: np.ndarray, *, theta: np.ndarray | None = None
    ) -> np.ndarray:
        """Average Hessian of the regularised loss over ``X``:
        ``(1/n) X^T diag(p(1-p)) X + (l2/n) I`` (intercept unpenalised)."""
        check_fitted(self, ["coef_"])
        design = self._augment(check_array(X, name="X", ndim=2))
        theta = self.theta_ if theta is None else theta
        probabilities = sigmoid(design @ theta)
        curvature = probabilities * (1.0 - probabilities)
        n = design.shape[0]
        # xailint: disable=XDB023 (check_array rejects an empty X and _augment keeps its rows)
        hessian = (design * curvature[:, None]).T @ design / n
        # xailint: disable=XDB023 (check_array rejects an empty X and _augment keeps its rows)
        return hessian + np.diag(self._penalty_vector(design.shape[1])) / n
