"""Dirty fixture for XDB032: broad handlers that discard the failure
on every path — no re-raise, no read of the bound name, no logging.
Both sites also fire XDB005 (the catch is too wide); XDB032 is about
the silent discard."""

__all__ = ["load_cache", "shutdown"]


def load_cache(path):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        pass  # finding 1: the failure vanishes without a trace
    return ""


def shutdown(workers):
    for worker in workers:
        try:
            worker.halt()
        except:  # noqa: E722
            worker = None  # finding 2: bound to nothing, logged nowhere
