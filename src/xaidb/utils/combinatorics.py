"""Combinatorial helpers for Shapley-value computation.

The Shapley value of player *i* in a game ``v`` over ``n`` players is

    phi_i = sum over S not containing i of
            |S|! (n - |S| - 1)! / n!  *  (v(S ∪ {i}) - v(S))

``shapley_subset_weight`` returns that coefficient; ``shapley_kernel_weight``
returns the Shapley *kernel* weight used by KernelSHAP's weighted least
squares formulation (Lundberg & Lee 2017, Theorem 2).
"""

from __future__ import annotations

from itertools import chain, combinations
from math import comb, factorial
from typing import Iterator, Sequence, TypeVar

__all__ = [
    "T",
    "all_subsets",
    "shapley_subset_weight",
    "shapley_kernel_weight",
    "iter_permutations_sample",
    "harmonic_number",
]

T = TypeVar("T")


def all_subsets(items: Sequence[T], *, proper: bool = False) -> Iterator[tuple[T, ...]]:
    """Yield every subset of ``items`` (as tuples), from the empty set up.

    With ``proper=True`` the full set itself is excluded.
    """
    top = len(items) if not proper else len(items) - 1
    return chain.from_iterable(combinations(items, r) for r in range(top + 1))


def shapley_subset_weight(subset_size: int, n_players: int) -> float:
    """Marginal-contribution weight ``|S|!(n-|S|-1)!/n!`` for a coalition of
    ``subset_size`` players out of ``n_players`` (the coalition must not
    contain the player being evaluated, hence ``subset_size < n_players``)."""
    if not 0 <= subset_size < n_players:
        raise ValueError(
            f"subset_size must be in [0, n_players), got {subset_size} of {n_players}"
        )
    return (
        factorial(subset_size)
        * factorial(n_players - subset_size - 1)
        / factorial(n_players)
    )


def shapley_kernel_weight(subset_size: int, n_players: int) -> float:
    """Shapley kernel ``(n-1) / (C(n,|S|) |S| (n-|S|))`` from KernelSHAP.

    The weight is infinite for the empty and full coalitions — KernelSHAP
    enforces those two constraints exactly instead of weighting them; this
    function returns ``inf`` there so callers can special-case them.
    """
    if not 0 <= subset_size <= n_players:
        raise ValueError(
            f"subset_size must be in [0, n_players], got {subset_size} of {n_players}"
        )
    if subset_size in (0, n_players):
        return float("inf")
    return (n_players - 1) / (
        comb(n_players, subset_size) * subset_size * (n_players - subset_size)
    )


def iter_permutations_sample(
    items: Sequence[T], n_samples: int, rng
) -> Iterator[list[T]]:
    """Yield ``n_samples`` uniformly random permutations of ``items``.

    A thin generator wrapper so Monte-Carlo Shapley estimators share one
    sampling idiom.
    """
    items = list(items)
    for _ in range(n_samples):
        order = list(items)
        rng.shuffle(order)
        yield order


def harmonic_number(n: int) -> float:
    """The n-th harmonic number ``H_n = 1 + 1/2 + ... + 1/n``.

    Appears in closed-form Shapley values of simple games (used by tests as
    an analytical oracle).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return float(sum(1.0 / k for k in range(1, n + 1)))
