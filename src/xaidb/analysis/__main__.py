"""``python -m xaidb.analysis`` — run the xailint static-analysis pass."""

import sys

from xaidb.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
