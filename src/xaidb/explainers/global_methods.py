"""Global model-agnostic explanation methods (tutorial §2 — "some methods
provide a comprehensive summary of features"; Molnar 2020, chs. PDP/ICE/
permutation importance).

- :func:`partial_dependence` — the marginal effect of a feature on the
  model output, averaged over the data (PDP);
- :func:`ice_curves` — the per-instance curves the PDP averages
  (Individual Conditional Expectation), which expose the heterogeneity
  and interaction effects a flat PDP hides;
- :func:`permutation_importance` — the drop in a performance metric when
  one feature's column is shuffled, breaking its relationship with the
  target (Breiman-style model reliance).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import FeatureAttribution, PredictFn
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = [
    "MetricFn",
    "partial_dependence",
    "ice_curves",
    "permutation_importance",
    "accumulated_local_effects",
]

MetricFn = Callable[[np.ndarray, np.ndarray], float]


def partial_dependence(
    predict_fn: PredictFn,
    X: np.ndarray,
    feature: int,
    *,
    grid: np.ndarray | None = None,
    n_grid: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Partial dependence of the model output on one feature.

    Returns ``(grid, pd_values)`` where ``pd(g) = mean_i f(x_i with
    feature := g)``.  The grid defaults to quantiles of the feature's
    observed values (so it stays on-support).
    """
    X = check_array(X, name="X", ndim=2)
    if not 0 <= feature < X.shape[1]:
        raise ValidationError("feature index out of range")
    if grid is None:
        if n_grid < 2:
            raise ValidationError("n_grid must be >= 2")
        grid = np.unique(
            np.quantile(X[:, feature], np.linspace(0, 1, n_grid))
        )
    else:
        grid = check_array(grid, name="grid", ndim=1)
    values = np.empty(len(grid))
    working = X.copy()
    for position, grid_value in enumerate(grid):
        working[:, feature] = grid_value
        # xailint: disable=XDB009 (PDP scores the full n-row batch per grid point; no coalition structure to memoise)
        values[position] = float(np.mean(predict_fn(working)))
    return grid, values


def ice_curves(
    predict_fn: PredictFn,
    X: np.ndarray,
    feature: int,
    *,
    grid: np.ndarray | None = None,
    n_grid: int = 20,
    center: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Individual Conditional Expectation curves.

    Returns ``(grid, curves)`` with ``curves[i, g] = f(x_i with feature :=
    grid[g])``.  With ``center=True`` every curve is shifted to start at 0
    (c-ICE), which makes heterogeneity visually comparable.  The PDP is
    exactly ``curves.mean(axis=0)`` (tested).
    """
    X = check_array(X, name="X", ndim=2)
    if not 0 <= feature < X.shape[1]:
        raise ValidationError("feature index out of range")
    if grid is None:
        if n_grid < 2:
            raise ValidationError("n_grid must be >= 2")
        grid = np.unique(
            np.quantile(X[:, feature], np.linspace(0, 1, n_grid))
        )
    else:
        grid = check_array(grid, name="grid", ndim=1)
    curves = np.empty((X.shape[0], len(grid)))
    for position, grid_value in enumerate(grid):
        working = X.copy()
        working[:, feature] = grid_value
        # xailint: disable=XDB009 (ICE scores the full n-row batch per grid point; no coalition structure to memoise)
        curves[:, position] = np.asarray(predict_fn(working), dtype=float)
    if center:
        curves = curves - curves[:, :1]
    return grid, curves


def permutation_importance(
    predict_fn: PredictFn,
    X: np.ndarray,
    y: np.ndarray,
    metric: MetricFn,
    *,
    n_repeats: int = 5,
    feature_names: list[str] | None = None,
    random_state: RandomState = None,
) -> FeatureAttribution:
    """Permutation feature importance.

    ``importance_j = metric(y, f(X)) - mean over repeats of
    metric(y, f(X with column j shuffled))`` — how much performance relies
    on the feature's association with the target.  Higher = more
    important; ~0 marks features the model does not use.
    """
    X = check_array(X, name="X", ndim=2)
    y = check_array(y, name="y", ndim=1)
    check_matching_lengths(("X", X), ("y", y))
    if n_repeats < 1:
        raise ValidationError("n_repeats must be >= 1")
    rng = check_random_state(random_state)
    baseline = float(metric(y, np.asarray(predict_fn(X), dtype=float)))
    d = X.shape[1]
    importances = np.empty(d)
    spreads = np.empty(d)
    for j in range(d):
        drops = []
        for __ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = shuffled[rng.permutation(X.shape[0]), j]
            score = float(
                # xailint: disable=XDB009 (each repeat scores a freshly shuffled full batch; nothing repeats to cache)
                metric(y, np.asarray(predict_fn(shuffled), dtype=float))
            )
            drops.append(baseline - score)
        importances[j] = float(np.mean(drops))
        spreads[j] = float(np.std(drops))
    names = feature_names or [f"x{i}" for i in range(d)]
    return FeatureAttribution(
        feature_names=list(names),
        values=importances,
        base_value=baseline,
        metadata={
            "method": "permutation_importance",
            "n_repeats": n_repeats,
            "std": spreads.tolist(),
        },
    )


def accumulated_local_effects(
    predict_fn: PredictFn,
    X: np.ndarray,
    feature: int,
    *,
    n_bins: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulated Local Effects (Apley & Zhu 2020).

    PDP extrapolates: it evaluates the model at (grid value, other
    features) combinations that may be impossible under correlated
    inputs.  ALE instead accumulates *local* finite differences within
    quantile bins of the feature — each difference is computed only for
    the points actually living in that bin — so it stays on-manifold.

    Returns ``(bin_upper_edges, ale_values)``: the accumulated effect is
    defined at each bin's upper edge, centred so the (count-weighted)
    mean ALE over the data is zero.
    """
    X = check_array(X, name="X", ndim=2)
    if not 0 <= feature < X.shape[1]:
        raise ValidationError("feature index out of range")
    if n_bins < 2:
        raise ValidationError("n_bins must be >= 2")
    values = X[:, feature]
    edges = np.unique(np.quantile(values, np.linspace(0, 1, n_bins + 1)))
    if len(edges) < 3:
        raise ValidationError(
            "feature has too few distinct values for ALE binning"
        )
    # assign each row to a bin (1..len(edges)-1)
    bins = np.clip(np.searchsorted(edges, values, side="right") - 1,
                   0, len(edges) - 2)
    local_effects = np.zeros(len(edges) - 1)
    for b in range(len(edges) - 1):
        members = np.flatnonzero(bins == b)
        if members.size == 0:
            continue
        lower = X[members].copy()
        upper = X[members].copy()
        lower[:, feature] = edges[b]
        upper[:, feature] = edges[b + 1]
        # xailint: disable=XDB009 (ALE scores each bin's member rows once at both edges; batches are disjoint by construction)
        deltas = np.asarray(predict_fn(upper), dtype=float) - np.asarray(
            # xailint: disable=XDB009 (second edge of the same one-shot ALE bin evaluation)
            predict_fn(lower), dtype=float
        )
        local_effects[b] = float(deltas.mean())
    ale = np.cumsum(local_effects)
    # centre so the mean effect over the data is zero (standard convention)
    counts = np.bincount(bins, minlength=len(edges) - 1)
    ale = ale - float(np.average(ale, weights=np.maximum(counts, 1)))
    return edges[1:], ale
