"""XDB005 — bare or overbroad ``except`` clauses.

``except:`` and ``except Exception:`` swallow programming errors (and
``except BaseException`` even eats ``KeyboardInterrupt``), turning a
wrong explanation into a silently-degraded one — the failure mode the
tutorial's sanity-check line of work (E20) exists to expose.  Catch the
specific exceptions a block can actually raise; a deliberate broad
catch at a process boundary takes an inline suppression with a reason.

A broad handler whose body is a bare ``raise`` (log-and-reraise) is
allowed: it cannot swallow anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["BroadExceptRule"]

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_name(type_node: ast.AST | None) -> str | None:
    """The broad exception name caught by ``type_node``, if any."""
    if type_node is None:
        return "<bare>"
    if isinstance(type_node, ast.Name) and type_node.id in _BROAD_NAMES:
        return type_node.id
    if isinstance(type_node, ast.Tuple):
        for element in type_node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body ends in a bare ``raise``."""
    return any(
        isinstance(stmt, ast.Raise) and stmt.exc is None
        for stmt in handler.body
    )


@register
class BroadExceptRule(FileRule):
    rule_id = "XDB005"
    symbol = "broad-except"
    description = (
        "Bare `except:` or overbroad `except Exception:` without a "
        "re-raise; catch the specific exceptions the block can raise."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name is None or _reraises(node):
                continue
            if name == "<bare>":
                message = (
                    "bare except: swallows every error including "
                    "KeyboardInterrupt; name the exceptions this block "
                    "can raise"
                )
            else:
                message = (
                    f"overbroad except {name}: hides programming errors "
                    f"behind silently-degraded results; name the "
                    f"exceptions this block can raise"
                )
            yield ctx.finding(self, node, message)
