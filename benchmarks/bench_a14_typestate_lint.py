"""A14 (ablation) — cold vs warm typestate-lint scan over the Merkle cache.

The typestate pass F (the XDB028/XDB029 substrate) re-solves every
function against four protocol DFAs, and the may-raise pass G folds
exception sets bottom-up over the SCC condensation — both are pure
summary work, so an untouched repo must replay the whole tier from
cache.  This bench measures that, and pins the contract that makes it
safe:

1. *identity*: the warm (summary-cached) scan is finding-for-finding
   identical to the cold scan, suppressions included — interprocedural
   witnesses (``the illegal call is inside helper:line``) come from
   cached summary facts, so divergence here means the encodings lost
   information;
2. *the passes actually ran cold*: the typestate and raises per-pass
   timers advanced, and at least one SCC summary was computed;
3. *the cache actually pays*: every file and every SCC summary is
   served from cache on the warm scan, at least 2x faster.

The full run merges its record into ``benchmarks/BENCH_lint.json``
under the ``"a14_typestate"`` key.  ``XAIDB_A14_SMOKE=1`` shrinks the
scan to the serving + runtime + analysis sources (the protocol-densest
corpus) and skips the artifact write — that is what ``tools/check.py``
runs.
"""

import json
import os
import tempfile
import time

from pathlib import Path

from benchmarks._tables import print_table
from xaidb.analysis import run_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

_SMOKE = os.environ.get("XAIDB_A14_SMOKE") == "1"

#: Full runs cover the repo-standard scan set; the smoke covers the
#: modules whose classes actually speak the four protocols (service,
#: runtime) plus the linter itself.
if _SMOKE:
    SCAN_PATHS = [
        REPO_ROOT / "src" / "xaidb" / "service",
        REPO_ROOT / "src" / "xaidb" / "runtime",
        REPO_ROOT / "src" / "xaidb" / "analysis",
    ]
else:
    SCAN_PATHS = [
        REPO_ROOT / name
        for name in ("src", "benchmarks", "examples", "tools")
        if (REPO_ROOT / name).is_dir()
    ]


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings + result.suppressed
    ]


def _timed_scan(cache_path):
    started = time.perf_counter()
    result = run_paths(SCAN_PATHS, root=REPO_ROOT, cache_path=cache_path)
    return result, time.perf_counter() - started


def compute_rows():
    with tempfile.TemporaryDirectory(prefix="xailint-a14-") as tmp:
        cache_path = Path(tmp) / "cache.json"
        cold, cold_seconds = _timed_scan(cache_path)
        warm, warm_seconds = _timed_scan(cache_path)
    speedup = cold_seconds / warm_seconds
    typestate_ms = cold.stats.pass_seconds.get("typestate", 0.0) * 1e3
    raises_ms = cold.stats.pass_seconds.get("raises", 0.0) * 1e3
    rows = [
        (
            "cold",
            cold.stats.files_scanned,
            cold.stats.cache_hits,
            f"{cold_seconds * 1e3:.1f}",
            "1.0x",
        ),
        (
            "warm",
            warm.stats.files_scanned,
            warm.stats.cache_hits,
            f"{warm_seconds * 1e3:.1f}",
            f"{speedup:.2f}x",
        ),
    ]
    record = {
        "files_scanned": cold.stats.files_scanned,
        "cold_s": cold_seconds,
        "warm_s": warm_seconds,
        "speedup": speedup,
        "typestate_pass_ms": typestate_ms,
        "raises_pass_ms": raises_ms,
        "warm_cache_hits": warm.stats.cache_hits,
        "warm_summary_misses": warm.stats.summary_misses,
        "identical": _fingerprint(cold) == _fingerprint(warm),
    }
    context = {"cold": cold, "warm": warm, "record": record}
    if not _SMOKE:
        out_path = Path(__file__).resolve().parent / "BENCH_lint.json"
        merged = {}
        if out_path.exists():
            merged = json.loads(out_path.read_text())
        merged["a14_typestate"] = record
        out_path.write_text(json.dumps(merged, indent=2) + "\n")
    return rows, context


def test_a14_typestate_lint(benchmark):
    rows, context = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    record = context["record"]
    print_table(
        "A14 (ablation): typestate-lint scan, cold vs summary-cached warm"
        + (" [smoke]" if _SMOKE else ""),
        ["scan", "files", "cache hits", "wall ms", "speedup"],
        rows,
    )
    cold, warm = context["cold"], context["warm"]
    # identity: caching must be invisible in the verdicts
    assert record["identical"], "warm scan diverged from cold"
    # the cold scan really exercised passes F and G...
    assert cold.stats.summary_misses >= 1
    assert record["typestate_pass_ms"] > 0.0
    assert record["raises_pass_ms"] > 0.0
    # ...and the warm scan really skipped them: every file and every
    # SCC summary came from the cache
    assert warm.stats.cache_hits == warm.stats.files_scanned
    assert warm.stats.cache_misses == 0
    assert warm.stats.summary_misses == 0
    assert warm.stats.project_from_cache
    # skipping the summary passes must be worth something
    assert record["speedup"] >= 2.0, record
    # the gate this bench models is currently green
    assert cold.ok, [f.message for f in cold.findings]
