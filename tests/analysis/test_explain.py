"""``--explain``: every registered rule renders its LINTING.md
rationale and fixture pair; unknown ids become usage errors."""

from __future__ import annotations

import pytest

from xaidb.analysis.cli import main
from xaidb.analysis.explain import render_explanation
from xaidb.analysis.registry import rules_by_id


@pytest.mark.parametrize("rule_id", sorted(rules_by_id()))
def test_every_rule_renders_docs_and_fixtures(rule_id):
    text = render_explanation(rule_id)
    rule = rules_by_id()[rule_id]
    assert text.startswith(f"{rule_id} [{rule.symbol}]")
    # doc-sync: a rule without a LINTING.md table row or fixture pair
    # fails here, not silently in a user's terminal
    assert "no rules-table entry found" not in text
    assert "fixture not found" not in text
    assert f"fixtures/{rule_id.lower()}_dirty.py" in text
    assert f"fixtures/{rule_id.lower()}_clean.py" in text
    assert f"# xailint: disable={rule_id}" in text


def test_unknown_rule_id_lists_the_known_ones():
    with pytest.raises(KeyError) as excinfo:
        render_explanation("XDB999")
    assert "known: XDB001" in str(excinfo.value)


def test_cli_explain_prints_and_normalises_case(capsys):
    assert main(["--explain", "xdb016"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("XDB016 [rng-escapes-helper]")
    assert "Rationale (docs/LINTING.md):" in out


def test_cli_explain_unknown_id_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--explain", "XDB999"])
    assert excinfo.value.code == 2
