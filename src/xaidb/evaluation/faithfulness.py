"""Faithfulness metrics: deletion and insertion curves.

If an attribution is faithful, removing the features it ranks highest
(replacing them with a background value) should collapse the model's
score quickly (deletion), and adding them to a fully-ablated input should
restore the score quickly (insertion).  The area under the deletion curve
— lower is better — is the scalar usually reported.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.utils.validation import check_array

__all__ = ["deletion_curve", "insertion_curve", "deletion_auc"]


def _ranked_features(attribution_values: np.ndarray) -> np.ndarray:
    return np.argsort(-np.abs(attribution_values), kind="mergesort")


def deletion_curve(
    predict_fn: PredictFn,
    instance: np.ndarray,
    attribution_values: np.ndarray,
    baseline: np.ndarray,
) -> np.ndarray:
    """Model score as the top-attributed features are ablated one by one.

    Returns an array of length ``d + 1``: entry ``k`` is the score with
    the ``k`` most-attributed features replaced by ``baseline``.
    """
    instance = check_array(instance, name="instance", ndim=1)
    attribution_values = check_array(
        attribution_values, name="attribution_values", ndim=1
    )
    baseline = check_array(baseline, name="baseline", ndim=1)
    if not instance.shape == attribution_values.shape == baseline.shape:
        raise ValidationError("instance/attributions/baseline shape mismatch")
    order = _ranked_features(attribution_values)
    current = instance.copy()
    scores = [float(predict_fn(current[None, :])[0])]
    for feature in order:
        current[feature] = baseline[feature]
        scores.append(float(predict_fn(current[None, :])[0]))
    return np.asarray(scores)


def insertion_curve(
    predict_fn: PredictFn,
    instance: np.ndarray,
    attribution_values: np.ndarray,
    baseline: np.ndarray,
) -> np.ndarray:
    """Model score as top-attributed features are restored into the
    baseline, one by one (length ``d + 1``)."""
    instance = check_array(instance, name="instance", ndim=1)
    attribution_values = check_array(
        attribution_values, name="attribution_values", ndim=1
    )
    baseline = check_array(baseline, name="baseline", ndim=1)
    order = _ranked_features(attribution_values)
    current = baseline.copy()
    scores = [float(predict_fn(current[None, :])[0])]
    for feature in order:
        current[feature] = instance[feature]
        scores.append(float(predict_fn(current[None, :])[0]))
    return np.asarray(scores)


def deletion_auc(curve: np.ndarray) -> float:
    """Normalised area under a deletion (or insertion) curve.

    Trapezoidal area over the fraction-of-features axis; for deletion
    curves lower means the attribution found the load-bearing features
    sooner.
    """
    curve = check_array(curve, name="curve", ndim=1)
    if len(curve) < 2:
        raise ValidationError("curve needs at least 2 points")
    x = np.linspace(0.0, 1.0, len(curve))
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1/2 compat
    return float(trapezoid(curve, x))
