"""Dirty fixture for XDB020: pooled tasks that cannot be pickled — the
map silently degrades to the serial fallback."""

from xaidb.runtime import parallel_map

__all__ = ["double_all", "offset_all"]


def double_all(values):
    return parallel_map(lambda v: v * 2, values)  # finding 1: lambda


def offset_all(values, offset):
    def _shift(v):  # local closure: unpicklable
        return v + offset

    return parallel_map(_shift, values)  # finding 2: nested function
