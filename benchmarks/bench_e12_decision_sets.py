"""E12 — Interpretable decision sets balance accuracy and interpretability
(Lakkaraju, Bach & Leskovec 2016 frontier shape).

Reproduced shape: sweeping the rule budget traces an accuracy-vs-size
frontier; a modest decision set reaches accuracy comparable to an
unconstrained CART tree while using an order of magnitude fewer
conditions, and accuracy is monotone (in trend) in the budget.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.models import DecisionTreeClassifier, accuracy
from xaidb.rules import DecisionSetClassifier

RULE_BUDGETS = [1, 2, 4, 8]


def _tree_condition_count(model):
    tree = model.tree_
    return sum(1 for n in range(tree.node_count) if not tree.is_leaf(n))


def compute_rows():
    workload = make_income(1000, random_state=0)
    train, test = workload.dataset.split(test_fraction=0.3, random_state=1)
    rows = []
    for budget in RULE_BUDGETS:
        model = DecisionSetClassifier(
            max_rules=budget,
            max_rule_length=2,
            lambda_length=0.005,
            n_search_iterations=400,
            random_state=0,
        ).fit(train)
        rows.append(
            (
                f"decision set (<= {budget} rules)",
                accuracy(test.y, model.predict(test.X)),
                model.total_length,
            )
        )
    deep_tree = DecisionTreeClassifier(max_depth=None, random_state=0).fit(
        train.X, train.y
    )
    rows.append(
        (
            "CART (unbounded)",
            accuracy(test.y, deep_tree.predict(test.X)),
            _tree_condition_count(deep_tree),
        )
    )
    shallow_tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(
        train.X, train.y
    )
    rows.append(
        (
            "CART (depth 3)",
            accuracy(test.y, shallow_tree.predict(test.X)),
            _tree_condition_count(shallow_tree),
        )
    )
    majority = max(train.y.mean(), 1 - train.y.mean())
    rows.append(("majority baseline", float(majority), 0))
    return rows


def test_e12_decision_sets(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E12: accuracy vs interpretability cost (paper: decision sets "
        "match tree accuracy at a fraction of the conditions)",
        ["model", "test accuracy", "total conditions"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    best_set = by_name["decision set (<= 8 rules)"]
    unbounded = by_name["CART (unbounded)"]
    majority = by_name["majority baseline"]
    # decision sets beat the majority baseline
    assert best_set[1] > majority[1]
    # and use far fewer conditions than the unbounded tree
    assert best_set[2] < unbounded[2] / 4
    # within ~8 accuracy points of the unbounded tree
    assert best_set[1] > unbounded[1] - 0.12
