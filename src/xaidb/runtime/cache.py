"""Batch-aware coalition/value memo cache.

:class:`~xaidb.explainers.shapley.games.CachedGame` memoises the scalar
``value(S)`` path, but the batch path every production explainer actually
uses (``values_batch``) bypassed it entirely — repeated and overlapping
coalition workloads (interactive dashboards re-explaining the same
instance, paired sampling emitting duplicate masks) paid full price.
:class:`CoalitionCache` keys on the coalition's boolean mask bytes, serves
whole batches, and reports exactly which rows still need evaluation.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError

__all__ = ["CoalitionCache", "DEFAULT_MAX_ENTRIES"]


#: Default :class:`CoalitionCache` capacity.  Far above any tier-1 or
#: single-explanation workload (a 20-feature exhaustive KernelSHAP
#: enumerates ~10^6 coalitions), so bounded behaviour is bitwise
#: identical to the old unbounded cache there — the bound only bites in
#: long-running processes (servers) where it used to leak memory on
#: every distinct coalition.
DEFAULT_MAX_ENTRIES = 1_000_000


class CoalitionCache:
    """Memo cache mapping coalition masks to game values.

    Keys are the raw bytes of the boolean mask, so lookups are dtype- and
    order-exact; one cache serves one game (one instance/background pair)
    and must not be shared across games.

    Parameters
    ----------
    n_players:
        Mask width; every lookup is validated against it.
    max_entries:
        Capacity bound.  When an insert would exceed it, the oldest
        entries (FIFO — dict insertion order) are evicted and counted in
        :attr:`n_evictions`; ``None`` means unbounded (the historical
        behaviour, which leaks in a long-running server).  Eviction
        never changes values, only cost: an evicted coalition is simply
        re-evaluated on its next request.
    """

    def __init__(
        self,
        n_players: int,
        *,
        max_entries: int | None = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if n_players < 1:
            raise ValidationError("a coalition cache needs n_players >= 1")
        if max_entries is not None and max_entries < 1:
            raise ValidationError("max_entries must be >= 1 or None")
        self.n_players = n_players
        self.max_entries = max_entries
        self.n_evictions = 0
        self._values: dict[bytes, float] = {}

    # ------------------------------------------------------------------
    def _key(self, mask: np.ndarray) -> bytes:
        return np.ascontiguousarray(mask, dtype=bool).tobytes()

    def _evict_to_bound(self) -> None:
        if self.max_entries is None:
            return
        while len(self._values) > self.max_entries:
            # dicts iterate in insertion order: drop the oldest entry
            del self._values[next(iter(self._values))]
            self.n_evictions += 1

    def get(self, mask: np.ndarray) -> float | None:
        return self._values.get(self._key(mask))

    def put(self, mask: np.ndarray, value: float) -> None:
        self._values[self._key(mask)] = float(value)
        self._evict_to_bound()

    # ------------------------------------------------------------------
    def lookup_batch(
        self, masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a ``(n, d)`` mask batch from the cache.

        Returns
        -------
        (values, missing):
            ``values`` has one slot per row (NaN where unknown);
            ``missing`` holds the row indices that must be evaluated.
        """
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[1] != self.n_players:
            raise ValidationError(
                f"masks must have shape (n, {self.n_players})"
            )
        values = np.full(masks.shape[0], np.nan)
        missing: list[int] = []
        for row in range(masks.shape[0]):
            hit = self._values.get(self._key(masks[row]))
            if hit is None:
                missing.append(row)
            else:
                values[row] = hit
        return values, np.asarray(missing, dtype=int)

    def store_batch(self, masks: np.ndarray, values: np.ndarray) -> None:
        masks = np.asarray(masks, dtype=bool)
        values = np.asarray(values, dtype=float)
        if masks.shape[0] != values.shape[0]:
            raise ValidationError(
                "masks and values must have matching first dimensions"
            )
        for row in range(masks.shape[0]):
            self._values[self._key(masks[row])] = float(values[row])
        self._evict_to_bound()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()
