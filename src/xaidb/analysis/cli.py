"""Command-line entry point for xailint.

Invocations (all equivalent)::

    python -m xaidb.analysis src benchmarks examples tools
    xailint src benchmarks examples tools      # console script
    python tools/xailint.py                    # repo wrapper

With no paths, the repo-standard scan set (``src``, ``benchmarks``,
``examples``, ``tools``) is used, filtered to directories that exist
under the current working directory.  Exit status: 0 clean, 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from xaidb.analysis.engine import run_paths
from xaidb.analysis.registry import all_rules
from xaidb.analysis.reporters import render_json, render_text

__all__ = ["main", "build_parser", "DEFAULT_SCAN_PATHS"]

DEFAULT_SCAN_PATHS = ("src", "benchmarks", "examples", "tools")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xailint",
        description=(
            "Static analysis enforcing xaidb's scientific-correctness "
            "invariants (rule ids XDB001-XDB009; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to scan (default: the repo-standard "
            "set: " + ", ".join(DEFAULT_SCAN_PATHS) + ")"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rule ids to run, e.g. XDB001,XDB004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.symbol}")
            print(f"    {rule.description}")
        return 0

    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_SCAN_PATHS if Path(p).is_dir()]
        if not paths:
            parser.error(
                "no paths given and none of the default scan "
                "directories exist here"
            )
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # a typo'd path must not let the gate pass vacuously
        parser.error("no such file or directory: " + ", ".join(missing))

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        result = run_paths(paths, root=Path.cwd(), rule_ids=rule_ids)
    except ValueError as exc:  # unknown rule id
        parser.error(str(exc))

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
