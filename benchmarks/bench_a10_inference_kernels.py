"""A10 (perf) — vectorized tree-inference kernels (docs/PERFORMANCE.md).

Reproduced shape: perturbation explainers are *model-evaluation-bound*
(the tutorial's central cost claim), so the rows/s of the models under
explanation is the system's throughput ceiling.  The seed implementation
descended trees one Python ``while`` loop per row
(:meth:`TreeStructure.apply_row`); the frontier-traversal kernels
(:mod:`xaidb.models.tree_kernels`) replace that with a handful of
vectorized steps over a stacked node arena:

1. forest and GBM ``predict``/``predict_proba`` at 10^4 rows are
   >= 10x the row-wise reference in rows/s, bit-identically;
2. a single tree's ``apply`` beats its row-wise loop;
3. the speedup is visible *end to end*: one KernelSHAP call against the
   forest (thousands of hybrid rows through ``predict_proba``) gets
   measurably faster with identical attributions.

Besides the printed table, the run emits ``benchmarks/
BENCH_inference.json`` — machine-readable rows/s before/after — so the
perf trajectory across sessions has a baseline artifact.

``XAIDB_A10_ROWS`` overrides the row count (the ``tools/check.py``
smoke uses a smaller workload; the >= 10x bar applies at >= 10^4 rows,
the smoke asserts a looser >= 4x).
"""

import os
import time
from pathlib import Path

import numpy as np

from benchmarks._tables import merge_bench_record, print_table
from xaidb.explainers.shapley import KernelShapExplainer
from xaidb.models import (
    DecisionTreeRegressor,
    GradientBoostedRegressor,
    RandomForestClassifier,
)

N_ROWS = int(os.environ.get("XAIDB_A10_ROWS", "10000"))
N_FEATURES = 8
#: the acceptance bar is >= 10x at the full 10^4-row workload; smoke
#: runs on smaller batches clear a looser bar (kernel advantage grows
#: with batch size).
MIN_ENSEMBLE_SPEEDUP = 10.0 if N_ROWS >= 10_000 else 4.0


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _fit_models():
    rng = np.random.default_rng(100)
    X = rng.normal(size=(1500, N_FEATURES))
    y_reg = np.sin(X[:, 0]) + X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=1500)
    y_clf = (y_reg > 0).astype(int)
    tree = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y_reg)
    forest = RandomForestClassifier(
        n_estimators=20, max_depth=6, random_state=1
    ).fit(X, y_clf)
    gbm = GradientBoostedRegressor(
        n_estimators=30, max_depth=3, random_state=2
    ).fit(X, y_reg)
    X_eval = rng.normal(size=(N_ROWS, N_FEATURES))
    return tree, forest, gbm, X_eval


# ----------------------------------------------------- row-wise references
def _forest_proba_rowwise(forest, X):
    """The historical per-tree realignment loop over the row-wise apply."""
    total = np.zeros((X.shape[0], len(forest.classes_)))
    for estimator in forest.estimators_:
        leaves = estimator.tree_.apply_rowwise(X)
        codes = np.asarray(estimator.classes_, dtype=int)
        total[:, codes] += estimator.tree_.value[leaves]
    return total / len(forest.estimators_)


def _gbm_predict_rowwise(gbm, X):
    raw = np.full(X.shape[0], gbm.init_score_)
    for stage in gbm.trees_:
        leaves = stage.tree_.apply_rowwise(X)
        raw += gbm.learning_rate * stage.tree_.value[leaves, 0]
    return raw


def _kernelshap_seconds(forest, X_eval, proba_fn):
    """One KernelSHAP call whose model evaluations go through
    ``proba_fn`` — the end-to-end view of the inference kernels."""
    background = X_eval[:20]
    instance = X_eval[42]
    explainer = KernelShapExplainer(
        lambda X: proba_fn(forest, X)[:, 1],
        background,
        n_coalitions=128,
    )
    attribution, seconds = _timed(
        lambda: explainer.explain(instance, random_state=0)
    )
    return attribution, seconds


def compute_rows():
    tree, forest, gbm, X_eval = _fit_models()

    workloads = []  # (label, before_s, after_s, identical)
    leaves_before, tree_before = _timed(tree.tree_.apply_rowwise, X_eval)
    leaves_after, tree_after = _timed(tree.tree_.apply, X_eval)
    workloads.append((
        "tree apply (depth<=8)", tree_before, tree_after,
        bool(np.array_equal(leaves_before, leaves_after)),
    ))

    proba_before, forest_before = _timed(
        _forest_proba_rowwise, forest, X_eval
    )
    proba_after, forest_after = _timed(forest.predict_proba, X_eval)
    workloads.append((
        "forest predict_proba (20 trees)", forest_before, forest_after,
        bool(np.array_equal(proba_before, proba_after)),
    ))

    raw_before, gbm_before = _timed(_gbm_predict_rowwise, gbm, X_eval)
    raw_after, gbm_after = _timed(gbm.predict, X_eval)
    workloads.append((
        "gbm predict (30 stages)", gbm_before, gbm_after,
        bool(np.array_equal(raw_before, raw_after)),
    ))

    shap_before, e2e_before = _kernelshap_seconds(
        forest, X_eval, _forest_proba_rowwise
    )
    shap_after, e2e_after = _kernelshap_seconds(
        forest, X_eval, lambda model, X: model.predict_proba(X)
    )
    # the explainer's own ledger knows how many hybrid rows it scored
    e2e_rows = int(shap_after.metadata["n_model_evals"])
    workloads.append((
        "end-to-end kernelshap (128 coalitions)", e2e_before, e2e_after,
        bool(np.allclose(shap_before.values, shap_after.values,
                         atol=1e-12, rtol=0.0)),
    ))

    rows = []
    record = {"n_rows": N_ROWS, "n_features": N_FEATURES, "workloads": {}}
    for label, before_s, after_s, identical in workloads:
        n_rows = e2e_rows if label.startswith("end-to-end") else N_ROWS
        speedup = before_s / after_s if after_s > 0 else float("inf")
        rows.append((
            label,
            f"{n_rows / before_s:,.0f}",
            f"{n_rows / after_s:,.0f}",
            f"{speedup:.1f}x",
            "bit-identical" if identical else "DIVERGED",
        ))
        record["workloads"][label] = {
            "before_s": before_s,
            "after_s": after_s,
            "n_rows": n_rows,
            "rows_per_s_before": n_rows / before_s,
            "rows_per_s_after": n_rows / after_s,
            "speedup": speedup,
            "identical": identical,
        }
    if N_ROWS >= 10_000:  # smoke runs must not overwrite the baseline
        out_path = Path(__file__).resolve().parent / "BENCH_inference.json"
        merge_bench_record(out_path, "a10_inference", record)
    return rows, record


def test_a10_inference_kernels(benchmark):
    rows, record = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        f"A10 (perf): vectorized tree-inference kernels vs row-wise "
        f"reference ({N_ROWS:,} rows; paper: explanation cost = model "
        f"evaluations)",
        ["workload", "rows/s before", "rows/s after", "speedup",
         "invariant"],
        rows,
    )
    workloads = record["workloads"]
    # every kernel path reproduces its row-wise reference exactly
    assert all(w["identical"] for w in workloads.values())
    # the ensemble kernels clear the acceptance bar
    forest = workloads["forest predict_proba (20 trees)"]
    gbm = workloads["gbm predict (30 stages)"]
    assert forest["speedup"] >= MIN_ENSEMBLE_SPEEDUP
    assert gbm["speedup"] >= MIN_ENSEMBLE_SPEEDUP
    # a single tree also wins (smaller margin: one tree, less batching)
    assert workloads["tree apply (depth<=8)"]["speedup"] > 1.5
    # ... and the win survives end to end through KernelSHAP
    e2e = workloads["end-to-end kernelshap (128 coalitions)"]
    assert e2e["speedup"] > 1.2
