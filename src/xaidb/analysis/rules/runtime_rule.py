"""XDB009 — direct ``predict_fn`` loops bypassing the shared runtime.

The tutorial's cost claim is that every perturbation-based explainer
reduces to many model evaluations; ``xaidb.runtime`` is the one substrate
where that cost is memoised, chunked and accounted (``n_model_evals``,
``cache_hit_rate`` in every attribution's metadata).  An explainer that
calls ``predict_fn`` / ``self.predict_fn`` *inside a loop* re-rolls its
own evaluation loop: per-iteration model calls dodge the coalition cache,
the ``max_batch_rows`` memory bound and the evaluation ledger — exactly
the seed-era pattern this rule exists to retire.

Scope: modules under ``xaidb.explainers`` and ``xaidb.rules`` (the
perturbation-explainer packages the runtime serves).  Calls where the
loop *is* the substrate (the chunked batch walk in ``games.py``) or where
per-candidate evaluation is the method's definition (genetic
counterfactual search, per-feature masking) carry an inline
``# xailint: disable=XDB009 (reason)`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["PredictLoopRule"]

_SCOPED_PACKAGES = ("xaidb.explainers", "xaidb.rules")
_TARGET_NAME = "predict_fn"


def _in_scope(ctx: FileContext) -> bool:
    return any(
        ctx.module_name == package
        or ctx.module_name.startswith(package + ".")
        for package in _SCOPED_PACKAGES
    )


def _is_predict_fn_call(node: ast.Call) -> bool:
    """``predict_fn(...)``, ``self.predict_fn(...)``, ``obj.predict_fn(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == _TARGET_NAME
    if isinstance(func, ast.Attribute):
        return func.attr == _TARGET_NAME
    return False


class _Visitor(ast.NodeVisitor):
    """Track lexical loop depth; flag predict_fn calls at depth > 0.

    Function/class boundaries reset the depth: a helper *defined* inside
    a loop is not itself a per-iteration model call, and a call inside a
    function defined outside any loop is not flagged even if the function
    is invoked from one (the rule is lexical, like the rest of xailint).
    """

    def __init__(self, rule: "PredictLoopRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.loop_depth = 0
        self.findings: list[Finding] = []

    # -- boundaries ----------------------------------------------------
    def _visit_scope(self, node: ast.AST) -> None:
        outer = self.loop_depth
        self.loop_depth = 0
        self.generic_visit(node)
        self.loop_depth = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node)

    # -- loops ---------------------------------------------------------
    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- comprehensions are loops too ---------------------------------
    def _visit_comprehension(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- the calls -----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.loop_depth > 0 and _is_predict_fn_call(node):
            self.findings.append(
                self.ctx.finding(
                    self.rule,
                    node,
                    "model evaluation inside a loop bypasses the shared "
                    "runtime: route batched coalitions/perturbations "
                    "through xaidb.runtime.GameRuntime (or collect rows "
                    "and score them in one predict_fn call) so the memo "
                    "cache, max_batch_rows bound and eval counters apply",
                )
            )
        self.generic_visit(node)


@register
class PredictLoopRule(FileRule):
    rule_id = "XDB009"
    symbol = "predict-loop-bypasses-runtime"
    description = (
        "A per-iteration predict_fn call inside an explainer loop "
        "bypasses the shared evaluation runtime (xaidb.runtime): no "
        "memoisation, no chunking bound, no eval accounting."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
