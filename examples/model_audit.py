"""Auditing a model globally (tutorial §2 overview + §1 objective (3)).

A compliance team audits a deployed recidivism scorer:

1. global views — permutation importance, partial dependence, and
   local-to-global SHAP summaries — expose what drives the model overall;
2. supervised clustering groups defendants *by why they were scored*,
   not by raw similarity;
3. fairness-of-recourse measures whether flipping a denial costs one
   protected group more than another;
4. weak supervision shows how the team can programmatically label a
   fresh audit sample using rules mined from a small reviewed seed.

Run:  python examples/model_audit.py
"""

import numpy as np

from xaidb.data import make_recidivism
from xaidb.evaluation import recourse_cost_disparity
from xaidb.explainers import (
    partial_dependence,
    permutation_importance,
    predict_positive_proba,
)
from xaidb.explainers.counterfactual import LinearRecourse
from xaidb.explainers.shapley import (
    KernelShapExplainer,
    global_shap_importance,
    shap_matrix,
    shap_summary,
    supervised_clustering,
)
from xaidb.models import LogisticRegression, roc_auc
from xaidb.rules import (
    ABSTAIN,
    LabelModel,
    apply_labeling_functions,
    mine_labeling_rules,
)


def main() -> None:
    workload = make_recidivism(1500, biased=True, random_state=0)
    dataset = workload.dataset
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    print("auditing: logistic recidivism scorer "
          f"(AUC {roc_auc(dataset.y, f(dataset.X)):.3f}; the generating "
          "process is biased on race)")

    # --- 1. global importance ------------------------------------------
    importance = permutation_importance(
        f, dataset.X, dataset.y, roc_auc,
        n_repeats=5, feature_names=dataset.feature_names, random_state=0,
    )
    print("\n[permutation importance] AUC drop when shuffled:")
    for name, value in importance.ranked():
        print(f"  {name:15s} {value:+.4f}")

    grid, pd_values = partial_dependence(
        f, dataset.X, dataset.feature_index("priors"), n_grid=7
    )
    print("\n[partial dependence] P(recid) vs priors:")
    for g, v in zip(grid, pd_values):
        print(f"  priors={g:+.2f} -> {v:.3f}")

    shap_values = shap_matrix(
        lambda x: KernelShapExplainer(
            f, dataset.X[:25], feature_names=dataset.feature_names
        ).explain(x, random_state=0),
        dataset.X[:40],
    )
    print("\n[global SHAP] beeswarm-style summary (direction: does a high "
          "value push the score up?):")
    for row in shap_summary(shap_values, dataset.X[:40], dataset.feature_names):
        print(f"  {row['feature']:15s} mean|phi|={row['mean_abs_shap']:.4f} "
              f"direction={row['value_direction']:+.2f}")
    race_rank = [
        row["feature"]
        for row in shap_summary(
            shap_values, dataset.X[:40], dataset.feature_names
        )
    ].index("race")
    print(f"  => 'race' ranks #{race_rank + 1} globally: the audit has "
          "surfaced the bias")

    # --- 2. supervised clustering -----------------------------------------
    labels, medoids = supervised_clustering(shap_values, 3, random_state=0)
    print("\n[supervised clustering] defendants grouped by explanation:")
    for cluster in range(3):
        members = np.flatnonzero(labels == cluster)
        top = global_shap_importance(
            shap_values[members], dataset.feature_names
        ).top(1)[0][0]
        print(f"  cluster {cluster}: {len(members)} defendants, "
              f"dominated by '{top}'")

    # --- 3. fairness of recourse -------------------------------------------
    # recourse direction: moving a HIGH-risk defendant to low risk, so fit
    # the recourse scorer on inverted labels ("positive" = low risk)
    low_risk_model = LogisticRegression(l2=1e-2).fit(
        dataset.X, 1.0 - dataset.y
    )
    recourse = LinearRecourse(low_risk_model, dataset)
    stats, ratio = recourse_cost_disparity(recourse, dataset, "race")
    print("\n[recourse fairness] minimal cost to flip a high-risk score "
          "to low risk:")
    for s in stats:
        print(f"  race={s.group}: {s.n_denied} high-risk rows, "
              f"mean cost {s.mean_cost:.2f}, infeasible {s.infeasible_rate:.0%}")
    print(f"  => max group cost ratio: {ratio:.2f} "
          "(the group the model penalises pays more to escape a high score)")

    # --- 4. weak supervision for audit labelling ------------------------------
    seed = dataset.subset(range(200))
    fresh = workload.resample(500, random_state=9)
    functions = mine_labeling_rules(seed, min_precision=0.75, max_rules=8)
    votes = apply_labeling_functions(functions, fresh.X)
    label_model = LabelModel().fit(votes)
    covered = (votes != ABSTAIN).any(axis=1)
    from xaidb.models import accuracy

    acc = accuracy(
        fresh.y[covered], label_model.predict(votes)[covered]
    )
    print(f"\n[weak supervision] {len(functions)} rules mined from a 200-row "
          f"reviewed seed label {covered.mean():.0%} of a fresh audit sample "
          f"at {acc:.0%} accuracy, e.g.:")
    for function in functions[:3]:
        print(f"  {function.name}")


if __name__ == "__main__":
    main()
