"""CXPlain-style learned explanation models (tutorial §2.1.3;
Schwab & Karlen 2019).

Instead of training a surrogate of the *model*, CXPlain trains a
surrogate of the *explanation*: a supervised model that maps an input to
its per-feature attribution vector.  The training targets are
Granger-causal importance scores — the change in the black box's loss (or
output) when each feature is masked — computed once over a training set.
At explanation time a single forward pass of the explanation model
replaces thousands of perturbation queries, and an ensemble of
explanation models yields uncertainty estimates for each attribution
(the paper's headline feature).

This tabular implementation uses per-feature masking by background-mean
imputation for the targets and a k-NN regressor over attribut­ion vectors
as the explanation model (simple, deterministic and dependency-free);
bootstrap resampling of the training inputs provides the ensemble
uncertainty.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array

__all__ = ["granger_importance_targets", "CXPlainExplainer"]


def granger_importance_targets(
    predict_fn: PredictFn,
    X: np.ndarray,
    baseline: np.ndarray,
) -> np.ndarray:
    """Per-row, per-feature masking importances.

    ``target[i, j] = |f(x_i) - f(x_i with feature j set to baseline_j)|``,
    normalised per row to sum to 1 (the paper's causal-strength
    normalisation).  Rows where masking changes nothing get uniform
    attributions.
    """
    X = check_array(X, name="X", ndim=2)
    baseline = check_array(baseline, name="baseline", ndim=1)
    if baseline.shape[0] != X.shape[1]:
        raise ValidationError("baseline width mismatch")
    original = np.asarray(predict_fn(X), dtype=float)
    n, d = X.shape
    deltas = np.empty((n, d))
    for j in range(d):
        masked = X.copy()
        masked[:, j] = baseline[j]
        # xailint: disable=XDB009 (granger masking scores the full n-row batch once per feature; the d masked batches are all distinct)
        deltas[:, j] = np.abs(original - np.asarray(predict_fn(masked)))
    totals = deltas.sum(axis=1, keepdims=True)
    uniform = np.full((1, d), 1.0 / d)
    return np.where(totals > 1e-12, deltas / np.maximum(totals, 1e-12), uniform)


class _KnnAttributionRegressor:
    """Distance-weighted k-NN regression over attribution vectors."""

    def __init__(self, k: int, X: np.ndarray, targets: np.ndarray) -> None:
        self.k = min(k, len(X))
        self.X = X
        self.targets = targets
        self.scale = np.maximum(X.std(axis=0), 1e-9)

    def predict(self, X: np.ndarray) -> np.ndarray:
        distances = pairwise_distances(X / self.scale, self.X / self.scale)
        order = np.argsort(distances, axis=1, kind="mergesort")[:, : self.k]
        out = np.empty((X.shape[0], self.targets.shape[1]))
        for i in range(X.shape[0]):
            neighbours = order[i]
            weights = 1.0 / (distances[i, neighbours] + 1e-9)
            weights /= weights.sum()
            out[i] = weights @ self.targets[neighbours]
        return out


class CXPlainExplainer(Explainer):
    """A learned explanation model with ensemble uncertainty.

    Parameters
    ----------
    predict_fn:
        The black box to explain.
    n_neighbors:
        k of the attribution regressor.
    ensemble_size:
        Number of bootstrap members (1 disables uncertainty).
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        *,
        n_neighbors: int = 10,
        ensemble_size: int = 5,
        feature_names: list[str] | None = None,
    ) -> None:
        if ensemble_size < 1:
            raise ValidationError("ensemble_size must be >= 1")
        self.predict_fn = predict_fn
        self.n_neighbors = n_neighbors
        self.ensemble_size = ensemble_size
        self.feature_names = feature_names
        self.members_: list[_KnnAttributionRegressor] | None = None

    def fit(
        self,
        X: np.ndarray,
        *,
        baseline: np.ndarray | None = None,
        random_state: RandomState = None,
    ) -> "CXPlainExplainer":
        """Compute masking targets on ``X`` and fit the ensemble."""
        X = check_array(X, name="X", ndim=2)
        baseline = X.mean(axis=0) if baseline is None else baseline
        targets = granger_importance_targets(self.predict_fn, X, baseline)
        seeds = spawn_seeds(check_random_state(random_state), self.ensemble_size)
        self.members_ = []
        n = X.shape[0]
        for member_index, seed in enumerate(seeds):
            if member_index == 0:
                rows = np.arange(n)  # first member sees everything
            else:
                rows = check_random_state(seed).integers(0, n, size=n)
            self.members_.append(
                _KnnAttributionRegressor(
                    self.n_neighbors, X[rows], targets[rows]
                )
            )
        return self

    def explain(self, instance: np.ndarray) -> FeatureAttribution:
        """One forward pass: attribution + ensemble standard deviation."""
        if self.members_ is None:
            raise NotFittedError("CXPlainExplainer is not fitted")
        instance = check_array(instance, name="instance", ndim=1)
        stacked = np.vstack(
            [member.predict(instance[None, :])[0] for member in self.members_]
        )
        mean = stacked.mean(axis=0)
        std = (
            stacked.std(axis=0, ddof=1)
            if len(self.members_) > 1
            else np.zeros_like(mean)
        )
        names = self.feature_names or [
            f"x{i}" for i in range(instance.shape[0])
        ]
        prediction = float(self.predict_fn(instance[None, :])[0])
        return FeatureAttribution(
            feature_names=list(names),
            values=mean,
            base_value=0.0,
            prediction=prediction,
            metadata={
                "method": "cxplain",
                "uncertainty": std.tolist(),
                "ensemble_size": len(self.members_),
            },
        )
