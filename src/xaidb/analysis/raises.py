"""Interprocedural may-raise summaries (summary pass G).

Computes, per function, an over-approximation of the exception types
that may escape it: the types it raises itself, plus everything its
callees' summaries may raise, minus what enclosing ``try`` blocks
provably handle — folded bottom-up over the SCC-condensed call graph
exactly like the other summary passes, and cached under the same
Merkle keys.

The summary is a pair ``(named, top)``:

- ``named`` maps an exception type name to a *witness* —
  ``qualname:line`` of the raise (or of the deepest callee raise it
  was inherited from), so a rule can point at the actual throw site
  two frames away;
- ``top`` is the conservative "and possibly anything else" bit, set by
  bare ``raise``, unresolved calls, and callees that are themselves ⊤.

Directionality matters and differs by operation.  *Raising* is
over-approximated (every resolvable raise is included, every opaque
one sets ⊤).  *Catching* is what needs care: subtracting a handler is
only sound for a may-raise summary if over-subtraction is the
accepted direction — and it is, because the one rule built on this
summary (XDB031 ``untyped-exception-escapes-service-boundary``) fires
on *provable escapes*, so assuming a handler catches can only lose
findings, never invent them.  A handler therefore catches everything
it *might* catch, and a raised type survives subtraction only when it
**provably** escapes every handler:

- both types builtin → decided exactly by the builtin ancestry table
  (notably ``asyncio.CancelledError`` derives from ``BaseException``,
  so ``except Exception`` provably misses it);
- corpus handler vs builtin raise → provably escapes (a corpus class
  cannot appear in a builtin's MRO);
- corpus handler vs corpus raise → decided by ``class_bases``
  reachability, which is sound *because* the call-graph builder
  records every corpus inheritance edge (builtin bases are dropped,
  so non-reachability over corpus edges is a real proof);
- anything involving an unresolvable name → assumed caught.

A ``return`` in a ``finally`` block swallows whatever was in flight —
the summary models that too, since it is precisely the "exception
silently discarded" shape the swallowed-exception rule cares about.
"""

from __future__ import annotations

import ast

from xaidb.analysis.callgraph import CallGraph, FunctionNode, dotted_name
from xaidb.analysis.dataflow import item_exprs

__all__ = [
    "BUILTIN_BASES",
    "may_raise",
    "encode_raises",
    "decode_entry",
    "builtin_ancestors",
    "corpus_ancestors",
    "is_service_error",
    "is_cancellation",
]

#: Builtin exception hierarchy (child -> parent), the fragment the
#: corpus can realistically raise or catch.  ``None`` marks the root.
BUILTIN_BASES: dict[str, str | None] = {
    "BaseException": None,
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "asyncio.CancelledError": "BaseException",
    "CancelledError": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "OSError": "Exception",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "InterruptedError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
}

#: Summary size cap: past this many distinct named types the summary
#: degrades to ⊤ (keeping the lexicographically-first entries so the
#: encoding stays deterministic).
_MAX_NAMED = 12

_BROAD = ("Exception", "BaseException")


def builtin_ancestors(name: str) -> tuple[str, ...]:
    """``name`` and its builtin superclasses, child first."""
    chain: list[str] = []
    current: str | None = name
    while current is not None:
        chain.append(current)
        current = BUILTIN_BASES.get(current)
    return tuple(chain)


def corpus_ancestors(class_fq: str, graph: CallGraph) -> frozenset[str]:
    """``class_fq`` and every corpus base reachable from it."""
    seen: set[str] = set()
    stack = [class_fq]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.class_bases.get(current, []))
    return frozenset(seen)


def is_service_error(type_name: str, graph: CallGraph) -> bool:
    """Does ``type_name`` (resolved) derive from ``ServiceError``?"""
    if type_name in graph.class_bases:
        return any(
            ancestor.rpartition(".")[2] == "ServiceError"
            for ancestor in corpus_ancestors(type_name, graph)
        )
    return type_name.rpartition(".")[2] == "ServiceError"


def is_cancellation(type_name: str) -> bool:
    return type_name.rpartition(".")[2] == "CancelledError"


def encode_raises(
    named: dict[str, str], top: bool
) -> tuple[tuple[str, ...], bool]:
    """``FunctionSummary`` encoding: ``("Type@qualname:line", ...)``."""
    entries = tuple(
        f"{name}@{witness}" for name, witness in sorted(named.items())
    )
    if len(entries) > _MAX_NAMED:
        entries = entries[:_MAX_NAMED]
        top = True
    return entries, top


def decode_entry(entry: str) -> tuple[str, str]:
    name, _, witness = entry.partition("@")
    return name, witness


def may_raise(
    fnode: FunctionNode,
    graph: CallGraph,
    summaries: dict,
) -> tuple[dict[str, str], bool]:
    """The may-raise set of one function body, given callee summaries
    (missing or in-flight callees read as ⊤ until the SCC round in
    :mod:`~xaidb.analysis.summaries` converges)."""
    return _Walker(fnode, graph, summaries).run()


class _Walker:
    def __init__(
        self, fnode: FunctionNode, graph: CallGraph, summaries: dict
    ) -> None:
        self.fnode = fnode
        self.graph = graph
        self.summaries = summaries
        self.module = fnode.module

    def run(self) -> tuple[dict[str, str], bool]:
        return self._block(self.fnode.node.body)

    # -- name resolution ---------------------------------------------

    def _exc_type(self, expr: ast.AST | None) -> str | None:
        """Resolve a raised/caught expression to a corpus fq name or a
        builtin table key; ``None`` = unresolvable."""
        if expr is None:
            return None
        if isinstance(expr, ast.Call):
            expr = expr.func
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        aliases = self.graph.aliases.get(self.module, {})
        if "." not in dotted:
            local = f"{self.module}.{dotted}"
            if local in self.graph.class_bases:
                return local
            target = aliases.get(dotted)
            if target is not None:
                if target in self.graph.class_bases:
                    return target
                if target in BUILTIN_BASES:
                    return target
                return None  # imported, but not something we know
            if dotted in BUILTIN_BASES:
                return dotted
            return None
        head, _, tail = dotted.partition(".")
        target = aliases.get(head)
        full = f"{target}.{tail}" if target is not None else dotted
        if full in self.graph.class_bases:
            return full
        if full in BUILTIN_BASES:
            return full
        if dotted in BUILTIN_BASES:
            return dotted
        return None

    def _handler_types(self, node: ast.AST | None) -> list[str | None]:
        """Resolved types of one ``except`` clause (``None`` entries =
        bare/unresolvable, which catch everything)."""
        if node is None:
            return [None]
        if isinstance(node, ast.Tuple):
            return [self._exc_type(element) for element in node.elts]
        return [self._exc_type(node)]

    # -- the catch decision ------------------------------------------

    def _may_catch(self, handler: str | None, raised: str) -> bool:
        """May ``except handler`` catch ``raised``?  ``False`` only on
        a proof of disjointness (see module docstring)."""
        if handler is None:
            return True
        raised_builtin = raised in BUILTIN_BASES
        if handler in BUILTIN_BASES:
            if raised_builtin:
                return handler in builtin_ancestors(raised)
            return True  # corpus raise under builtin handler: assume
        # corpus handler
        if raised_builtin:
            return False  # a corpus class is never in a builtin's MRO
        return handler in corpus_ancestors(raised, self.graph)

    # -- call effects ------------------------------------------------

    def _call_effect(self, call: ast.Call) -> tuple[dict[str, str], bool]:
        site = self.graph.callsites.get(id(call))
        if site is None or not site.candidates:
            return {}, True
        named: dict[str, str] = {}
        top = False
        for qualname in site.candidates:
            summary = self.summaries.get(qualname)
            if summary is None:
                return named, True
            top = top or summary.raises_top
            for entry in summary.raises_named:
                name, witness = decode_entry(entry)
                named.setdefault(name, witness)
        return named, top

    def _calls_in(self, root: ast.AST | None) -> list[ast.Call]:
        if root is None:
            return []
        out: list[ast.Call] = []
        stack: list[ast.AST] = [root]
        while stack:
            current = stack.pop()
            if isinstance(
                current,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            ):
                continue  # deferred bodies raise in their own frame
            if isinstance(current, ast.Call):
                out.append(current)
            stack.extend(ast.iter_child_nodes(current))
        return out

    # -- the walk ----------------------------------------------------

    def _block(self, stmts: list[ast.stmt]) -> tuple[dict[str, str], bool]:
        named: dict[str, str] = {}
        top = False
        for stmt in stmts:
            sub_named, sub_top = self._stmt(stmt)
            for name, witness in sub_named.items():
                named.setdefault(name, witness)
            top = top or sub_top
        return named, top

    def _stmt(self, stmt: ast.stmt) -> tuple[dict[str, str], bool]:
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt)
        if isinstance(stmt, ast.Assert):
            named, top = self._header_calls(stmt)
            named.setdefault(
                "AssertionError", f"{self.fnode.qualname}:{stmt.lineno}"
            )
            return named, top
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return {}, False  # raises in their own (later) frame
        named, top = self._header_calls(stmt)
        for block in self._sub_blocks(stmt):
            sub_named, sub_top = self._block(block)
            for name, witness in sub_named.items():
                named.setdefault(name, witness)
            top = top or sub_top
        return named, top

    def _raise(self, stmt: ast.Raise) -> tuple[dict[str, str], bool]:
        if stmt.exc is None:
            return self._header_calls(stmt)[0], True  # bare re-raise
        resolved = self._exc_type(stmt.exc)
        if resolved is None:
            return self._header_calls(stmt)[0], True
        # the constructor call is accounted for by naming the type —
        # only calls in its *arguments* (and the cause) can add more
        named: dict[str, str] = {}
        top = False
        roots: list[ast.AST | None] = [stmt.cause]
        if isinstance(stmt.exc, ast.Call):
            roots.extend(stmt.exc.args)
            roots.extend(kw.value for kw in stmt.exc.keywords)
        for root in roots:
            for call in self._calls_in(root):
                sub_named, sub_top = self._call_effect(call)
                for name, witness in sub_named.items():
                    named.setdefault(name, witness)
                top = top or sub_top
        named.setdefault(
            resolved, f"{self.fnode.qualname}:{stmt.lineno}"
        )
        return named, top

    def _try(self, stmt) -> tuple[dict[str, str], bool]:
        body_named, body_top = self._block(stmt.body)
        handler_specs: list[list[str | None]] = []
        merged: dict[str, str] = {}
        merged_top = False
        for handler in stmt.handlers:
            handler_specs.append(self._handler_types(handler.type))
            sub_named, sub_top = self._block(handler.body)
            for name, witness in sub_named.items():
                merged.setdefault(name, witness)
            merged_top = merged_top or sub_top
        escaped = {
            name: witness
            for name, witness in body_named.items()
            if not any(
                self._may_catch(handler, name)
                for types in handler_specs
                for handler in types
            )
        }
        escaped_top = body_top and not any(
            handler is None or handler in _BROAD
            for types in handler_specs
            for handler in types
        )
        orelse_named, orelse_top = self._block(stmt.orelse)
        final_named, final_top = self._block(stmt.finalbody)
        if any(
            isinstance(node, ast.Return)
            for node in self._calls_scope_walk(stmt.finalbody)
        ):
            # a return in finally discards whatever was in flight
            return final_named, final_top
        for source_named, source_top in (
            (escaped, escaped_top),
            (orelse_named, orelse_top),
            (final_named, final_top),
        ):
            for name, witness in source_named.items():
                merged.setdefault(name, witness)
            merged_top = merged_top or source_top
        return merged, merged_top

    def _header_calls(self, stmt: ast.stmt) -> tuple[dict[str, str], bool]:
        named: dict[str, str] = {}
        top = False
        for root in item_exprs(stmt):
            for call in self._calls_in(root):
                sub_named, sub_top = self._call_effect(call)
                for name, witness in sub_named.items():
                    named.setdefault(name, witness)
                top = top or sub_top
        return named, top

    @staticmethod
    def _sub_blocks(stmt: ast.stmt):
        for _name, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value:
                if isinstance(value[0], ast.stmt):
                    yield value
                elif isinstance(value[0], ast.match_case):
                    for case in value:
                        yield case.body
                elif isinstance(value[0], ast.excepthandler):
                    pass  # handled by _try
                elif isinstance(value[0], (ast.withitem,)):
                    pass  # header expressions, covered by item_exprs

    @staticmethod
    def _calls_scope_walk(stmts: list[ast.stmt]):
        for stmt in stmts:
            stack: list[ast.AST] = [stmt]
            while stack:
                current = stack.pop()
                if isinstance(
                    current,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                yield current
                stack.extend(ast.iter_child_nodes(current))
