import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import (
    ice_curves,
    partial_dependence,
    permutation_importance,
    predict_positive_proba,
)
from xaidb.models import accuracy, roc_auc


def linear_fn(weights):
    weights = np.asarray(weights, dtype=float)
    return lambda X: X @ weights


class TestPartialDependence:
    def test_linear_model_gives_linear_pdp(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        f = linear_fn([2.0, -1.0, 0.0])
        grid, values = partial_dependence(f, X, feature=0, n_grid=10)
        slopes = np.diff(values) / np.diff(grid)
        assert np.allclose(slopes, 2.0, atol=1e-8)

    def test_unused_feature_gives_flat_pdp(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        f = linear_fn([2.0, -1.0, 0.0])
        __, values = partial_dependence(f, X, feature=2, n_grid=8)
        assert np.allclose(values, values[0])

    def test_custom_grid(self):
        X = np.random.default_rng(2).normal(size=(50, 2))
        f = linear_fn([1.0, 0.0])
        grid = np.asarray([-1.0, 0.0, 1.0])
        out_grid, values = partial_dependence(f, X, feature=0, grid=grid)
        assert np.array_equal(out_grid, grid)
        assert len(values) == 3

    def test_grid_stays_on_support(self):
        X = np.random.default_rng(3).uniform(5, 9, size=(100, 1))
        f = linear_fn([1.0])
        grid, __ = partial_dependence(f, X, feature=0, n_grid=5)
        assert grid.min() >= 5.0
        assert grid.max() <= 9.0

    def test_feature_bounds(self):
        X = np.ones((5, 2))
        with pytest.raises(ValidationError):
            partial_dependence(lambda Z: Z[:, 0], X, feature=5)


class TestIceCurves:
    def test_pdp_is_mean_of_ice(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        X = income.dataset.X[:40]
        grid_pd, pd_values = partial_dependence(f, X, feature=1, n_grid=6)
        grid_ice, curves = ice_curves(f, X, feature=1, n_grid=6)
        assert np.array_equal(grid_pd, grid_ice)
        assert np.allclose(curves.mean(axis=0), pd_values, atol=1e-10)

    def test_centering_starts_at_zero(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        __, curves = ice_curves(
            f, income.dataset.X[:10], feature=0, n_grid=5, center=True
        )
        assert np.allclose(curves[:, 0], 0.0)

    def test_heterogeneity_detected_for_interaction(self):
        """f = x0 * x1: ICE slopes in x0 depend on x1 even though the PDP
        is flat (when x1 is centred) — the classic ICE use case."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 2))

        def f(Z):
            return Z[:, 0] * Z[:, 1]

        grid, curves = ice_curves(f, X, feature=0, n_grid=5)
        __, pd_values = partial_dependence(f, X, feature=0, n_grid=5)
        pd_range = pd_values.max() - pd_values.min()
        per_curve_range = (curves.max(axis=1) - curves.min(axis=1)).mean()
        assert per_curve_range > 5 * max(pd_range, 1e-9)


class TestPermutationImportance:
    def test_important_features_ranked_first(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        importance = permutation_importance(
            f,
            income.dataset.X,
            income.dataset.y,
            roc_auc,
            n_repeats=3,
            feature_names=income.dataset.feature_names,
            random_state=0,
        )
        ranked = [name for name, __ in importance.ranked()]
        assert "random_noise" in ranked[-4:]
        assert ranked[0] in ("education", "occupation", "hours")

    def test_unused_feature_near_zero(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(float)
        f = lambda Z: (Z[:, 0] > 0).astype(float)
        importance = permutation_importance(
            f, X, y, accuracy, n_repeats=3, random_state=1
        )
        assert importance.values[1] == pytest.approx(0.0, abs=0.02)
        assert importance.values[0] > 0.3

    def test_baseline_recorded(self):
        X = np.random.default_rng(6).normal(size=(50, 1))
        y = (X[:, 0] > 0).astype(float)
        f = lambda Z: (Z[:, 0] > 0).astype(float)
        importance = permutation_importance(
            f, X, y, accuracy, random_state=2
        )
        assert importance.base_value == pytest.approx(1.0)

    def test_repeat_validation(self):
        with pytest.raises(ValidationError):
            permutation_importance(
                lambda Z: Z[:, 0], np.ones((4, 1)), np.ones(4), accuracy,
                n_repeats=0,
            )
