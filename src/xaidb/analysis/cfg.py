"""Per-function control-flow graphs over stdlib ``ast``.

The dataflow rules (XDB010–XDB013) need to reason about *paths*, not
token shapes: a definition that is dead on every path, a tainted
generator that reaches a stochastic call on some path.  This module
builds the control-flow graph those analyses run on, from nothing but
the stdlib parser — the linter stays dependency-free.

Shape of the graph
------------------

A :class:`CFG` is a set of :class:`Block` basic blocks.  Each block
holds an ordered list of *items*; an item is either a plain simple
statement (``ast.Assign``, ``ast.Return``, …) or a compound-statement
header (``ast.If``, ``ast.While``, ``ast.For``, ``ast.With`` …) standing
in for the part of the statement evaluated at that point (the test, the
iterable, the context managers).  Consumers must therefore interpret a
header item as *only its header expressions* — the bodies live in
successor blocks.  :func:`xaidb.analysis.dataflow.item_uses` and
:func:`~xaidb.analysis.dataflow.item_defs` implement exactly that
interpretation.

Edges are conservative with respect to exceptions: every block created
inside a ``try`` body gets an edge to each handler entry (an exception
can fire between any two statements), and ``raise`` additionally falls
through to the function exit.  ``break``/``continue`` resolve against
the innermost enclosing loop; code after a terminator lands in a fresh
unreachable block (no predecessors) so analyses simply never reach it.

``finally`` blocks run on *every* way out of their ``try`` — including
``return``/``raise`` (and ``break``/``continue`` crossing the ``try``) —
so terminators inside a ``try ... finally`` get an edge to the innermost
``finally`` entry in addition to their normal target.  The innermost
approximation (a ``return`` under nested finallies edges only the
nearest one, whose exit then over-approximates by falling through) keeps
the graph simple while staying conservative for may-analyses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Block", "CFG", "build_cfg", "function_cfg"]

#: Statement types that terminate a block with no fall-through edge.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class Block:
    """One basic block: straight-line items plus successor edges."""

    id: int
    items: list[ast.AST] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)

    def __repr__(self) -> str:  # compact, for test failure output
        kinds = ",".join(type(item).__name__ for item in self.items)
        return (
            f"Block({self.id}, [{kinds}], "
            f"succs={sorted(self.succs)})"
        )


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    entry: int
    exit: int
    blocks: dict[int, Block] = field(default_factory=dict)
    #: Branch metadata for edges that are taken only when a test holds:
    #: ``(src, dst) -> (test expression, sense)``.  ``sense`` is the
    #: truth value of the test along that edge (``if``/``while`` only;
    #: ``for`` edges carry no test).  Path-sensitive analyses use this
    #: to refine the state flowing across the edge — e.g. the interval
    #: domain narrows ``x`` to ``(0, inf]`` on the true edge of
    #: ``if x > 0:``.  Plain dataflow ignores it.
    branches: dict[tuple[int, int], tuple[ast.expr, bool]] = field(
        default_factory=dict
    )

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def reachable(self) -> list[Block]:
        """Blocks reachable from the entry, in a deterministic order."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blocks[current].succs)
        return [self.blocks[b] for b in sorted(seen)]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks[b] for b in sorted(self.blocks))


class _Builder:
    """Single-pass recursive CFG construction."""

    def __init__(self) -> None:
        self.cfg = CFG(entry=0, exit=1)
        self.cfg.blocks[0] = Block(0)
        self.cfg.blocks[1] = Block(1)
        self._next_id = 2
        # (header block id, after-loop block id, finally-stack depth at
        # loop entry) per enclosing loop — the depth scopes which
        # finallies a break/continue actually crosses
        self._loops: list[tuple[int, int, int]] = []
        # handler entry block ids per enclosing try; every block created
        # while inside gets an exceptional edge to each of them
        self._handlers: list[list[int]] = []
        # finally-entry block ids per enclosing try ... finally;
        # terminators edge the innermost so the finally stays reachable
        self._finallies: list[int] = []

    # -- plumbing ----------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(self._next_id)
        self._next_id += 1
        self.cfg.blocks[block.id] = block
        for handler_ids in self._handlers:
            for handler_id in handler_ids:
                self._edge(block.id, handler_id)
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.add(dst)
        self.cfg.blocks[dst].preds.add(src)

    # -- statement dispatch ------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        last = self._body(body, self.cfg.entry)
        if last is not None:
            self._edge(last, self.cfg.exit)
        return self.cfg

    def _body(self, body: list[ast.stmt], current: int | None) -> int | None:
        """Wire ``body`` starting at block ``current``; return the block
        control falls out of, or ``None`` when every path terminated."""
        for stmt in body:
            if current is None:
                # unreachable code still gets blocks (and items) so
                # per-item lookups work, but no predecessor edges
                current = self._new_block().id
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> int | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.cfg.blocks[current].items.append(stmt)
            return self._body(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        # nested defs/classes are opaque single items: their bodies are
        # separate scopes with their own CFGs
        self.cfg.blocks[current].items.append(stmt)
        if isinstance(stmt, ast.Return):
            if self._finallies:
                self._edge(current, self._finallies[-1])
            self._edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            # the conservative handler edges were added at block
            # creation; a raise also runs the innermost finally and
            # reaches the exit when unhandled
            if self._finallies:
                self._edge(current, self._finallies[-1])
            self._edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                _header, after, finally_depth = self._loops[-1]
                if len(self._finallies) > finally_depth:
                    self._edge(current, self._finallies[-1])
                self._edge(current, after)
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                header, _after, finally_depth = self._loops[-1]
                if len(self._finallies) > finally_depth:
                    self._edge(current, self._finallies[-1])
                self._edge(current, header)
            return None
        return current

    # -- compound statements -----------------------------------------

    def _if(self, stmt: ast.If, current: int) -> int | None:
        self.cfg.blocks[current].items.append(stmt)
        join = self._new_block()

        then_entry = self._new_block()
        self._edge(current, then_entry.id)
        self.cfg.branches[(current, then_entry.id)] = (stmt.test, True)
        then_exit = self._body(stmt.body, then_entry.id)
        if then_exit is not None:
            self._edge(then_exit, join.id)

        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry.id)
            self.cfg.branches[(current, else_entry.id)] = (stmt.test, False)
            else_exit = self._body(stmt.orelse, else_entry.id)
            if else_exit is not None:
                self._edge(else_exit, join.id)
        else:
            self._edge(current, join.id)
            self.cfg.branches[(current, join.id)] = (stmt.test, False)

        if not join.preds:
            return None
        return join.id

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int | None:
        header = self._new_block()
        header.items.append(stmt)
        self._edge(current, header.id)
        after = self._new_block()

        body_entry = self._new_block()
        self._edge(header.id, body_entry.id)
        if isinstance(stmt, ast.While):
            self.cfg.branches[(header.id, body_entry.id)] = (stmt.test, True)
        self._loops.append((header.id, after.id, len(self._finallies)))
        body_exit = self._body(stmt.body, body_entry.id)
        self._loops.pop()
        if body_exit is not None:
            self._edge(body_exit, header.id)

        # the not-taken edge runs through the else clause when present
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(header.id, else_entry.id)
            if isinstance(stmt, ast.While):
                self.cfg.branches[(header.id, else_entry.id)] = (
                    stmt.test,
                    False,
                )
            else_exit = self._body(stmt.orelse, else_entry.id)
            if else_exit is not None:
                self._edge(else_exit, after.id)
        else:
            self._edge(header.id, after.id)
            if isinstance(stmt, ast.While):
                self.cfg.branches[(header.id, after.id)] = (stmt.test, False)

        if not after.preds:
            return None
        return after.id

    def _try(self, stmt: ast.Try, current: int) -> int | None:
        join = self._new_block()
        # the finally entry must exist before the body is built so that
        # return/raise (and loop exits crossing the try) can edge into
        # it — a `try: return x finally: release(x)` runs the finally
        # with the state at the return, it is not dead code
        final_entry: Block | None = None
        if stmt.finalbody:
            final_entry = self._new_block()
            self._finallies.append(final_entry.id)

        handler_entries: list[tuple[ast.ExceptHandler, Block]] = []
        handler_ids: list[int] = []
        for handler in stmt.handlers:
            entry = self._new_block()
            handler_entries.append((handler, entry))
            handler_ids.append(entry.id)

        # the first try-body block can raise too: link the current
        # block's continuation through a fresh block under the handlers
        self._handlers.append(handler_ids)
        body_entry = self._new_block()
        self._edge(current, body_entry.id)
        body_exit = self._body(stmt.body, body_entry.id)
        self._handlers.pop()

        if stmt.orelse:
            if body_exit is not None:
                else_entry = self._new_block()
                self._edge(body_exit, else_entry.id)
                body_exit = self._body(stmt.orelse, else_entry.id)
        if body_exit is not None:
            self._edge(body_exit, join.id)

        for handler, entry in handler_entries:
            # `except E as name:` binds name at handler entry
            entry.items.append(handler)
            handler_exit = self._body(handler.body, entry.id)
            if handler_exit is not None:
                self._edge(handler_exit, join.id)

        if final_entry is not None:
            self._finallies.pop()

        result: int | None = join.id
        if not join.preds:
            result = None
        if final_entry is not None:
            if result is not None:
                self._edge(result, final_entry.id)
            final_exit = self._body(stmt.finalbody, final_entry.id)
            if result is None:
                # every in-try path terminated; the terminator edges
                # above keep the finally reachable, and control then
                # leaves the scope rather than falling through
                if final_exit is not None:
                    self._edge(final_exit, self.cfg.exit)
                return None
            result = final_exit
        return result

    def _match(self, stmt: ast.Match, current: int) -> int | None:
        self.cfg.blocks[current].items.append(stmt)
        join = self._new_block()
        for case in stmt.cases:
            case_entry = self._new_block()
            self._edge(current, case_entry.id)
            case_exit = self._body(case.body, case_entry.id)
            if case_exit is not None:
                self._edge(case_exit, join.id)
        # no case may match: fall through
        self._edge(current, join.id)
        return join.id


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG of a statement list (usually a function body)."""
    return _Builder().build(body)


def function_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of ``fn``'s body (parameters are not in the graph;
    analyses seed them into the entry state instead)."""
    return build_cfg(fn.body)
