"""XDB014–XDB017 — the interprocedural rule tier.

The first thirteen rules stop at function boundaries: XDB010 cannot see
a literal-seeded generator built in a helper, XDB011 cannot see a view
returned *through* one, XDB003 cannot see a mutation a callee performs
on the caller's behalf.  These four rules close that gap.  They all
ride on the same :class:`~xaidb.analysis.summaries.InterprocAnalysis`
instance — project-wide call graph, bottom-up function summaries, and
the :mod:`~xaidb.analysis.shapes` abstract domain — built once per scan
via :meth:`~xaidb.analysis.registry.ProjectContext.interproc`.

- **XDB014 shape-mismatch** — an ndarray binary operation / ``matmul``
  / ``concatenate`` whose operands are *provably* incompatible on every
  path, with callee return shapes flowing through summaries.  Only
  literal-vs-literal dim conflicts are ever provable, so the rule is
  free of false positives by construction.
- **XDB015 dtype-degradation** — a provably-float64 value narrowed by a
  ``float32``/int cast, or a true division of provably-integer arrays,
  on a path that flows into an ``explain*`` return value: attribution
  scores silently lose the precision the paper's ranking semantics
  assume.
- **XDB016 rng-escapes-helper** — the interprocedural face of XDB010: a
  generator seeded with a literal inside a helper (up to
  :data:`~xaidb.analysis.summaries.RNG_MAX_DEPTH` boundaries away)
  reaches a stochastic call here.  Depth-0 cases stay XDB010's.
- **XDB017 mutation-through-callee** — the interprocedural face of
  XDB003/XDB011: an ``explain*``/``fit`` method hands a caller-owned
  array to a helper whose summary mutates it in place, or returns a
  helper's view of one.  Direct (same-frame) cases stay XDB003/XDB011's.

Every rule stays silent on anything it cannot prove: unresolved calls,
dynamic scopes and unknown shapes all collapse to ⊤, which can never
support a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.dataflow import (
    State,
    ValueTaint,
    calls_dynamic_scope,
    function_params,
    item_exprs,
    replay,
    solve_forward,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import (
    FileContext,
    ProjectContext,
    ProjectRule,
    register,
)
from xaidb.analysis.rules.rng_origin import STOCHASTIC_METHODS
from xaidb.analysis.shapes import (
    INCOMPATIBLE,
    AbstractArray,
    ShapeAnalysis,
    broadcast_shapes,
    concat_shapes,
    decode,
    dtype_from_node,
    matmul_shapes,
)
from xaidb.analysis.summaries import (
    VIA_PREFIX,
    InterprocAnalysis,
    iter_mutations,
    rng_depths,
    strip_via,
)

__all__ = [
    "ShapeMismatchRule",
    "DtypeDegradationRule",
    "RngEscapesHelperRule",
    "MutationThroughCalleeRule",
]

#: explain*/fit — the externally-owned-data entry points (XDB003/011's
#: scope, which XDB015/017 extend across call boundaries).
_METHOD_NAMES_EXACT = {"fit"}
_METHOD_PREFIXES = ("explain",)

_INT_DTYPES = {"int64", "int32"}
_NARROW_TARGETS = {"float32", "int64", "int32", "bool"}

_BROADCAST_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)


def _package_functions(project: ProjectContext):
    """``(interproc, ctx, fnode)`` for every analysable function inside
    the ``xaidb`` package (dynamic scopes excluded: nothing provable)."""
    interproc = project.interproc()
    for ctx in project.files:
        if not ctx.in_xaidb_package:
            continue
        for fnode in interproc.graph.functions_of(ctx):
            if calls_dynamic_scope(fnode.node):
                continue
            yield interproc, ctx, fnode


def _is_target_method(name: str) -> bool:
    return name in _METHOD_NAMES_EXACT or name.startswith(_METHOD_PREFIXES)


def _fmt(value: AbstractArray) -> str:
    shape = "(?,...)" if value.shape is None else (
        "(" + ", ".join(value.shape) + ")"
    )
    return f"{value.dtype}{shape}"


def _op_symbol(op: ast.operator) -> str:
    return {
        ast.MatMult: "@", ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
        ast.Div: "/", ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
    }.get(type(op), "?")


def _all_pairs_incompatible(
    lefts: set[AbstractArray],
    rights: set[AbstractArray],
    combine,
) -> tuple[AbstractArray, AbstractArray] | None:
    """The witness pair when *every* left×right combination is provably
    incompatible (⊤ or an unknown shape on either side blocks the
    proof), else ``None``."""
    if not lefts or not rights:
        return None
    witness: tuple[AbstractArray, AbstractArray] | None = None
    for a in sorted(lefts, key=_fmt):
        for b in sorted(rights, key=_fmt):
            if combine(a.shape, b.shape) is not INCOMPATIBLE:
                return None
            if witness is None:
                witness = (a, b)
    return witness


@register
class ShapeMismatchRule(ProjectRule):
    rule_id = "XDB014"
    symbol = "shape-mismatch"
    description = (
        "An ndarray operation's operands have provably incompatible "
        "shapes on every path (broadcast, matmul or concatenate with "
        "conflicting literal dims, with callee return shapes resolved "
        "through function summaries): the call site can only raise."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            yield from self._check_function(interproc, ctx, fnode)

    def _check_function(
        self, interproc: InterprocAnalysis, ctx: FileContext, fnode
    ) -> Iterator[Finding]:
        if not _has_shape_sinks(fnode.node):
            return  # no checkable node: skip the fixpoint entirely
        cfg, problem, in_states = interproc.solution(
            "shape", fnode.qualname
        )
        findings: list[Finding] = []
        seen: set[int] = set()

        def values(expr: ast.AST, state: State) -> set[AbstractArray]:
            return {decode(l) for l in problem.eval_expr(expr, state)}

        def visit(item: ast.AST, state: State) -> None:
            for root in item_exprs(item):
                for node in ast.walk(root):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    witness = self._check_node(node, state, values)
                    if witness is not None:
                        operation, a, b = witness
                        findings.append(
                            ctx.finding(
                                self,
                                node,
                                f"operands of {operation} are provably "
                                f"incompatible on every path: "
                                f"{_fmt(a)} vs {_fmt(b)}",
                            )
                        )

        replay(cfg, problem, in_states, visit)
        yield from findings

    def _check_node(self, node: ast.AST, state: State, values):
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult):
                combine = matmul_shapes
            elif isinstance(node.op, _BROADCAST_OPS):
                combine = broadcast_shapes
            else:
                return None
            witness = _all_pairs_incompatible(
                values(node.left, state), values(node.right, state),
                combine,
            )
            if witness is not None:
                return (f"'{_op_symbol(node.op)}'",) + witness
            return None
        if not isinstance(node, ast.Call):
            return None
        name = _call_name(node)
        if name in ("matmul", "dot") and len(node.args) >= 2:
            witness = _all_pairs_incompatible(
                values(node.args[0], state),
                values(node.args[1], state),
                matmul_shapes,
            )
            if witness is not None:
                return (f"{name}()",) + witness
        if name == "concatenate" and node.args:
            return self._check_concat(node, state, values)
        return None

    def _check_concat(self, node: ast.Call, state: State, values):
        parts = node.args[0]
        if not isinstance(parts, (ast.Tuple, ast.List)):
            return None
        if len(parts.elts) < 2:
            return None
        axis = _concat_axis(node)
        if axis is None:
            return None
        options = [values(p, state) for p in parts.elts]
        if any(not opts for opts in options):
            return None
        combos = [()]
        for opts in options:
            combos = [
                c + (v,) for c in combos for v in sorted(opts, key=_fmt)
            ]
            if len(combos) > 16:
                return None  # too many worlds to prove all of them
        witness = None
        for combo in combos:
            if concat_shapes(
                [v.shape for v in combo], axis
            ) is not INCOMPATIBLE:
                return None
            if witness is None:
                witness = combo
        if witness is None:
            return None
        return ("concatenate()", witness[0], witness[1])


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _has_shape_sinks(fn: ast.AST) -> bool:
    """Whether ``fn`` contains any node XDB014 could flag — the cheap
    syntactic gate that lets the rule skip the shape fixpoint for the
    (many) functions with nothing to check."""
    for node in ast.walk(fn):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _BROADCAST_OPS + (ast.MatMult,)
        ):
            return True
        if isinstance(node, ast.Call) and _call_name(node) in (
            "matmul",
            "dot",
            "concatenate",
        ):
            return True
    return False


def _has_stochastic_sinks(fn: ast.AST) -> bool:
    """Whether ``fn`` contains a ``.normal()``-style stochastic call —
    XDB016's equivalent of :func:`_has_shape_sinks`."""
    return any(
        isinstance(node, ast.Attribute)
        and node.attr in STOCHASTIC_METHODS
        for node in ast.walk(fn)
    )


def _concat_axis(call: ast.Call) -> int | None:
    node = None
    if len(call.args) > 1:
        node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "axis":
            node = keyword.value
    if node is None:
        return 0  # the numpy default
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


class _EventTaint(ValueTaint):
    """Phase-2 taint for XDB015: any expression containing a
    degradation-event node carries that event's label, and plain union
    taint (not the shape domain, whose binop semantics would drop the
    tag) answers "does the degraded value reach a return"."""

    def __init__(self, events: dict[int, str]):
        super().__init__()
        self.events = events

    def eval_expr(self, expr, state):
        labels = super().eval_expr(expr, state)
        if expr is None:
            return labels
        extra = {
            self.events[id(node)]
            for node in ast.walk(expr)
            if id(node) in self.events
        }
        return frozenset(labels | extra) if extra else labels


@register
class DtypeDegradationRule(ProjectRule):
    rule_id = "XDB015"
    symbol = "dtype-degradation"
    description = (
        "A provably-float64 value is narrowed by a float32/int cast, "
        "or provably-integer arrays are true-divided, on a path that "
        "flows into an explain* return value: attribution scores "
        "silently lose the precision their ranking semantics assume."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            parts = fnode.qualname.rsplit(".", 2)
            if len(parts) < 3 or fnode.module != parts[0]:
                continue  # not a method of a top-level class
            _, class_name, method = parts
            if not method.startswith(_METHOD_PREFIXES):
                continue
            yield from self._check_method(
                interproc, ctx, fnode, class_name
            )

    def _check_method(
        self,
        interproc: InterprocAnalysis,
        ctx: FileContext,
        fnode,
        class_name: str,
    ) -> Iterator[Finding]:
        cfg, problem, in_states = interproc.solution(
            "shape", fnode.qualname
        )
        events: dict[int, str] = {}
        details: dict[str, tuple[ast.AST, str]] = {}

        def values(expr: ast.AST, state: State) -> set[AbstractArray]:
            return {decode(l) for l in problem.eval_expr(expr, state)}

        def visit(item: ast.AST, state: State) -> None:
            for root in item_exprs(item):
                for node in ast.walk(root):
                    if id(node) in events:
                        continue
                    found = self._degradation(node, state, values)
                    if found is not None:
                        label = f"deg:{len(details)}"
                        events[id(node)] = label
                        details[label] = (node, found)

        replay(cfg, problem, in_states, visit)
        if not details:
            return

        # phase 2: which degraded values actually reach a return?
        taint = _EventTaint(events)
        taint_in = solve_forward(cfg, taint)
        fired: dict[str, None] = {}

        def visit_return(item: ast.AST, state: State) -> None:
            if isinstance(item, ast.Return) and item.value is not None:
                for label in taint.eval_expr(item.value, state):
                    if label in details:
                        fired.setdefault(label)

        replay(cfg, taint, taint_in, visit_return)
        for label in fired:
            node, what = details[label]
            yield ctx.finding(
                self,
                node,
                f"{class_name}.{fnode.node.name}: {what}, and the "
                f"result flows into the returned attribution; keep "
                f"float64 end-to-end or copy before narrowing",
            )

    def _degradation(
        self, node: ast.AST, state: State, values
    ) -> str | None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            lefts = values(node.left, state)
            rights = values(node.right, state)
            if (
                lefts
                and rights
                and all(v.dtype in _INT_DTYPES for v in lefts | rights)
                and any(
                    v.shape is not None and len(v.shape) >= 1
                    for v in lefts | rights
                )
            ):
                return (
                    "true division of provably integer-dtyped arrays "
                    "(precision was already truncated upstream)"
                )
            return None
        if not isinstance(node, ast.Call):
            return None
        target = None
        operand = None
        name = _call_name(node)
        if (
            name == "astype"
            and isinstance(node.func, ast.Attribute)
            and node.args
        ):
            target = dtype_from_node(node.args[0])
            operand = node.func.value
        elif name in ("float32", "int32", "int64") and node.args:
            target = name
            operand = node.args[0]
        if target not in _NARROW_TARGETS or operand is None:
            return None
        operand_values = values(operand, state)
        if operand_values and all(
            v.dtype == "float64" for v in operand_values
        ):
            return f"provably-float64 value cast to {target}"
        return None


@register
class RngEscapesHelperRule(ProjectRule):
    rule_id = "XDB016"
    symbol = "rng-escapes-helper"
    description = (
        "A stochastic call consumes a np.random.Generator that was "
        "seeded with a literal inside a helper one or more call "
        "boundaries away: the seed never threads through the public "
        "API, so callers cannot reproduce the run (the "
        "interprocedural face of XDB010)."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            yield from self._check_function(interproc, ctx, fnode)

    def _check_function(
        self, interproc: InterprocAnalysis, ctx: FileContext, fnode
    ) -> Iterator[Finding]:
        if not _has_stochastic_sinks(fnode.node):
            return  # no stochastic call: skip the fixpoint entirely
        cfg, problem, in_states = interproc.solution(
            "seed", fnode.qualname
        )
        findings: list[Finding] = []
        seen: set[int] = set()

        def visit(item: ast.AST, state: State) -> None:
            for root in item_exprs(item):
                for node in ast.walk(root):
                    if (
                        not isinstance(node, ast.Call)
                        or not isinstance(node.func, ast.Attribute)
                        or node.func.attr not in STOCHASTIC_METHODS
                        or id(node) in seen
                    ):
                        continue
                    seen.add(id(node))
                    labels = problem.eval_expr(node.func.value, state)
                    depths = [d for d in rng_depths(labels) if d >= 1]
                    if not depths:
                        continue
                    depth = depths[0]
                    levels = "level" if depth == 1 else "levels"
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f".{node.func.attr}() consumes a generator "
                            f"seeded with a literal in a helper "
                            f"{depth} call {levels} away; thread the "
                            f"caller's seed or Generator through the "
                            f"helper instead",
                        )
                    )

        replay(cfg, problem, in_states, visit)
        yield from findings


@register
class MutationThroughCalleeRule(ProjectRule):
    rule_id = "XDB017"
    symbol = "mutation-through-callee"
    description = (
        "An explain*/fit method passes a caller-owned input array to a "
        "helper whose summary mutates it in place, or returns a "
        "helper's view of one: the same purity contract XDB003/XDB011 "
        "enforce directly, one call boundary further away."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            parts = fnode.qualname.rsplit(".", 2)
            if len(parts) < 3 or fnode.module != parts[0]:
                continue
            _, class_name, method = parts
            if not _is_target_method(method):
                continue
            yield from self._check_method(
                interproc, ctx, fnode, class_name
            )

    def _check_method(
        self,
        interproc: InterprocAnalysis,
        ctx: FileContext,
        fnode,
        class_name: str,
    ) -> Iterator[Finding]:
        params = {
            p
            for p in function_params(fnode.node)
            if p not in ("self", "cls")
        }
        if not params:
            return
        cfg, problem, in_states = interproc.solution(
            "alias", fnode.qualname
        )
        findings: list[Finding] = []
        seen: set[tuple[int, str]] = set()
        where = f"{class_name}.{fnode.node.name}"

        def visit(item: ast.AST, state: State) -> None:
            for labels, node, kind, detail in iter_mutations(
                item,
                state,
                problem,
                interproc.graph,
                interproc.summaries,
            ):
                if kind != "callee":  # direct writes are XDB003's
                    continue
                hit = sorted(
                    {strip_via(label) for label in labels} & params
                )
                if not hit or (id(node), detail) in seen:
                    continue
                seen.add((id(node), detail))
                callee, _, callee_param = detail.rpartition(":")
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"{where} passes caller-owned input "
                        f"{', '.join(repr(p) for p in hit)} to "
                        f"{callee}, which mutates its parameter "
                        f"'{callee_param}' in place; pass a copy or "
                        f"make the helper pure",
                    )
                )
            if isinstance(item, ast.Return) and item.value is not None:
                if isinstance(item.value, ast.Name) and item.value.id in (
                    "self",
                    "cls",
                ):
                    return
                escaped = sorted(
                    {
                        strip_via(label)
                        for label in problem.eval_expr(item.value, state)
                        if label.startswith(VIA_PREFIX)
                    }
                    & params
                )
                if escaped and (id(item), "return") not in seen:
                    seen.add((id(item), "return"))
                    findings.append(
                        ctx.finding(
                            self,
                            item,
                            f"{where} returns a helper's view of "
                            f"caller-owned input "
                            f"{', '.join(repr(p) for p in escaped)}; "
                            f"copy at the boundary so caller and "
                            f"explainer never share a buffer",
                        )
                    )

        replay(cfg, problem, in_states, visit)
        yield from findings
