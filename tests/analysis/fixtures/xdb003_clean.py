"""XDB003 clean fixture: explain/fit copy before mutating."""

import numpy as np

__all__ = ["PureExplainer"]


class PureExplainer:
    def explain(self, x: np.ndarray) -> np.ndarray:
        x = x.copy()  # rebinding to a fresh object releases the alias
        x[0] = 0.0
        x += 1.0
        return x

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PureExplainer":
        scaled = np.log1p(X)
        self.X_ = scaled
        self.y_ = np.asarray(y)
        return self
