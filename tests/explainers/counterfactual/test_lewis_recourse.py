import numpy as np
import pytest

from xaidb.exceptions import InfeasibleError, ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import LewisExplainer, LinearRecourse
from xaidb.models import LogisticRegression


@pytest.fixture(scope="module")
def loans_model(loans):
    return LogisticRegression(l2=1e-2).fit(loans.dataset.X, loans.dataset.y)


@pytest.fixture(scope="module")
def lewis(loans, loans_model):
    return LewisExplainer(
        predict_positive_proba(loans_model),
        loans.scm,
        [spec.name for spec in loans.dataset.features],
        n_units=800,
    )


class TestLewisScores:
    def test_scores_in_unit_interval(self, lewis):
        s = lewis.scores("credit_score", 1.5, -1.5, random_state=0)
        for value in (s.necessity, s.sufficiency, s.pns):
            assert 0.0 <= value <= 1.0

    def test_strong_cause_scores_high(self, lewis):
        s = lewis.scores("credit_score", 1.5, -1.5, random_state=0)
        assert s.necessity > 0.5
        assert s.sufficiency > 0.5
        assert s.pns > 0.4

    def test_stronger_feature_scores_higher_pns(self, lewis):
        strong = lewis.scores("credit_score", 1.5, -1.5, random_state=0)
        weak = lewis.scores("employment_years", 1.5, -1.5, random_state=0)
        assert strong.pns > weak.pns

    def test_deterministic_given_seed(self, lewis):
        a = lewis.scores("income", 1.0, -1.0, random_state=5)
        b = lewis.scores("income", 1.0, -1.0, random_state=5)
        assert a.necessity == b.necessity
        assert a.pns == b.pns

    def test_unknown_feature_rejected(self, lewis):
        with pytest.raises(ValidationError):
            lewis.scores("zzz", 1.0, 0.0)

    def test_zero_tolerance_rejected(self, lewis):
        with pytest.raises(ValidationError):
            lewis.scores("income", 1.0, 1.0)

    def test_explanation_table(self, lewis):
        table = lewis.explanation_table(
            [("credit_score", 1.5, -1.5), ("income", 1.5, -1.5)],
            random_state=1,
        )
        assert len(table) == 2
        assert table[0].feature == "credit_score"


class TestLewisRecourse:
    def test_recourse_ranks_flipping_interventions_first(self, loans, lewis):
        # a denied unit: strongly negative features
        observation = {
            "income": -1.0,
            "credit_score": -2.0,
            "debt_to_income": 1.0,
            "employment_years": -1.0,
            "approved": 0.0,
        }
        candidates = [
            {"credit_score": 2.0},
            {"employment_years": -2.0},  # makes things worse
        ]
        ranked = lewis.recourse(observation, candidates)
        assert ranked[0][0] == {"credit_score": 2.0}
        assert ranked[0][1] == 1.0
        assert ranked[-1][1] == 0.0

    def test_recourse_requires_full_observation(self, lewis):
        with pytest.raises(ValidationError):
            lewis.recourse({"income": 0.0}, [{"credit_score": 1.0}])

    def test_recourse_requires_candidates(self, lewis, loans):
        observation = {node: 0.0 for node in loans.scm.graph.nodes}
        with pytest.raises(ValidationError):
            lewis.recourse(observation, [])


class TestLinearRecourse:
    @pytest.fixture(scope="class")
    def recourse(self, credit, credit_logistic):
        return LinearRecourse(credit_logistic, credit.dataset)

    @pytest.fixture(scope="class")
    def credit_logistic(self, credit):
        return LogisticRegression(l2=1e-2).fit(credit.dataset.X, credit.dataset.y)

    def test_flips_denied_instance(self, credit, credit_logistic, recourse):
        scores = credit_logistic.predict_proba(credit.dataset.X)[:, 1]
        denied = credit.dataset.X[int(np.argmin(scores))]
        action = recourse.find(denied)
        assert action.flipped
        assert action.new_margin >= 0

    def test_no_action_needed_for_approved(self, credit, credit_logistic, recourse):
        scores = credit_logistic.predict_proba(credit.dataset.X)[:, 1]
        approved = credit.dataset.X[int(np.argmax(scores))]
        action = recourse.find(approved)
        assert action.changes == {}
        assert action.cost == 0.0

    def test_immutables_untouched(self, credit, credit_logistic, recourse):
        scores = credit_logistic.predict_proba(credit.dataset.X)[:, 1]
        denied = credit.dataset.X[int(np.argmin(scores))]
        action = recourse.find(denied)
        assert "age" not in action.changes

    def test_monotone_directions_respected(self, credit, credit_logistic, recourse):
        scores = credit_logistic.predict_proba(credit.dataset.X)[:, 1]
        denied = credit.dataset.X[int(np.argmin(scores))]
        action = recourse.find(denied)
        if "savings" in action.deltas:
            assert action.deltas["savings"] >= 0

    def test_greedy_cost_optimality_on_synthetic(self, credit):
        """With one dominant efficient feature, the optimal action uses it
        alone; the greedy fill must find exactly that."""
        from xaidb.data import Dataset, FeatureSpec

        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        w = np.asarray([4.0, 0.5])
        y = (X @ w + rng.normal(scale=0.1, size=200) > 0).astype(float)
        ds = Dataset(X=X, y=y, features=[FeatureSpec("big"), FeatureSpec("small")])
        model = LogisticRegression(l2=1e-2).fit(X, y)
        recourse = LinearRecourse(model, ds, costs=np.asarray([1.0, 1.0]))
        denied = X[np.argmin(model.predict_proba(X)[:, 1])]
        action = recourse.find(denied)
        assert action.flipped
        assert list(action.changes) == ["big"]

    def test_infeasible_when_everything_immutable(self, credit):
        from xaidb.data import Dataset, FeatureSpec

        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(float)
        ds = Dataset(
            X=X,
            y=y,
            features=[
                FeatureSpec("a", actionable=False),
                FeatureSpec("b", actionable=False),
            ],
        )
        model = LogisticRegression(l2=1e-2).fit(X, y)
        recourse = LinearRecourse(model, ds)
        denied = X[np.argmin(model.predict_proba(X)[:, 1])]
        with pytest.raises(InfeasibleError):
            recourse.find(denied)

    def test_rejects_nonpositive_costs(self, credit, credit_logistic):
        with pytest.raises(ValidationError):
            LinearRecourse(
                credit_logistic, credit.dataset, costs=np.zeros(6)
            )
