"""Dirty fixture for XDB030: coroutines built as bare expression
statements — one local ``async def``, one asyncio builtin — so their
bodies never run."""

import asyncio

__all__ = ["handle"]


async def _warm_cache(server):
    await asyncio.sleep(0)
    return server


async def handle(server):
    _warm_cache(server)  # finding 1: coroutine created and discarded
    asyncio.sleep(0.01)  # finding 2: the sleep never happens
    return await _warm_cache(server)
