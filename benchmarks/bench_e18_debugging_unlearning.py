"""E18 — Complaint-driven debugging + incremental deletion
(Wu et al. 2020 "Rain" recall shape; Wu, Tannen & Davidson 2020 "PrIU"
speedup table; Schelter et al. 2021 "HedgeCut" unlearning latency).

Reproduced shapes:

- complaint-driven influence ranking recovers planted corrupted training
  rows far above the random baseline (recall@k curve);
- PrIU-style incremental deletion matches full retraining to numerical
  precision for linear models (exact) and to ~1e-3 for logistic (1 warm
  Newton step), at a large speedup;
- HedgeCut-style unlearning deletes a point orders of magnitude faster
  than retraining the forest.
"""

import time

import numpy as np

from benchmarks._tables import print_table


def _best_of(n, setup, timed):
    """Minimum wall-clock of ``timed(state)`` over ``n`` fresh ``setup()``
    states — standard noise suppression for sub-millisecond timing
    assertions (setup cost is excluded)."""
    best = float("inf")
    for __ in range(n):
        state = setup()
        start = time.perf_counter()
        timed(state)
        best = min(best, time.perf_counter() - start)
    return best
from xaidb.data import make_income
from xaidb.db import Complaint, ComplaintDebugger
from xaidb.incremental import (
    IncrementalLinearRegression,
    IncrementalLogisticRegression,
    UnlearnableExtraTrees,
)
from xaidb.models import LinearRegression, LogisticRegression

K_VALUES = [20, 40, 80, 160]
N_CORRUPT = 40


def compute_rows():
    workload = make_income(700, random_state=0)
    X, y = workload.dataset.X.copy(), workload.dataset.y.copy()
    rng = np.random.default_rng(1)
    # xailint: disable=XDB006 (labels are exact 0.0/1.0 floats)
    negatives = np.flatnonzero(y == 0.0)
    corrupted = rng.choice(negatives, size=N_CORRUPT, replace=False)
    y[corrupted] = 1.0

    # --- complaint-driven debugging ---
    model = LogisticRegression(l2=1e-2).fit(X, y)
    debugger = ComplaintDebugger(model, X, y, X)
    complaint = Complaint(
        query_rows=np.arange(len(X)), direction=-1,
        description="positive rate too high",
    )
    ranking = debugger.rank_training_points(complaint)
    recall_rows = []
    for k in K_VALUES:
        influence_recall = debugger.recall_at_k(ranking, corrupted, k)
        random_recall = float(
            np.mean(
                [
                    debugger.recall_at_k(
                        np.random.default_rng(s).permutation(len(y)),
                        corrupted,
                        k,
                    )
                    for s in range(10)
                ]
            )
        )
        recall_rows.append((k, influence_recall, random_recall))

    # --- incremental deletion vs retrain ---
    deletion_rows = []
    blamed = ranking[:N_CORRUPT].tolist()

    linear_y = X @ rng.normal(size=X.shape[1]) + 0.1 * rng.normal(size=len(y))
    keep = np.setdiff1d(np.arange(len(y)), blamed)
    linear_incremental_s = _best_of(
        3,
        lambda: IncrementalLinearRegression().fit(X, linear_y),
        lambda inc: inc.delete_rows(blamed),
    )
    linear_retrain_s = _best_of(
        3,
        lambda: None,
        lambda __: LinearRegression().fit(X[keep], linear_y[keep]),
    )
    incremental_linear = IncrementalLinearRegression().fit(X, linear_y)
    incremental_linear.delete_rows(blamed)
    linear_error = float(
        np.abs(
            incremental_linear.coef_
            - incremental_linear.retrained_reference().coef_
        ).max()
    )
    deletion_rows.append(
        ("linear (PrIU exact)", linear_incremental_s, linear_retrain_s,
         linear_retrain_s / max(linear_incremental_s, 1e-9), linear_error)
    )

    logistic_incremental_s = _best_of(
        3,
        lambda: IncrementalLogisticRegression(l2=1e-2, refine_steps=2).fit(X, y),
        lambda inc: inc.delete_rows(blamed),
    )
    logistic_retrain_s = _best_of(
        3,
        lambda: None,
        lambda __: LogisticRegression(l2=1e-2).fit(X[keep], y[keep]),
    )
    incremental_logistic = IncrementalLogisticRegression(
        l2=1e-2, refine_steps=2
    ).fit(X, y)
    incremental_logistic.delete_rows(blamed)
    logistic_error = float(
        np.abs(
            incremental_logistic.theta_
            - incremental_logistic.retrained_reference().theta_
        ).max()
    )
    deletion_rows.append(
        ("logistic (2 warm Newton)", logistic_incremental_s,
         logistic_retrain_s,
         logistic_retrain_s / max(logistic_incremental_s, 1e-9),
         logistic_error)
    )

    # --- unlearning latency ---
    forest = UnlearnableExtraTrees(
        n_estimators=8, max_depth=6, random_state=0
    ).fit(X[:300], y[:300])
    start = time.perf_counter()
    regrows = sum(forest.forget(i) for i in range(10))
    forget_s = (time.perf_counter() - start) / 10
    forest_retrain_s = _best_of(
        2,
        lambda: None,
        lambda __: UnlearnableExtraTrees(
            n_estimators=8, max_depth=6, random_state=0
        ).fit(X[1:300], y[1:300]),
    )
    deletion_rows.append(
        ("extra trees (HedgeCut forget)", forget_s, forest_retrain_s,
         forest_retrain_s / max(forget_s, 1e-9), float(regrows))
    )
    return recall_rows, deletion_rows


def test_e18_debugging_unlearning(benchmark):
    recall_rows, deletion_rows = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E18a: complaint-driven corrupted-row recall@k (paper: influence "
        "ranking >> random)",
        ["k", "influence recall", "random recall"],
        recall_rows,
    )
    print_table(
        "E18b: deletion latency — incremental vs retrain (last column: "
        "max parameter error, or regrow count for trees)",
        ["model", "incremental s", "retrain s", "speedup", "error / regrows"],
        deletion_rows,
    )
    # influence beats random at every k
    for __, influence_recall, random_recall in recall_rows:
        assert influence_recall > random_recall
    by_name = {row[0]: row for row in deletion_rows}
    # PrIU linear is numerically exact
    assert by_name["linear (PrIU exact)"][4] < 1e-8
    # incremental updates are faster than retraining
    assert by_name["linear (PrIU exact)"][3] > 1.0
    assert by_name["extra trees (HedgeCut forget)"][3] > 1.0
    # warm-started logistic is close to the retrain optimum
    assert by_name["logistic (2 warm Newton)"][4] < 1e-2
