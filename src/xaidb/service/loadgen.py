"""Closed-loop load generator for the explanation server.

*Closed-loop* means each simulated client keeps exactly one request in
flight: it submits, awaits the response (or a typed rejection), then
immediately submits the next.  Offered load therefore rises with the
number of clients rather than with an open-loop arrival rate — the
standard way to trace an achieved-throughput vs. latency curve without
coordinated-omission artefacts.  Benchmark A12
(``benchmarks/bench_a12_serving.py``) sweeps the client count over a
mixed LIME/KernelSHAP/Anchors workload and persists the trajectory to
``benchmarks/BENCH_serving.json``.

Every request is deterministically seeded from ``(base_seed, client,
request index)``, so a load-generator run is replayable and each
response remains bitwise comparable to the serial path.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.service.server import ExplanationServer
from xaidb.service.types import (
    DeadlineExceededError,
    ExplainRequest,
    LoadShedError,
    ServiceError,
)

__all__ = ["WorkloadItem", "LoadResult", "run_closed_loop"]


@dataclass
class WorkloadItem:
    """One (model, explainer, config) workload plus its instance pool.

    Clients walk the workload mix round-robin and the instance pool
    cyclically, so a run covers every combination deterministically.
    """

    model: str
    explainer: str
    instances: np.ndarray
    config: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.instances = np.asarray(self.instances, dtype=float)
        if self.instances.ndim != 2 or self.instances.shape[0] < 1:
            raise ValidationError(
                "instances must be a non-empty (n, d) matrix"
            )


@dataclass
class LoadResult:
    """Outcome of one closed-loop run at a fixed client count."""

    n_clients: int
    n_requests: int
    n_completed: int
    n_shed: int
    n_deadline_expired: int
    n_failed: int
    duration_s: float

    @property
    def offered_rps(self) -> float:
        """Requests the clients pushed per second (completions plus
        rejections — the closed loop's actual pressure)."""
        return self.n_requests / self.duration_s if self.duration_s else 0.0

    @property
    def achieved_rps(self) -> float:
        """Successfully answered requests per second."""
        return (
            self.n_completed / self.duration_s if self.duration_s else 0.0
        )


async def _client(
    server: ExplanationServer,
    workload: list[WorkloadItem],
    client_index: int,
    n_requests: int,
    deadline_s: float | None,
    base_seed: int,
    result: LoadResult,
) -> None:
    for r in range(n_requests):
        # pairs of clients walk the mix in lockstep, so concurrent
        # same-key submissions (coalescing) actually occur while
        # different pairs still exercise key diversity
        # xailint: disable=XDB023 (run() validates a non-empty workload before spawning clients)
        item = workload[(client_index // 2 + r) % len(workload)]
        instance = item.instances[
            (client_index * n_requests + r) % item.instances.shape[0]
        ]
        request = ExplainRequest(
            model=item.model,
            explainer=item.explainer,
            instance=instance,
            config=item.config,
            random_state=(
                base_seed + 100_003 * client_index + r
            ) % (2**31 - 1),
            deadline_s=deadline_s,
        )
        result.n_requests += 1
        try:
            await server.submit(request)
        except LoadShedError:
            result.n_shed += 1
        except DeadlineExceededError:
            result.n_deadline_expired += 1
        except ServiceError:
            result.n_failed += 1
        else:
            result.n_completed += 1


async def run_closed_loop(
    server: ExplanationServer,
    workload: list[WorkloadItem],
    *,
    n_clients: int,
    n_requests_per_client: int,
    deadline_s: float | None = None,
    base_seed: int = 0,
) -> LoadResult:
    """Drive ``n_clients`` closed-loop clients against a started server.

    The server's own :class:`~xaidb.service.stats.ServiceStats` carries
    the latency percentiles and batch histogram for the run; the
    returned :class:`LoadResult` adds the client-side view (offered vs.
    achieved throughput, rejection counts).
    """
    if not workload:
        raise ValidationError("workload must name at least one item")
    if n_clients < 1 or n_requests_per_client < 1:
        raise ValidationError(
            "n_clients and n_requests_per_client must be >= 1"
        )
    result = LoadResult(
        n_clients=n_clients,
        n_requests=0,
        n_completed=0,
        n_shed=0,
        n_deadline_expired=0,
        n_failed=0,
        duration_s=0.0,
    )
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client(
                server,
                workload,
                client,
                n_requests_per_client,
                deadline_s,
                base_seed,
                result,
            )
            for client in range(n_clients)
        )
    )
    result.duration_s = time.perf_counter() - started
    return result
