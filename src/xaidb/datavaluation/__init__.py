"""Training-data-based explanations (tutorial §2.3): data valuation
(leave-one-out, Data Shapley, KNN-Shapley, distributional Shapley) and
influence functions (first/second order for GLMs, LeafRefit for GBDTs)."""

from xaidb.datavaluation.data_shapley import DataShapley, tmc_shapley_values
from xaidb.datavaluation.distributional import distributional_shapley_values
from xaidb.datavaluation.influence import InfluenceFunctions
from xaidb.datavaluation.knn_shapley import knn_shapley_values
from xaidb.datavaluation.loo import leave_one_out_values
from xaidb.datavaluation.tree_influence import LeafRefitInfluence
from xaidb.datavaluation.utility import UtilityFunction

__all__ = [
    "UtilityFunction",
    "leave_one_out_values",
    "DataShapley",
    "tmc_shapley_values",
    "knn_shapley_values",
    "distributional_shapley_values",
    "InfluenceFunctions",
    "LeafRefitInfluence",
]
