"""Data-preparation operators with row-level provenance.

Each operator consumes ``(X, y)`` plus the current row lineage (which
original row each current row descends from) and returns transformed
data, updated lineage, and a record of which rows/cells it touched.  That
record is what lets :mod:`xaidb.pipelines.debugging` hold *stages* — not
just rows — accountable for downstream model behaviour, the tutorial's
"monitor the flow of training data through different stages using
provenance" direction.

``LabelFlipCorruption`` is a fault-injection operator used by tests and
E18 to plant a known-bad stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from xaidb.exceptions import ValidationError

__all__ = [
    "StageRecord",
    "Operator",
    "ImputeMean",
    "ScaleStandard",
    "FilterRows",
    "DropOutliers",
    "LabelFlipCorruption",
]


@dataclass
class StageRecord:
    """What one operator did during a pipeline run."""

    name: str
    n_rows_in: int
    n_rows_out: int
    touched_rows: list[int] = field(default_factory=list)  # original row ids
    dropped_rows: list[int] = field(default_factory=list)  # original row ids
    details: dict[str, Any] = field(default_factory=dict)


class Operator:
    """Base pipeline operator.

    Subclasses implement :meth:`apply`, receiving the data and the lineage
    array ``lineage[i] = original row id of current row i`` and returning
    ``(X, y, lineage, record)``.  Operators must be pure with respect to
    their inputs (copy before mutating).
    """

    name = "operator"

    def apply(
        self,
        X: np.ndarray,
        y: np.ndarray,
        lineage: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, StageRecord]:
        raise NotImplementedError


class ImputeMean(Operator):
    """Replace NaN cells with the column mean of the observed values."""

    name = "impute_mean"

    def apply(self, X, y, lineage, rng):
        X = X.copy()
        touched: set[int] = set()
        for column in range(X.shape[1]):
            missing = np.isnan(X[:, column])
            if not missing.any():
                continue
            observed = X[~missing, column]
            fill = float(observed.mean()) if observed.size else 0.0
            X[missing, column] = fill
            touched.update(lineage[missing].tolist())
        record = StageRecord(
            name=self.name,
            n_rows_in=len(y),
            n_rows_out=len(y),
            touched_rows=sorted(touched),
        )
        return X, y.copy(), lineage.copy(), record


class ScaleStandard(Operator):
    """Standardise every column to zero mean / unit variance."""

    name = "scale_standard"

    def apply(self, X, y, lineage, rng):
        X = X.copy()
        means = X.mean(axis=0)
        scales = np.where(X.std(axis=0) > 0, X.std(axis=0), 1.0)
        # xailint: disable=XDB023 (np.where replaces non-positive scales with 1.0)
        X = (X - means) / scales
        record = StageRecord(
            name=self.name,
            n_rows_in=len(y),
            n_rows_out=len(y),
            touched_rows=sorted(set(lineage.tolist())),
            details={"means": means.tolist(), "scales": scales.tolist()},
        )
        return X, y.copy(), lineage.copy(), record


class FilterRows(Operator):
    """Keep rows satisfying a predicate over the feature vector."""

    name = "filter_rows"

    def __init__(self, predicate, *, description: str = "") -> None:
        self.predicate = predicate
        self.description = description

    def apply(self, X, y, lineage, rng):
        keep = np.asarray([bool(self.predicate(row)) for row in X])
        record = StageRecord(
            name=self.name,
            n_rows_in=len(y),
            n_rows_out=int(keep.sum()),
            dropped_rows=sorted(lineage[~keep].tolist()),
            details={"description": self.description},
        )
        if not keep.any():
            raise ValidationError(f"{self.name} dropped every row")
        return X[keep].copy(), y[keep].copy(), lineage[keep].copy(), record


class DropOutliers(Operator):
    """Drop rows whose standardised norm exceeds ``z_threshold``."""

    name = "drop_outliers"

    def __init__(self, *, z_threshold: float = 4.0) -> None:
        if z_threshold <= 0:
            raise ValidationError("z_threshold must be positive")
        self.z_threshold = z_threshold

    def apply(self, X, y, lineage, rng):
        # NaN-aware so the operator composes with an ablated imputation
        # stage: missing cells are simply not evidence of outlierness
        stds = np.nanstd(X, axis=0)
        scales = np.where(stds > 0, stds, 1.0)
        standardised = (X - np.nanmean(X, axis=0)) / scales
        magnitudes = np.where(np.isnan(standardised), 0.0, np.abs(standardised))
        keep = np.max(magnitudes, axis=1) <= self.z_threshold
        record = StageRecord(
            name=self.name,
            n_rows_in=len(y),
            n_rows_out=int(keep.sum()),
            dropped_rows=sorted(lineage[~keep].tolist()),
            details={"z_threshold": self.z_threshold},
        )
        if not keep.any():
            raise ValidationError(f"{self.name} dropped every row")
        return X[keep].copy(), y[keep].copy(), lineage[keep].copy(), record


class LabelFlipCorruption(Operator):
    """Fault injection: flip a fraction of binary labels.

    ``direction`` controls the corruption pattern: ``"both"`` flips
    uniformly chosen rows (symmetric noise), ``"up"`` flips only 0 -> 1
    (inflating the positive rate — the pattern complaint-driven debugging
    stories need), ``"down"`` only 1 -> 0.  Deterministic given the
    pipeline seed; the flipped original row ids are recorded, giving
    debugging experiments exact ground truth.
    """

    name = "label_flip_corruption"

    def __init__(self, *, fraction: float = 0.1, direction: str = "both") -> None:
        if not 0.0 < fraction < 1.0:
            raise ValidationError("fraction must be in (0, 1)")
        if direction not in ("both", "up", "down"):
            raise ValidationError("direction must be 'both', 'up' or 'down'")
        self.fraction = fraction
        self.direction = direction

    def apply(self, X, y, lineage, rng):
        y = y.copy()
        if self.direction == "up":
            # xailint: disable=XDB006 (labels are exact 0.0/1.0 floats)
            pool = np.flatnonzero(y == 0.0)
        elif self.direction == "down":
            # xailint: disable=XDB006 (labels are exact 0.0/1.0 floats)
            pool = np.flatnonzero(y == 1.0)
        else:
            pool = np.arange(len(y))
        n_flip = max(1, min(len(pool), int(round(self.fraction * len(y)))))
        if pool.size == 0:
            raise ValidationError(
                f"no rows available to flip in direction {self.direction!r}"
            )
        flipped = rng.choice(pool, size=n_flip, replace=False)
        y[flipped] = 1.0 - y[flipped]
        record = StageRecord(
            name=self.name,
            n_rows_in=len(y),
            n_rows_out=len(y),
            touched_rows=sorted(lineage[flipped].tolist()),
            details={"fraction": self.fraction, "direction": self.direction},
        )
        return X.copy(), y, lineage.copy(), record
