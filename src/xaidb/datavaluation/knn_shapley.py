"""Exact, efficient KNN-Shapley (Jia et al. 2019).

For the k-NN utility (fraction of validation points whose k nearest
training neighbours vote for the right label), the data-Shapley value has
a closed form computable in O(n log n) per validation point: sort
training points by distance, then apply the tail recursion

    s_(n)  = 1[y_(n) = y_val] / n
    s_(i)  = s_(i+1) + (1[y_(i) = y] - 1[y_(i+1) = y]) / K * min(K, i) / i

(1-indexed ranks, nearest first).  This is the tutorial's "practical
Shapley value estimation algorithm by making assumptions on the model" —
the assumption being the k-NN surrogate utility — and the fast baseline
experiment E15 compares against TMC retraining.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.validation import (
    check_array,
    check_matching_lengths,
    check_positive,
)

__all__ = ["knn_shapley_values", "knn_utility"]


def knn_shapley_values(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_valid: np.ndarray,
    y_valid: np.ndarray,
    *,
    k: int = 5,
) -> np.ndarray:
    """Exact Shapley values of training points under the k-NN utility,
    averaged over the validation points."""
    X_train = check_array(X_train, name="X_train", ndim=2)
    y_train = check_array(y_train, name="y_train", ndim=1)
    X_valid = check_array(X_valid, name="X_valid", ndim=2)
    y_valid = check_array(y_valid, name="y_valid", ndim=1)
    check_matching_lengths(("X_train", X_train), ("y_train", y_train))
    check_matching_lengths(("X_valid", X_valid), ("y_valid", y_valid))
    n = len(y_train)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")

    distances = pairwise_distances(X_valid, X_train)
    values = np.zeros(n)
    for row, y_target in enumerate(y_valid):
        order = np.argsort(distances[row], kind="mergesort")
        match = (y_train[order] == y_target).astype(float)
        s = np.empty(n)
        s[n - 1] = match[n - 1] / n
        for i in range(n - 2, -1, -1):
            rank = i + 1  # 1-indexed rank of the i-th nearest point
            s[i] = s[i + 1] + (match[i] - match[i + 1]) / k * min(k, rank) / rank
        values[order] += s
    return values / len(y_valid)


def knn_utility(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_valid: np.ndarray,
    y_valid: np.ndarray,
    *,
    k: int = 5,
) -> float:
    """The k-NN utility the closed form is exact for: mean over validation
    points of (number of correct labels among the k nearest) / k.  Exists
    so tests can verify the efficiency axiom: ``sum(values) = v(D) - v(∅)``
    with ``v(∅)`` the expected utility of random labels... precisely 0
    under this utility's convention of scoring an empty neighbour set 0."""
    X_train = check_array(X_train, name="X_train", ndim=2)
    y_valid = check_array(y_valid, name="y_valid", ndim=1)
    check_positive(k, name="k")
    distances = pairwise_distances(X_valid, X_train)
    k_effective = min(k, X_train.shape[0])
    total = 0.0
    for row, y_target in enumerate(y_valid):
        order = np.argsort(distances[row], kind="mergesort")[:k_effective]
        total += float(np.sum(y_train[order] == y_target)) / k
    return total / len(y_valid)
