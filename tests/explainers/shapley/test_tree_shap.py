from itertools import combinations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley import (
    TreeShapExplainer,
    interventional_tree_shap,
    tree_expected_value,
)
from xaidb.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostedClassifier,
    RandomForestClassifier,
    RandomForestRegressor,
)
from xaidb.utils.combinatorics import shapley_subset_weight


def brute_force_path_dependent(tree, leaf_values, x, d):
    """Exact Shapley over the EXPVALUE conditional-expectation game."""
    phi = np.zeros(d)
    for i in range(d):
        others = [p for p in range(d) if p != i]
        for size in range(d):
            weight = shapley_subset_weight(size, d)
            for subset in combinations(others, size):
                gain = tree_expected_value(
                    tree, leaf_values, x, subset + (i,)
                ) - tree_expected_value(tree, leaf_values, x, subset)
                phi[i] += weight * gain
    return phi


@pytest.fixture(scope="module")
def fitted_tree(regression_data):
    X, y, __ = regression_data
    return DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y), X


class TestPathDependentTreeShap:
    def test_matches_brute_force(self, fitted_tree):
        model, X = fitted_tree
        explainer = TreeShapExplainer(model)
        leaf_values = model.tree_.value[:, 0]
        for row in range(5):
            fast = explainer.explain(X[row]).values
            slow = brute_force_path_dependent(
                model.tree_, leaf_values, X[row], X.shape[1]
            )
            assert np.allclose(fast, slow, atol=1e-10)

    def test_local_accuracy(self, fitted_tree):
        model, X = fitted_tree
        explainer = TreeShapExplainer(model)
        att = explainer.explain(X[7])
        assert att.additive_check(atol=1e-10)

    def test_base_value_is_cover_weighted_mean(self, fitted_tree, regression_data):
        model, X = fitted_tree
        __, y, __ = regression_data
        explainer = TreeShapExplainer(model)
        # cover-weighted mean of leaves == training-set mean prediction
        assert explainer.expected_value() == pytest.approx(
            float(model.predict(X).mean()), abs=1e-8
        )

    def test_unused_feature_gets_zero(self):
        X = np.column_stack([np.linspace(0, 1, 50), np.zeros(50)])
        y = (X[:, 0] > 0.5).astype(float) * 2.0
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        att = TreeShapExplainer(model).explain(np.asarray([0.8, 0.0]))
        assert att.values[1] == pytest.approx(0.0)


class TestTreeShapOnEnsembles:
    def test_classifier_tree_probability_output(self, income):
        model = DecisionTreeClassifier(max_depth=4).fit(
            income.dataset.X, income.dataset.y
        )
        explainer = TreeShapExplainer(
            model, feature_names=income.dataset.feature_names
        )
        att = explainer.explain(income.dataset.X[0])
        assert att.additive_check(atol=1e-10)
        assert att.prediction == pytest.approx(
            float(model.predict_proba(income.dataset.X[:1])[0, 1])
        )

    def test_random_forest_additivity(self, income, income_forest):
        explainer = TreeShapExplainer(income_forest)
        att = explainer.explain(income.dataset.X[3])
        assert att.prediction == pytest.approx(
            float(income_forest.predict_proba(income.dataset.X[3:4])[0, 1]),
            abs=1e-10,
        )
        assert att.additive_check(atol=1e-8)

    def test_forest_regressor(self, regression_data):
        X, y, __ = regression_data
        model = RandomForestRegressor(n_estimators=5, max_depth=3, random_state=0).fit(X, y)
        att = TreeShapExplainer(model).explain(X[0])
        assert att.prediction == pytest.approx(float(model.predict(X[:1])[0]))
        assert att.additive_check(atol=1e-8)

    def test_gbm_margin_additivity(self, income, income_gbm):
        explainer = TreeShapExplainer(income_gbm)
        att = explainer.explain(income.dataset.X[11])
        margin = float(income_gbm.decision_function(income.dataset.X[11:12])[0])
        assert att.prediction == pytest.approx(margin, abs=1e-10)
        assert att.additive_check(atol=1e-8)
        assert att.metadata["output"] == "margin"

    def test_unsupported_model(self, income_logistic):
        with pytest.raises(ValidationError):
            TreeShapExplainer(income_logistic)


class TestInterventionalTreeShap:
    def test_efficiency_per_background(self, fitted_tree):
        model, X = fitted_tree
        leaf_values = model.tree_.value[:, 0]
        x = X[0]
        background = X[10:15]
        phi = interventional_tree_shap(model.tree_, leaf_values, x, background)
        f_x = leaf_values[model.tree_.apply_row(x)]
        f_bg = np.mean([leaf_values[model.tree_.apply_row(z)] for z in background])
        assert phi.sum() == pytest.approx(f_x - f_bg, abs=1e-10)

    def test_matches_exact_marginal_game(self, fitted_tree):
        """Interventional TreeSHAP must equal exact Shapley on the
        marginal-imputation game with the same background."""
        from xaidb.explainers.shapley import ExactShapleyExplainer

        model, X = fitted_tree
        background = X[20:28]
        x = X[1]
        fast = TreeShapExplainer(model).explain_interventional(x, background)
        exact = ExactShapleyExplainer(
            lambda Z: model.predict(Z), background
        ).explain(x)
        assert np.allclose(fast.values, exact.values, atol=1e-8)

    def test_same_leaf_background_gives_zero(self, fitted_tree):
        model, X = fitted_tree
        x = X[0]
        att = TreeShapExplainer(model).explain_interventional(x, x[None, :])
        assert np.allclose(att.values, 0.0)


class TestExpvalue:
    def test_full_coalition_is_prediction(self, fitted_tree):
        model, X = fitted_tree
        leaf_values = model.tree_.value[:, 0]
        x = X[3]
        value = tree_expected_value(
            model.tree_, leaf_values, x, range(X.shape[1])
        )
        assert value == pytest.approx(float(model.predict(x[None, :])[0]))

    def test_empty_coalition_is_weighted_mean(self, fitted_tree):
        model, X = fitted_tree
        tree = model.tree_
        leaf_values = tree.value[:, 0]
        value = tree_expected_value(tree, leaf_values, X[0], ())
        leaves = tree.leaves()
        expected = np.average(
            leaf_values[leaves], weights=tree.n_node_samples[leaves]
        )
        assert value == pytest.approx(expected)
