import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import (
    accuracy,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_squared_error,
    precision,
    r2_score,
    recall,
    roc_auc,
)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)

    def test_confusion_matrix_layout(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert m[0, 0] == 1  # TN
        assert m[0, 1] == 1  # FP
        assert m[1, 0] == 0  # FN
        assert m[1, 1] == 2  # TP

    def test_confusion_matrix_rejects_nonbinary(self):
        with pytest.raises(ValidationError):
            confusion_matrix([0, 2], [0, 1])

    def test_precision_recall_f1(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_precision_zero_when_no_positive_predictions(self):
        assert precision([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_log_loss_perfect_and_bad(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-10
        assert log_loss([1, 0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_log_loss_clipping(self):
        # probabilities of exactly 0/1 on the wrong side must not be inf
        assert np.isfinite(log_loss([1], [0.0]))


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000).astype(float)
        scores = rng.uniform(size=2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValidationError):
            roc_auc([1, 1], [0.2, 0.8])


class TestRegressionMetrics:
    def test_mse(self):
        assert mean_squared_error([1, 2], [1, 4]) == pytest.approx(2.0)

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.asarray([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1, 0], [1])
