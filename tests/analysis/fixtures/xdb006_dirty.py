"""XDB006 dirty fixture: exact equality against float literals."""

__all__ = ["compare"]


def compare(x: float, y: float) -> bool:
    if x == 0.1:
        return True
    return y != -2.5
