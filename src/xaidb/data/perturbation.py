"""Neighborhood/perturbation samplers used by LIME and Anchors.

LIME perturbs an instance by (a) for numeric features, sampling from a
normal distribution fitted to the training column and (b) for categorical
features, sampling codes from their empirical frequencies; each perturbed
feature that *matches* the instance contributes a ``1`` to the binary
interpretable representation.  The tutorial (§2.1.1) stresses that this
sampling "can be unreliable" — the samplers here expose exactly the knobs
(kernel width, number of samples) that experiments E1/E2 sweep.

Anchors needs a *conditional* sampler: draw realistic instances in which a
fixed set of feature predicates holds while the remaining features vary.
:class:`ConditionalSampler` implements the standard approach of resampling
unfixed features from random training rows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_positive

__all__ = ["LimeTabularSampler", "ConditionalSampler"]


class LimeTabularSampler:
    """Sample LIME-style perturbations around a tabular instance.

    Parameters
    ----------
    dataset:
        Training data used to estimate per-column statistics (mean/std for
        numeric columns, category frequencies for categorical columns).
    numeric_match_tolerance:
        A perturbed numeric value counts as "matching" the instance (binary
        feature on) when it lies within this many column standard
        deviations of the instance value.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        numeric_match_tolerance: float = 0.5,
    ) -> None:
        check_positive(numeric_match_tolerance, name="numeric_match_tolerance")
        self.dataset = dataset
        self.numeric_match_tolerance = numeric_match_tolerance
        self.column_means = dataset.X.mean(axis=0)
        self.column_stds = dataset.X.std(axis=0)
        # Guard degenerate constant columns: perturbation keeps them fixed.
        self.column_stds = np.where(self.column_stds > 0, self.column_stds, 1.0)
        self.category_frequencies: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for col in dataset.categorical_indices:
            codes, counts = np.unique(dataset.X[:, col], return_counts=True)
            self.category_frequencies[col] = (codes, counts / counts.sum())

    def sample(
        self,
        instance: np.ndarray,
        n_samples: int,
        *,
        random_state: RandomState = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` perturbations of ``instance``.

        Returns
        -------
        (X_perturbed, Z_binary):
            ``X_perturbed`` has shape ``(n_samples, d)`` in the original
            feature space (row 0 is the instance itself); ``Z_binary`` is
            the ``{0,1}`` interpretable representation where 1 means the
            perturbed feature matches the instance.
        """
        instance = check_array(instance, name="instance", ndim=1)
        if instance.shape[0] != self.dataset.n_features:
            raise ValidationError(
                f"instance has {instance.shape[0]} features, expected "
                f"{self.dataset.n_features}"
            )
        if n_samples < 2:
            raise ValidationError("n_samples must be at least 2")
        rng = check_random_state(random_state)
        d = self.dataset.n_features
        perturbed = np.tile(instance, (n_samples, 1))
        binary = np.ones((n_samples, d))
        for col in range(d):
            if col in self.category_frequencies:
                codes, probs = self.category_frequencies[col]
                draws = rng.choice(codes, size=n_samples - 1, p=probs)
                perturbed[1:, col] = draws
                binary[1:, col] = (draws == instance[col]).astype(float)
            else:
                std = self.column_stds[col]
                draws = rng.normal(instance[col], std, size=n_samples - 1)
                perturbed[1:, col] = draws
                tolerance = self.numeric_match_tolerance * std
                binary[1:, col] = (
                    np.abs(draws - instance[col]) <= tolerance
                ).astype(float)
        return perturbed, binary

    def standardised_distances(
        self, instance: np.ndarray, perturbed: np.ndarray
    ) -> np.ndarray:
        """Euclidean distances in per-column-standardised space (so the
        locality kernel treats every feature on an equal footing)."""
        scale = self.column_stds
        delta = (perturbed - instance[None, :]) / scale[None, :]
        return np.sqrt(np.sum(delta * delta, axis=1))


class ConditionalSampler:
    """Sample realistic instances subject to fixed-feature predicates.

    Given a set of anchored columns, every sample starts from a random
    training row and has the anchored columns overwritten with the target
    instance's values — the standard perturbation distribution of the
    Anchors algorithm (Ribeiro et al. 2018).
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    def sample(
        self,
        instance: np.ndarray,
        fixed_columns: Sequence[int],
        n_samples: int,
        *,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` rows with ``fixed_columns`` pinned to the
        instance's values and all other columns resampled from data."""
        instance = check_array(instance, name="instance", ndim=1)
        if n_samples < 1:
            raise ValidationError("n_samples must be at least 1")
        fixed = list(fixed_columns)
        if any(not 0 <= c < self.dataset.n_features for c in fixed):
            raise ValidationError("fixed_columns out of range")
        rng = check_random_state(random_state)
        row_indices = rng.integers(0, self.dataset.n_rows, size=n_samples)
        samples = self.dataset.X[row_indices].copy()
        if fixed:
            samples[:, fixed] = instance[fixed]
        return samples
