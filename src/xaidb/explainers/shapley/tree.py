"""TreeSHAP: polynomial-time Shapley values for tree ensembles
(Lundberg, Erion & Lee 2018; Lundberg et al. 2020).

Two variants, matching the two value functions used in practice:

- **path-dependent** (:meth:`TreeShapExplainer.explain`): the conditional
  expectation follows the tree's own cover statistics (``n_node_samples``)
  when a feature is absent.  This is the O(T L D^2) EXTEND/UNWIND
  recursion of Algorithm 2 — the "polynomial-time algorithm that exploits
  properties of the tree structure" the tutorial highlights.
- **interventional** (:func:`interventional_tree_shap`): the marginal
  expectation over an explicit background set.  For each background row
  the tree's value function is an AND-game over the features where the
  instance and the background row diverge, whose Shapley values have a
  closed form — giving an O(T L D) algorithm per background row.

Both are validated in the test-suite against brute-force enumeration over
:func:`tree_expected_value` (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import Iterable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution
from xaidb.models.forest import RandomForestClassifier, RandomForestRegressor
from xaidb.models.gbm import GradientBoostedClassifier, GradientBoostedRegressor
from xaidb.models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure
from xaidb.models.tree_kernels import EnsembleKernel
from xaidb.utils.validation import check_array

__all__ = [
    "tree_expected_value",
    "path_dependent_tree_shap",
    "interventional_tree_shap",
    "TreeShapExplainer",
]


# ----------------------------------------------------------------------
# Algorithm 1: conditional expectation with a feature subset fixed
# ----------------------------------------------------------------------
def tree_expected_value(
    tree: TreeStructure,
    leaf_values: np.ndarray,
    x: np.ndarray,
    coalition: Iterable[int],
) -> float:
    """Path-dependent value function ``E[f(x) | x_S]`` (EXPVALUE).

    Features in ``coalition`` follow ``x``'s branch; absent features split
    probabilistically by training cover.  The exact-Shapley-over-subsets
    ground truth in the tests enumerates this function.
    """
    present = frozenset(coalition)

    def recurse(node: int) -> float:
        if tree.is_leaf(node):
            return float(leaf_values[node])
        feature = int(tree.feature[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        if feature in present:
            child = left if x[feature] <= tree.threshold[node] else right
            return recurse(child)
        cover = tree.n_node_samples
        return (
            cover[left] * recurse(left) + cover[right] * recurse(right)
        ) / cover[node]

    return recurse(0)


# ----------------------------------------------------------------------
# Algorithm 2: path-dependent TreeSHAP
# ----------------------------------------------------------------------
@dataclass
class _PathElement:
    feature: int  # -1 for the dummy root element
    zero_fraction: float
    one_fraction: float
    weight: float


def _extend(
    path: list[_PathElement], pz: float, po: float, feature: int
) -> list[_PathElement]:
    length = len(path)
    out = [
        _PathElement(e.feature, e.zero_fraction, e.one_fraction, e.weight)
        for e in path
    ]
    out.append(_PathElement(feature, pz, po, 1.0 if length == 0 else 0.0))
    for i in range(length - 1, -1, -1):
        out[i + 1].weight += po * out[i].weight * (i + 1) / (length + 1)
        out[i].weight = pz * out[i].weight * (length - i) / (length + 1)
    return out


def _unwind(path: list[_PathElement], index: int) -> list[_PathElement]:
    last = len(path) - 1
    out = [
        _PathElement(e.feature, e.zero_fraction, e.one_fraction, e.weight)
        for e in path
    ]
    one = out[index].one_fraction
    zero = out[index].zero_fraction
    carry = out[last].weight
    for j in range(last - 1, -1, -1):
        # xailint: disable=XDB006 (exact-zero zero-fraction guard in the path unwind)
        if one != 0.0:
            tmp = out[j].weight
            out[j].weight = carry * (last + 1) / ((j + 1) * one)
            # xailint: disable=XDB023 (UNWIND precondition: a path entry with both fractions 0 is never extended)
            carry = tmp - out[j].weight * zero * (last - j) / (last + 1)
        else:
            out[j].weight = out[j].weight * (last + 1) / (zero * (last - j))
    for j in range(index, last):
        out[j].feature = out[j + 1].feature
        out[j].zero_fraction = out[j + 1].zero_fraction
        out[j].one_fraction = out[j + 1].one_fraction
    return out[:last]


def path_dependent_tree_shap(
    tree: TreeStructure,
    leaf_values: np.ndarray,
    x: np.ndarray,
    n_features: int,
) -> np.ndarray:
    """Per-feature Shapley values of one tree's path-dependent game."""
    phi = np.zeros(n_features)
    cover = tree.n_node_samples

    def recurse(
        node: int,
        path: list[_PathElement],
        pz: float,
        po: float,
        feature: int,
    ) -> None:
        path = _extend(path, pz, po, feature)
        if tree.is_leaf(node):
            value = float(leaf_values[node])
            for i in range(1, len(path)):
                unwound = _unwind(path, i)
                total = sum(e.weight for e in unwound)
                element = path[i]
                phi[element.feature] += (
                    total * (element.one_fraction - element.zero_fraction) * value
                )
            return
        split = int(tree.feature[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        go_left = x[split] <= tree.threshold[node]
        incoming_zero = incoming_one = 1.0
        existing = next(
            (i for i in range(1, len(path)) if path[i].feature == split), None
        )
        if existing is not None:
            incoming_zero = path[existing].zero_fraction
            incoming_one = path[existing].one_fraction
            path = _unwind(path, existing)
        # Children are visited left-then-right (not hot-then-cold): the
        # DFS leaf order is then a property of the tree alone, which is
        # what lets tree_shap_kernels vectorize the traversal across
        # rows.  Only the accumulation order of phi changes (last-ulp);
        # every leaf's contribution is identical either way.
        hot_one = incoming_one
        recurse(
            left,
            path,
            incoming_zero * cover[left] / cover[node],
            hot_one if go_left else 0.0,
            split,
        )
        recurse(
            right,
            path,
            incoming_zero * cover[right] / cover[node],
            0.0 if go_left else hot_one,
            split,
        )

    recurse(0, [], 1.0, 1.0, -1)
    return phi


# ----------------------------------------------------------------------
# Interventional TreeSHAP (background-set marginal expectations)
# ----------------------------------------------------------------------
def _interventional_single(
    tree: TreeStructure,
    leaf_values: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    phi: np.ndarray,
) -> None:
    """Accumulate Shapley values of the game ``v(S) = f(x_S, z_{~S})``.

    Reaching a leaf requires following x's branch for a set ``A`` of
    features and z's branch for a set ``B``; the leaf's indicator game
    ``1[A ⊆ S, B ∩ S = ∅]`` has closed-form Shapley values
    ``+ (a-1)! b! / (a+b)!`` for members of ``A`` and
    ``- a! (b-1)! / (a+b)!`` for members of ``B``.
    """

    def recurse(node: int, need_x: list[int], need_z: list[int], assigned: dict) -> None:
        if tree.is_leaf(node):
            value = float(leaf_values[node])
            a, b = len(need_x), len(need_z)
            if a + b == 0:
                return  # x and z agree on this path: no attribution
            denom = factorial(a + b)
            if a:
                pos = factorial(a - 1) * factorial(b) / denom
                for feature in need_x:
                    phi[feature] += pos * value
            if b:
                neg = factorial(a) * factorial(b - 1) / denom
                for feature in need_z:
                    phi[feature] -= neg * value
            return
        feature = int(tree.feature[node])
        threshold = tree.threshold[node]
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        x_child = left if x[feature] <= threshold else right
        z_child = left if z[feature] <= threshold else right
        if x_child == z_child:
            recurse(x_child, need_x, need_z, assigned)
            return
        choice = assigned.get(feature)
        if choice == "x":
            recurse(x_child, need_x, need_z, assigned)
        elif choice == "z":
            recurse(z_child, need_x, need_z, assigned)
        else:
            # Divergent children are explored left-then-right (not
            # x-then-z) so the leaf visit order is a property of the
            # tree alone — the contract the vectorized kernel in
            # tree_shap_kernels relies on.  Contribution values are
            # unchanged; only their accumulation order moves (last-ulp).
            if x_child == left:
                assigned[feature] = "x"
                recurse(left, need_x + [feature], need_z, assigned)
                assigned[feature] = "z"
                recurse(right, need_x, need_z + [feature], assigned)
            else:
                assigned[feature] = "z"
                recurse(left, need_x, need_z + [feature], assigned)
                assigned[feature] = "x"
                recurse(right, need_x + [feature], need_z, assigned)
            del assigned[feature]

    recurse(0, [], [], {})


def interventional_tree_shap(
    tree: TreeStructure,
    leaf_values: np.ndarray,
    x: np.ndarray,
    background: np.ndarray,
) -> np.ndarray:
    """Shapley values of one tree under the marginal (interventional)
    value function, averaged over background rows."""
    x = check_array(x, name="x", ndim=1)
    background = check_array(background, name="background", ndim=2)
    phi = np.zeros(x.shape[0])
    # One fresh phi per background row, folded in sequentially: the
    # per-row partials are then well-defined quantities the vectorized
    # kernel (tree_shap_kernels.ensemble_interventional_shap) can
    # reproduce row-for-row before summing in the same order.
    for z in background:
        phi_z = np.zeros(x.shape[0])
        _interventional_single(tree, leaf_values, x, z, phi_z)
        phi += phi_z
    return phi / background.shape[0]


# ----------------------------------------------------------------------
# Public explainer over xaidb tree models
# ----------------------------------------------------------------------
_TreeTerm = tuple[TreeStructure, np.ndarray, float]  # (structure, leaf scalars, scale)


class TreeShapExplainer(Explainer):
    """SHAP values for xaidb tree models.

    Supported models and the output explained:

    ================================  =================================
    model                             explained quantity
    ================================  =================================
    DecisionTreeRegressor             predicted value
    DecisionTreeClassifier            probability of ``class_index``
    RandomForestRegressor             mean predicted value
    RandomForestClassifier            probability of ``class_index``
    GradientBoostedRegressor          predicted value
    GradientBoostedClassifier         raw log-odds margin (additive)
    ================================  =================================

    Parameters
    ----------
    model:
        A fitted tree model from :mod:`xaidb.models`.
    feature_names:
        Optional names for the attribution output.
    class_index:
        Which class probability to explain for classification trees and
        forests.
    """

    def __init__(
        self,
        model,
        *,
        feature_names: list[str] | None = None,
        class_index: int = 1,
    ) -> None:
        self.feature_names = feature_names
        self.class_index = class_index
        self.terms_, self.offset_, self.description_ = self._decompose(model)
        self._model = model
        self._pack_cache: "EnsembleKernel | None" = None

    @property
    def pack_(self) -> "EnsembleKernel":
        """The term decomposition packed into one node arena (lazily
        built, cached — tree structures are immutable once fitted)."""
        if self._pack_cache is None:
            self._pack_cache = EnsembleKernel.for_terms(self.terms_)
        return self._pack_cache

    # ------------------------------------------------------------------
    def _decompose(self, model) -> tuple[list[_TreeTerm], float, str]:
        k = self.class_index
        if isinstance(model, DecisionTreeRegressor):
            return [(model.tree_, model.tree_.value[:, 0], 1.0)], 0.0, "value"
        if isinstance(model, DecisionTreeClassifier):
            return (
                [(model.tree_, model.tree_.value[:, k], 1.0)],
                0.0,
                f"P(class={k})",
            )
        if isinstance(model, RandomForestRegressor):
            # xailint: disable=XDB027 (a fitted forest holds at least one estimator)
            scale = 1.0 / len(model.estimators_)
            return (
                [(t.tree_, t.tree_.value[:, 0], scale) for t in model.estimators_],
                0.0,
                "value",
            )
        if isinstance(model, RandomForestClassifier):
            # xailint: disable=XDB027 (a fitted forest holds at least one estimator)
            scale = 1.0 / len(model.estimators_)
            terms = []
            for t in model.estimators_:
                # a bootstrap tree may have seen only a subset of classes;
                # locate the column for the forest-level class code k
                matches = np.flatnonzero(t.classes_ == float(k))
                if matches.size:
                    leaf_scalars = t.tree_.value[:, int(matches[0])]
                else:
                    leaf_scalars = np.zeros(t.tree_.node_count)
                terms.append((t.tree_, leaf_scalars, scale))
            return terms, 0.0, f"P(class={k})"
        if isinstance(model, (GradientBoostedRegressor, GradientBoostedClassifier)):
            terms = [
                (t.tree_, t.tree_.value[:, 0], model.learning_rate)
                for t in model.trees_
            ]
            kind = (
                "margin"
                if isinstance(model, GradientBoostedClassifier)
                else "value"
            )
            return terms, float(model.init_score_), kind
        raise ValidationError(
            f"TreeShapExplainer does not support {type(model).__name__}"
        )

    # ------------------------------------------------------------------
    def expected_value(self) -> float:
        """The path-dependent base value: cover-weighted mean output."""
        total = self.offset_
        for tree, leaf_values, scale in self.terms_:
            leaves = tree.leaves()
            weights = tree.n_node_samples[leaves]
            total += scale * float(
                np.average(leaf_values[leaves], weights=weights)
            )
        return total

    def model_output(self, instance: np.ndarray) -> float:
        """The explained quantity at ``instance``."""
        total = self.offset_
        for tree, leaf_values, scale in self.terms_:
            total += scale * float(leaf_values[tree.apply_row(instance)])
        return total

    def explain(self, instance: np.ndarray) -> FeatureAttribution:
        """Path-dependent TreeSHAP attribution."""
        instance = check_array(instance, name="instance", ndim=1)
        phi = np.zeros(instance.shape[0])
        for tree, leaf_values, scale in self.terms_:
            phi += scale * path_dependent_tree_shap(
                tree, leaf_values, instance, instance.shape[0]
            )
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=self.expected_value(),
            prediction=self.model_output(instance),
            metadata={
                "method": "tree_shap_path_dependent",
                "output": self.description_,
                "n_trees": len(self.terms_),
            },
        )

    def explain_batch(
        self,
        instances: np.ndarray,
        *,
        seeds: "np.ndarray | list[int] | None" = None,
    ) -> list[FeatureAttribution]:
        """Path-dependent TreeSHAP for a whole batch of rows at once.

        Runs the arena-wide vectorized kernel
        (:func:`~xaidb.explainers.shapley.tree_shap_kernels.ensemble_path_dependent_shap`)
        over the packed term decomposition; each row's attribution is
        bitwise identical to :meth:`explain` (the retained recursion is
        the exactness oracle, enforced in the test-suite).

        ``seeds`` is accepted for interface parity with the sampled
        explainers' batched entry points (the service dispatcher threads
        per-instance seeds uniformly) and ignored — TreeSHAP is
        deterministic.
        """
        from xaidb.explainers.shapley.tree_shap_kernels import (
            ensemble_path_dependent_shap,
        )

        del seeds  # deterministic: nothing to seed
        instances = check_array(instances, name="instances", ndim=2)
        n_features = instances.shape[1]
        pack = self.pack_
        phi = ensemble_path_dependent_shap(pack, instances, n_features)
        base = self.expected_value()
        leaves = pack.apply(instances)
        predictions = np.full(instances.shape[0], self.offset_, dtype=float)
        for t, (_, _, scale) in enumerate(self.terms_):
            predictions += scale * pack.values[leaves[t]]
        names = self.feature_names or [f"x{i}" for i in range(n_features)]
        return [
            FeatureAttribution(
                feature_names=list(names),
                values=phi[i],
                base_value=base,
                prediction=float(predictions[i]),
                metadata={
                    "method": "tree_shap_path_dependent",
                    "output": self.description_,
                    "n_trees": len(self.terms_),
                    "batched": True,
                },
            )
            for i in range(instances.shape[0])
        ]

    def explain_interventional(
        self, instance: np.ndarray, background: np.ndarray
    ) -> FeatureAttribution:
        """Interventional TreeSHAP against an explicit background set.

        Routed through the vectorized kernel
        (:func:`~xaidb.explainers.shapley.tree_shap_kernels.ensemble_interventional_shap`),
        which evaluates every leaf's AND-game against the whole
        background at once; the retained per-row recursion
        (:func:`interventional_tree_shap`) is the exactness oracle.
        """
        from xaidb.explainers.shapley.tree_shap_kernels import (
            ensemble_interventional_shap,
        )

        instance = check_array(instance, name="instance", ndim=1)
        background = check_array(background, name="background", ndim=2)
        pack = self.pack_
        phi = ensemble_interventional_shap(pack, instance, background)
        base = self.offset_
        leaves = pack.apply(background)
        for t, (_, _, scale) in enumerate(self.terms_):
            base += scale * float(np.mean(pack.values[leaves[t]]))
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=base,
            prediction=self.model_output(instance),
            metadata={
                "method": "tree_shap_interventional",
                "output": self.description_,
                "n_background": int(background.shape[0]),
            },
        )
