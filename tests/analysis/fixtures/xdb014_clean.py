"""Clean fixture for XDB014: symbolic dims, compatible literals and
unresolved calls all block the incompatibility proof."""

import numpy as np

__all__ = ["make_basis", "project", "symbolic", "unresolved"]


def make_basis():
    return np.ones((3, 5))  # inner dims agree with the caller's lhs


def project():
    basis = make_basis()
    lhs = np.zeros((4, 3))
    return lhs @ basis  # (4, 3) @ (3, 5): provably fine


def symbolic(n):
    a = np.zeros((n, 3))
    b = np.ones((3, n))
    return a @ b  # symbolic dims are compatible with everything


def unresolved(loader):
    a = loader.fetch()  # unknown callee: ⊤, never provable
    return a @ np.ones((7, 2))
