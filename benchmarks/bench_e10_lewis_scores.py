"""E10 — LEWIS probabilistic contrastive explanations
(Galhotra, Pradhan & Salimi 2021 score-table shape).

Workload: the loans SCM with known causal weights (credit_score is the
strongest cause of approval).  Reproduced shape: necessity/sufficiency/
PNS scores rank features consistently with the ground-truth causal
strengths, and the recourse ranking puts a decision-flipping intervention
first.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_loans
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import LewisExplainer
from xaidb.models import LogisticRegression

CONTRAST = (1.5, -1.5)


def compute_rows():
    workload = make_loans(1200, random_state=0)
    dataset = workload.dataset
    features = [spec.name for spec in dataset.features]
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    lewis = LewisExplainer(
        predict_positive_proba(model), workload.scm, features, n_units=1200
    )
    table = lewis.explanation_table(
        [(name, CONTRAST[0], CONTRAST[1]) for name in features],
        random_state=0,
    )
    rows = [
        (
            s.feature,
            s.necessity,
            s.sufficiency,
            s.pns,
            workload.true_label_weights[s.feature],
        )
        for s in table
    ]

    # recourse for one denied individual
    observation = {
        "income": -1.0,
        "credit_score": -1.5,
        "debt_to_income": 1.0,
        "employment_years": -0.5,
        "approved": 0.0,
    }
    candidates = [
        {"credit_score": 1.5},
        {"income": 1.0},
        {"employment_years": 1.0},
    ]
    ranked = lewis.recourse(observation, candidates)
    return rows, ranked


def test_e10_lewis_scores(benchmark):
    rows, ranked = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E10: LEWIS necessity/sufficiency scores on the loans SCM "
        "(paper: scores track causal strength)",
        ["feature", "PN", "PS", "PNS", "true |weight|"],
        rows,
    )
    print("recourse ranking:", ranked)
    by_name = {row[0]: row for row in rows}
    # shape: the strongest true cause has the highest PNS
    top_pns = max(rows, key=lambda r: r[3])[0]
    assert top_pns == "credit_score"
    # all probabilities valid
    for row in rows:
        assert 0.0 <= row[1] <= 1.0
        assert 0.0 <= row[3] <= 1.0
    # recourse: the top-ranked intervention actually flips the decision
    # xailint: disable=XDB006 (recourse probability is a count ratio, exactly 1.0 here)
    assert ranked[0][1] == 1.0
