"""Fragility of gradient attributions (tutorial §2.4; Ghorbani, Abid &
Zou 2019, "Interpretation of Neural Networks is Fragile").

The attack: find a tiny input perturbation that (a) leaves the model's
prediction essentially unchanged but (b) maximally disrupts the
attribution — e.g. swaps the top-ranked features.  Success demonstrates
that the explanation communicates something the decision itself does not
depend on.

:func:`fragility_attack` runs a black-box random/greedy search (no
attribution gradients needed, so it works against any attribution
function including SmoothGrad and LIME).  :func:`top_k_intersection` is
the paper's evaluation metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_positive

__all__ = [
    "AttributionFn",
    "top_k_intersection",
    "FragilityResult",
    "fragility_attack",
]

AttributionFn = Callable[[np.ndarray], np.ndarray]


def top_k_intersection(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Fraction of the top-k (by |value|) features two attributions share."""
    if k < 1:
        raise ValidationError("k must be >= 1")
    top_a = set(np.argsort(-np.abs(np.asarray(a)))[:k].tolist())
    top_b = set(np.argsort(-np.abs(np.asarray(b)))[:k].tolist())
    return len(top_a & top_b) / k


@dataclass
class FragilityResult:
    """Outcome of a fragility attack on one instance."""

    original: np.ndarray
    perturbed: np.ndarray
    original_attribution: np.ndarray
    perturbed_attribution: np.ndarray
    prediction_change: float
    top_k_overlap: float
    perturbation_norm: float

    @property
    def succeeded(self) -> bool:
        """Attribution disrupted (top-k overlap <= 0.5) while the
        prediction moved by less than 0.1."""
        return self.top_k_overlap <= 0.5 and abs(self.prediction_change) < 0.1


def fragility_attack(
    predict_fn: PredictFn,
    attribution_fn: AttributionFn,
    instance: np.ndarray,
    *,
    radius: float = 0.2,
    k: int = 2,
    n_iterations: int = 100,
    max_prediction_change: float = 0.05,
    random_state: RandomState = None,
) -> FragilityResult:
    """Search an L-inf ball for the perturbation that most disrupts the
    attribution while preserving the prediction.

    Greedy random search: propose perturbations, keep the one minimising
    top-k overlap with the original attribution subject to the
    prediction-change budget.
    """
    instance = check_array(instance, name="instance", ndim=1)
    check_positive(radius, name="radius")
    if n_iterations < 1:
        raise ValidationError("n_iterations must be >= 1")
    rng = check_random_state(random_state)
    original_attribution = np.asarray(attribution_fn(instance), dtype=float)
    original_prediction = float(predict_fn(instance[None, :])[0])

    best = instance.copy()
    best_attribution = original_attribution
    best_overlap = 1.0
    for __ in range(n_iterations):
        delta = rng.uniform(-radius, radius, size=instance.shape[0])
        candidate = instance + delta
        prediction = float(predict_fn(candidate[None, :])[0])
        if abs(prediction - original_prediction) > max_prediction_change:
            continue
        attribution = np.asarray(attribution_fn(candidate), dtype=float)
        overlap = top_k_intersection(original_attribution, attribution, k)
        if overlap < best_overlap:
            best, best_attribution, best_overlap = (
                candidate, attribution, overlap,
            )
            # xailint: disable=XDB006 (overlap is a ratio of integer counts; 0.0 means disjoint)
            if best_overlap == 0.0:
                break
    final_prediction = float(predict_fn(best[None, :])[0])
    return FragilityResult(
        original=instance,
        perturbed=best,
        original_attribution=original_attribution,
        perturbed_attribution=best_attribution,
        prediction_change=final_prediction - original_prediction,
        top_k_overlap=best_overlap,
        perturbation_norm=float(np.max(np.abs(best - instance))),
    )
