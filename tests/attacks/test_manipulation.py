import numpy as np
import pytest

from xaidb.attacks import TrapdooredModel
from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import GecoExplainer
from xaidb.models import LogisticRegression


@pytest.fixture(scope="module")
def trapdoor_setup(credit):
    model = LogisticRegression(l2=1e-2).fit(credit.dataset.X, credit.dataset.y)
    f = predict_positive_proba(model)
    feature = credit.dataset.feature_index("duration")
    trapdoor = TrapdooredModel.against_data(
        f, credit.dataset.X, feature, margin=0.2
    )
    return credit.dataset, f, trapdoor, feature


class TestTrapdooredModel:
    def test_stealth_on_real_data(self, trapdoor_setup):
        dataset, __, trapdoor, __f = trapdoor_setup
        assert trapdoor.agreement_on(dataset.X) == 1.0

    def test_trigger_region_boosts(self, trapdoor_setup):
        dataset, f, trapdoor, feature = trapdoor_setup
        probe = dataset.X[0].copy()
        probe[feature] = trapdoor.threshold + 1.0
        assert trapdoor(probe[None, :])[0] >= 0.95
        assert f(probe[None, :])[0] < 0.95  # the honest model disagrees

    def test_no_real_row_triggers(self, trapdoor_setup):
        dataset, __, trapdoor, __f = trapdoor_setup
        assert not trapdoor.in_trapdoor(dataset.X).any()

    def test_parameter_validation(self, trapdoor_setup):
        __, f, __t, __f2 = trapdoor_setup
        with pytest.raises(ValidationError):
            TrapdooredModel(f, -1, 0.0)
        with pytest.raises(ValidationError):
            TrapdooredModel(f, 0, 0.0, boost=0.0)
        with pytest.raises(ValidationError):
            TrapdooredModel.against_data(f, np.ones((3, 2)), 5)


def _select_victims(dataset, f, feature):
    """Denied applicants whose trigger feature already sits near its max:
    for them the sentinel move is cheaper than honest recourse, which is
    exactly the population the attack targets."""
    scores = f(dataset.X)
    denied = np.flatnonzero(scores < 0.4)
    by_feature_value = denied[np.argsort(-dataset.X[denied, feature])]
    return dataset.X[by_feature_value[:3]]


class TestManipulatedCounterfactuals:
    def test_unconstrained_search_serves_fake_recourse(self, trapdoor_setup):
        """The headline: off-manifold CF search on the trapdoored model
        finds the trigger and reports recourse the honest model rejects."""
        dataset, f, trapdoor, feature = trapdoor_setup
        victims = _select_victims(dataset, f, feature)
        assert len(victims) == 3
        searcher = GecoExplainer(
            trapdoor, dataset, n_generations=25,
            require_plausible=False, range_expansion=0.5,
        )
        fake = 0
        for i, x in enumerate(victims):
            counterfactuals = searcher.generate(
                x, n_counterfactuals=1, random_state=i
            )
            candidate = counterfactuals[0].counterfactual
            in_trap = bool(trapdoor.in_trapdoor(candidate[None, :])[0])
            honest_score = float(f(candidate[None, :])[0])
            fake += in_trap and honest_score < 0.5
        assert fake >= 2

    def test_plausibility_constraint_defends(self, trapdoor_setup):
        dataset, f, trapdoor, feature = trapdoor_setup
        victims = _select_victims(dataset, f, feature)
        defender = GecoExplainer(trapdoor, dataset, n_generations=25)
        for i, x in enumerate(victims):
            counterfactuals = defender.generate(
                x, n_counterfactuals=1, random_state=i
            )
            candidate = counterfactuals[0].counterfactual
            assert not trapdoor.in_trapdoor(candidate[None, :])[0]
            # the defended recourse is genuine under the honest model
            assert float(f(candidate[None, :])[0]) >= 0.45
