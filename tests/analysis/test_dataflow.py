"""Fixpoint, taint-propagation and view-alias tests for the dataflow
framework underpinning XDB010-XDB013."""

from __future__ import annotations

import ast
import textwrap

import pytest

from xaidb.analysis import (
    ReachingDefinitions,
    ValueTaint,
    function_cfg,
    solve_forward,
    view_sources,
)
from xaidb.analysis.dataflow import replay


def _fn(src: str):
    return ast.parse(textwrap.dedent(src)).body[0]


def _state_at_return(cfg, problem) -> dict:
    """The abstract state just before the (single) return statement."""
    in_states = solve_forward(cfg, problem)
    captured: list[dict] = []

    def visit(item, state):
        if isinstance(item, ast.Return):
            captured.append(dict(state))

    replay(cfg, problem, in_states, visit)
    assert len(captured) == 1
    return captured[0]


# -- reaching definitions ------------------------------------------------


def test_loop_carried_definition_reaches_fixpoint():
    """Both the init and the in-loop redefinition of ``total`` must
    reach the return: the back edge forces a second worklist pass."""
    src = """
    def f(xs):
        total = 0.0
        for x in xs:
            total = total + x
        return total
    """
    cfg = function_cfg(_fn(src))
    problem = ReachingDefinitions(cfg)
    state = _state_at_return(cfg, problem)
    labels = state["total"]
    assert len(labels) == 2, labels
    lines = {problem.definitions[label].node.lineno for label in labels}
    assert lines == {3, 5}  # the init and the in-loop redefinition


def test_straight_line_redefinition_is_a_strong_update():
    src = """
    def f(a):
        x = a
        x = a + 1
        return x
    """
    cfg = function_cfg(_fn(src))
    problem = ReachingDefinitions(cfg)
    state = _state_at_return(cfg, problem)
    assert len(state["x"]) == 1  # the first definition is killed


# -- value taint ---------------------------------------------------------

TAINT = frozenset({"T"})


def _taint(code: str, **entry) -> dict:
    problem = ValueTaint(entry={k: frozenset(v) for k, v in entry.items()})
    return _state_at_return(function_cfg(_fn(code)), problem)


def test_taint_through_literal_tuple_unpacking_is_elementwise():
    state = _taint(
        """
        def f(src, n):
            a, b = src, n
            c = a
            return c
        """,
        src=TAINT,
    )
    assert state["a"] == TAINT
    assert state["c"] == TAINT
    assert state["b"] == frozenset()  # the clean slot stays clean


def test_taint_through_opaque_unpacking_joins_into_every_target():
    state = _taint(
        """
        def f(pair):
            lo, hi = pair
            return lo
        """,
        pair=TAINT,
    )
    assert state["lo"] == TAINT
    assert state["hi"] == TAINT


def test_augmented_assignment_unions_taint():
    state = _taint(
        """
        def f(src):
            acc = 0
            acc += src
            return acc
        """,
        src=TAINT,
    )
    assert state["acc"] == TAINT


def test_rebinding_clears_taint():
    state = _taint(
        """
        def f(src):
            x = src
            x = 0
            return x
        """,
        src=TAINT,
    )
    assert state["x"] == frozenset()


def test_two_step_loop_carried_taint_chain_converges():
    """``b`` only becomes tainted on the *second* abstract iteration
    (iteration one taints ``a``, iteration two copies it into ``b``) —
    the join over the back edge must carry it through."""
    state = _taint(
        """
        def f(src, n):
            a = 0
            b = 0
            while n:
                b = a
                a = src
            return b
        """,
        src=TAINT,
    )
    assert state["b"] == TAINT


# -- ndarray view aliasing ----------------------------------------------


@pytest.mark.parametrize(
    "expr,expected",
    [
        ("x[1:]", {"x"}),
        ("x.T", {"x"}),
        ("x.reshape(-1)", {"x"}),
        ("x.reshape(-1).T[0]", {"x"}),
        ("np.asarray(x)", {"x"}),
        ("np.atleast_2d(x)", {"x"}),
        ("(x, y.copy())", {"x"}),
        ("x if flag else y", {"x", "y"}),
        ("x.copy()", set()),
        ("np.array(x)", set()),
        ("x + 1", set()),
        ("x.mean()", set()),
    ],
)
def test_view_sources(expr, expected):
    node = ast.parse(expr, mode="eval").body
    assert view_sources(node) == expected
