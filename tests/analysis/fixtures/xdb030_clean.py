"""Clean fixture for XDB030: every coroutine is awaited or handed to
the scheduler, so each body actually runs."""

import asyncio

__all__ = ["handle"]


async def _warm_cache(server):
    await asyncio.sleep(0)
    return server


async def handle(server):
    task = asyncio.create_task(_warm_cache(server))  # scheduled
    await asyncio.sleep(0.01)
    await task
    return await _warm_cache(server)
