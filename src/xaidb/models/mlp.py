"""A small multilayer perceptron classifier with input gradients.

The tutorial's §2.4 discusses saliency/gradient-based attributions for
deep models and the sanity checks (Adebayo et al. 2018) that expose their
fragility.  This MLP provides exactly the hooks those experiments need:
:meth:`input_gradient` (the saliency map) and
:meth:`randomize_parameters` (the parameter-randomisation sanity check).
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Classifier
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["MLPClassifier"]


class MLPClassifier(Classifier):
    """Binary/multi-class MLP with tanh hidden layers, softmax output,
    trained by full-batch gradient descent with momentum.

    Deliberately small and dependency-free; the point is a differentiable
    non-linear model, not state-of-the-art accuracy.
    """

    def __init__(
        self,
        *,
        hidden_sizes: tuple[int, ...] = (16,),
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        max_iter: int = 500,
        l2: float = 1e-4,
        random_state: RandomState = None,
    ) -> None:
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ValidationError("hidden_sizes must be positive integers")
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.max_iter = max_iter
        self.l2 = l2
        self.random_state = random_state
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Return per-layer activations and output probabilities."""
        activations = [X]
        hidden = X
        for layer in range(len(self.weights_) - 1):
            hidden = np.tanh(hidden @ self.weights_[layer] + self.biases_[layer])
            activations.append(hidden)
        logits = hidden @ self.weights_[-1] + self.biases_[-1]
        logits -= logits.max(axis=1, keepdims=True)
        exp_logits = np.exp(logits)
        # xailint: disable=XDB023 (the max shift leaves one term at exp(0) = 1, so the sum is >= 1)
        probabilities = exp_logits / exp_logits.sum(axis=1, keepdims=True)
        return activations, probabilities

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = self._validate_fit_args(X, y)
        y_index = self._encode_labels(y)
        n_classes = len(self.classes_)
        rng = check_random_state(self.random_state)
        sizes = [X.shape[1], *self.hidden_sizes, n_classes]
        self.weights_ = [
            rng.normal(0.0, np.sqrt(1.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        one_hot = np.zeros((len(y_index), n_classes))
        one_hot[np.arange(len(y_index)), y_index] = 1.0
        velocity_w = [np.zeros_like(w) for w in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]
        n = X.shape[0]
        for _ in range(self.max_iter):
            activations, probabilities = self._forward(X)
            # xailint: disable=XDB023 (fit's argument validation rejects an empty X)
            delta = (probabilities - one_hot) / n
            for layer in reversed(range(len(self.weights_))):
                grad_w = activations[layer].T @ delta + self.l2 * self.weights_[layer]
                grad_b = delta.sum(axis=0)
                velocity_w[layer] = (
                    self.momentum * velocity_w[layer] - self.learning_rate * grad_w
                )
                velocity_b[layer] = (
                    self.momentum * velocity_b[layer] - self.learning_rate * grad_b
                )
                if layer > 0:
                    delta = (delta @ self.weights_[layer].T) * (
                        1.0 - activations[layer] ** 2
                    )
                self.weights_[layer] += velocity_w[layer]
                self.biases_[layer] += velocity_b[layer]
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["weights_"])
        X = check_array(X, name="X", ndim=2)
        __, probabilities = self._forward(X)
        return probabilities

    # ------------------------------------------------------------------
    # hooks for gradient-based explanations (§2.4)
    # ------------------------------------------------------------------
    def input_gradient(self, x: np.ndarray, class_index: int) -> np.ndarray:
        """Gradient of the chosen class probability w.r.t. the input —
        the raw "saliency map" of gradient-based attribution."""
        check_fitted(self, ["weights_"])
        x = check_array(x, name="x", ndim=1)
        X = x[None, :]
        activations, probabilities = self._forward(X)
        if not 0 <= class_index < probabilities.shape[1]:
            raise ValidationError("class_index out of range")
        # d softmax_k / d logits = p_k (e_k - p)
        p = probabilities[0]
        delta = (p[class_index] * (np.eye(len(p))[class_index] - p))[None, :]
        for layer in reversed(range(len(self.weights_))):
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (
                    1.0 - activations[layer] ** 2
                )
            else:
                delta = delta @ self.weights_[layer].T
        return delta[0]

    def randomize_parameters(
        self, *, layers: int | None = None, random_state: RandomState = None
    ) -> "MLPClassifier":
        """Return a copy with the top ``layers`` weight matrices replaced by
        random noise (all layers when ``None``) — the cascading parameter
        randomisation of Adebayo et al.'s sanity checks.  A faithful
        saliency method must change drastically under this operation."""
        check_fitted(self, ["weights_"])
        rng = check_random_state(random_state)
        copy = MLPClassifier(
            hidden_sizes=self.hidden_sizes,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            max_iter=self.max_iter,
            l2=self.l2,
            random_state=self.random_state,
        )
        copy.classes_ = self.classes_.copy()
        copy.weights_ = [w.copy() for w in self.weights_]
        copy.biases_ = [b.copy() for b in self.biases_]
        n_layers = len(copy.weights_) if layers is None else min(layers, len(copy.weights_))
        for offset in range(1, n_layers + 1):
            layer = len(copy.weights_) - offset
            shape = copy.weights_[layer].shape
            copy.weights_[layer] = rng.normal(0.0, 1.0, size=shape)
            copy.biases_[layer] = rng.normal(0.0, 1.0, size=shape[1])
        return copy
