"""A5 (extension) — counterfactuals can be gamed; recourse burden can be
unequal (tutorial §2.1.4's "they can be gamed" via Slack et al. 2021;
Ustun et al. 2019's recourse disparities).

Reproduced shapes:

- a trapdoored model (out-of-range sentinel trigger) leaves deployed
  predictions untouched (agreement 1.0) yet steers unconstrained
  counterfactual search into fake recourse — the honest model still
  denies the "counterfactual" — while manifold-constrained search returns
  genuine recourse;
- a scorer with a direct group penalty imposes measurably higher minimal
  recourse cost on the penalised group (the fairness-of-recourse gap).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.attacks import TrapdooredModel
from xaidb.data import Dataset, FeatureSpec, make_credit
from xaidb.evaluation import recourse_cost_disparity
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import GecoExplainer, LinearRecourse
from xaidb.models import LogisticRegression

N_VICTIMS = 4


def compute_rows():
    # --- manipulation ---------------------------------------------------
    workload = make_credit(800, random_state=0)
    dataset = workload.dataset
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    feature = dataset.feature_index("duration")
    trapdoor = TrapdooredModel.against_data(f, dataset.X, feature, margin=0.2)

    scores = f(dataset.X)
    denied = np.flatnonzero(scores < 0.4)
    victims = dataset.X[denied[np.argsort(-dataset.X[denied, feature])][:N_VICTIMS]]

    searchers = {
        "unconstrained search": GecoExplainer(
            trapdoor, dataset, n_generations=25,
            require_plausible=False, range_expansion=0.5,
        ),
        "manifold-constrained": GecoExplainer(
            trapdoor, dataset, n_generations=25
        ),
    }
    manipulation_rows = []
    for name, searcher in searchers.items():
        fake = genuine = 0
        for i, x in enumerate(victims):
            counterfactuals = searcher.generate(
                x, n_counterfactuals=1, random_state=i
            )
            candidate = counterfactuals[0].counterfactual
            in_trap = bool(trapdoor.in_trapdoor(candidate[None, :])[0])
            honest = float(f(candidate[None, :])[0])
            fake += in_trap and honest < 0.5
            genuine += (not in_trap) and honest >= 0.45
        manipulation_rows.append(
            (name, fake / N_VICTIMS, genuine / N_VICTIMS)
        )
    stealth = trapdoor.agreement_on(dataset.X)

    # --- recourse fairness ------------------------------------------------
    rng = np.random.default_rng(1)
    n = 800
    group = (rng.random(n) < 0.5).astype(float)
    skill = rng.normal(size=n)
    y = (1.5 * skill - 1.2 * group + 0.2 * rng.normal(size=n) > 0).astype(float)
    audit_data = Dataset(
        X=np.column_stack([skill, group]),
        y=y,
        features=[
            FeatureSpec("skill"),
            FeatureSpec(
                "group", kind="categorical", categories=("a", "b"),
                actionable=False,
            ),
        ],
    )
    audit_model = LogisticRegression(l2=1e-2).fit(audit_data.X, audit_data.y)
    stats, ratio = recourse_cost_disparity(
        LinearRecourse(audit_model, audit_data), audit_data, "group"
    )
    fairness_rows = [
        (s.group, s.n_denied, s.mean_cost, s.infeasible_rate) for s in stats
    ]
    return manipulation_rows, stealth, fairness_rows, ratio


def test_a05_cf_manipulation(benchmark):
    manipulation_rows, stealth, fairness_rows, ratio = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "A5a (extension): trapdoored counterfactuals "
        f"(deployed stealth: agreement {stealth:.2f} on real data)",
        ["search strategy", "fake recourse rate", "genuine recourse rate"],
        manipulation_rows,
    )
    print_table(
        "A5b (extension): recourse cost by protected group "
        f"(max cost ratio {ratio:.2f})",
        ["group", "denied", "mean recourse cost", "infeasible rate"],
        fairness_rows,
    )
    # xailint: disable=XDB006 (stealth rate is a count ratio, exactly 1.0 when all pass)
    assert stealth == 1.0
    by_name = dict((row[0], row) for row in manipulation_rows)
    assert by_name["unconstrained search"][1] >= 0.5  # attack succeeds
    # xailint: disable=XDB006 (attack success is a count ratio, exactly 0.0 when none succeed)
    assert by_name["manifold-constrained"][1] == 0.0  # defence holds
    assert by_name["manifold-constrained"][2] >= 0.75
    # the penalised group pays measurably more for recourse
    assert ratio > 1.2
