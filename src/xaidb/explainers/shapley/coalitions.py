"""Shared coalition-mask arenas for sampling-based Shapley estimators.

KernelSHAP's coalition design is a pure function of ``(n_features,
budget, seed)`` — the exhaustive enumeration does not even depend on
the seed — yet the seed paths rebuilt it per instance, per request.
This module builds each design once, marks the arrays read-only, and
memoizes them under that key, so:

- a batched :meth:`KernelShapExplainer.explain_batch` call with one
  seed per instance shares one design per distinct seed (and exactly
  one in the exhaustive regime);
- repeated server requests against the same ``(model, explainer,
  config)`` key reuse the cached arrays across dispatch batches;
- the evaluation runtime can ship the masks to pool workers as a
  :class:`~xaidb.runtime.parallel.SharedArrayRef` slice instead of
  pickling mask chunks per task — the stable object identity of a
  cached design is what makes the pool's id-memoized ``share()`` a hit.

Designs built from a non-reproducible ``random_state`` (a live
``Generator``, or ``None``) are returned uncached: caching them would
freeze one draw of a stream the caller expects to advance.

The module also hosts :func:`sample_uniform_masks`, the shared
mask-matrix sampler the vectorized Banzhaf estimator draws from (one
``(n_samples, n_players)`` block whose rows reproduce the historical
per-sample ``rng.random(n) < 0.5`` draws bit-for-bit, because the
generator consumes the same stream in the same order).
"""

from __future__ import annotations

import threading
from itertools import combinations
from math import comb

import numpy as np

from xaidb.utils.combinatorics import shapley_kernel_weight
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "kernel_shap_design",
    "sample_uniform_masks",
    "design_cache_info",
    "clear_design_cache",
]

#: (d, budget, seed) -> (masks, weights); insertion-ordered for FIFO
#: eviction.  Guarded by ``_LOCK`` — the dispatcher evaluates distinct
#: batch keys on concurrent threads.
_CACHE: "dict[tuple, tuple[np.ndarray, np.ndarray]]" = {}
_LOCK = threading.Lock()
_MAX_ENTRIES = 128
_INFO = {"hits": 0, "misses": 0}


def _frozen(
    masks: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    masks.setflags(write=False)
    weights.setflags(write=False)
    return masks, weights


def _enumerated_design(d: int) -> tuple[np.ndarray, np.ndarray]:
    """Every non-trivial coalition with its Shapley-kernel weight."""
    masks = []
    weights = []
    for size in range(1, d):
        kernel = shapley_kernel_weight(size, d)
        for subset in combinations(range(d), size):
            mask = np.zeros(d, dtype=bool)
            mask[list(subset)] = True
            masks.append(mask)
            weights.append(kernel)
    return np.asarray(masks), np.asarray(weights)


def _sampled_design(
    d: int, budget: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Size-stratified paired sampling from the kernel distribution.

    Sizes are drawn with probability proportional to the *total* kernel
    mass of that size; each sampled mask is paired with its complement.
    Duplicate draws are aggregated — a mask sampled ``k`` times enters
    the design once with weight ``k``, which solves the same WLS normal
    equations as ``k`` unit-weight copies while keeping the mask set
    unique (so downstream caches dedupe cleanly).
    """
    sizes = np.arange(1, d)
    mass = np.asarray(
        [shapley_kernel_weight(int(s), d) * comb(d, int(s)) for s in sizes]
    )
    probabilities = mass / mass.sum()
    n_pairs = budget // 2
    masks = np.zeros((2 * n_pairs, d), dtype=bool)
    drawn_sizes = rng.choice(sizes, size=n_pairs, p=probabilities)
    for pair, size in enumerate(drawn_sizes):
        chosen = rng.choice(d, size=int(size), replace=False)
        masks[2 * pair, chosen] = True
        masks[2 * pair + 1] = ~masks[2 * pair]
    unique_masks, counts = np.unique(masks, axis=0, return_counts=True)
    return unique_masks, counts.astype(float)


def kernel_shap_design(
    d: int, n_coalitions: int, random_state: RandomState = None
) -> tuple[np.ndarray, np.ndarray]:
    """Coalition masks and regression weights for a KernelSHAP fit.

    Exhaustive when ``2^d - 2 <= n_coalitions`` (seed-independent),
    sampled otherwise.  Returns read-only arrays; reproducible designs
    (exhaustive, or sampled from an integer seed) come from the shared
    cache, so equal keys return the *same objects* — callers may rely
    on identity for downstream memoization.
    """
    exhaustive = (2**d - 2) <= n_coalitions
    if exhaustive:
        key = (d, n_coalitions, None)
    elif isinstance(random_state, (int, np.integer)):
        key = (d, n_coalitions, int(random_state))
    else:
        key = None
    if key is not None:
        with _LOCK:
            cached = _CACHE.get(key)
            if cached is not None:
                _INFO["hits"] += 1
                return cached
            _INFO["misses"] += 1
    if exhaustive:
        design = _frozen(*_enumerated_design(d))
    else:
        design = _frozen(
            *_sampled_design(d, n_coalitions, check_random_state(random_state))
        )
    if key is not None:
        with _LOCK:
            _CACHE.setdefault(key, design)
            while len(_CACHE) > _MAX_ENTRIES:
                _CACHE.pop(next(iter(_CACHE)))
            return _CACHE[key]
    return design


def sample_uniform_masks(
    rng: np.random.Generator, n_samples: int, n_players: int
) -> np.ndarray:
    """``(n_samples, n_players)`` fair-coin coalition masks.

    One block draw; row ``s`` equals the s-th sequential
    ``rng.random(n_players) < 0.5`` draw bit-for-bit (the generator
    fills the block row-major from the same stream).
    """
    return rng.random((n_samples, n_players)) < 0.5


def design_cache_info() -> dict[str, int]:
    """Hit/miss/entry counters — benchmark and test observability."""
    with _LOCK:
        return {"entries": len(_CACHE), **_INFO}


def clear_design_cache() -> None:
    """Drop every cached design (tests; long-lived servers on memory
    pressure)."""
    with _LOCK:
        _CACHE.clear()
        _INFO["hits"] = _INFO["misses"] = 0
