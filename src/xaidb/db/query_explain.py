"""Explaining database query results (tutorial §3; Meliou et al. 2010
"WHY SO? or WHY NO?"; Roy & Suciu 2014).

- :func:`why_provenance` — the witnesses justifying an answer tuple;
- :func:`why_not_provenance` — which *candidate* base tuples would, if
  present, derive a missing answer (over a caller-supplied candidate
  derivation set);
- :func:`responsibility` — Meliou-style causal responsibility: tuple
  ``t`` is a cause of an answer with contingency ``Γ`` if removing ``Γ``
  makes ``t`` counterfactual; responsibility is ``1 / (1 + min |Γ|)``;
- :func:`aggregate_interventions` — intervention-based explanation for
  aggregate answers: rank base tuples (or tuple groups) by how much their
  deletion moves the aggregate (Roy-Suciu style).
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from xaidb.db.provenance import Provenance
from xaidb.db.relation import Relation
from xaidb.exceptions import ProvenanceError, ValidationError

__all__ = [
    "why_provenance",
    "why_not_provenance",
    "responsibility",
    "all_responsibilities",
    "aggregate_interventions",
]


def why_provenance(provenance: Provenance) -> list[list[Hashable]]:
    """The minimal witnesses (why-provenance) of an answer, sorted by
    size then lexicographically."""
    return sorted(
        (sorted(witness, key=str) for witness in provenance.witnesses),
        key=lambda w: (len(w), [str(x) for x in w]),
    )


def why_not_provenance(
    candidate_witnesses: Iterable[Iterable[Hashable]],
    present: Iterable[Hashable],
) -> list[list[Hashable]]:
    """Why is the answer missing?  For each candidate derivation, the base
    tuples that would have to be *added* to the database to complete it —
    the 'missing tuples' flavour of why-not.  Sorted by how few insertions
    each needs."""
    available = frozenset(present)
    repairs = []
    for witness in candidate_witnesses:
        missing = frozenset(witness) - available
        if missing:
            repairs.append(sorted(missing, key=str))
    repairs.sort(key=lambda r: (len(r), [str(x) for x in r]))
    return repairs


def responsibility(
    provenance: Provenance,
    tuple_id: Hashable,
    *,
    max_contingency: int | None = None,
) -> float:
    """Causal responsibility of ``tuple_id`` for the answer.

    Searches for the smallest contingency set ``Γ`` (tuples to remove)
    after which ``tuple_id`` becomes counterfactual; responsibility is
    ``1/(1+|Γ|)``, and 0 when the tuple is not a cause at all (does not
    appear in any witness, or no contingency up to ``max_contingency``
    works).
    """
    lineage = provenance.lineage()
    if tuple_id not in lineage:
        return 0.0
    others = sorted(lineage - {tuple_id}, key=str)
    limit = len(others) if max_contingency is None else min(max_contingency, len(others))
    for size in range(limit + 1):
        for contingency in combinations(others, size):
            remaining = frozenset(lineage) - frozenset(contingency)
            # answer must still hold with the contingency removed...
            if not provenance.satisfied_by(remaining):
                continue
            # ...and fail once tuple_id is also removed
            if not provenance.satisfied_by(remaining - {tuple_id}):
                return 1.0 / (1.0 + size)
    return 0.0


def all_responsibilities(
    provenance: Provenance, *, max_contingency: int | None = None
) -> dict[Hashable, float]:
    """Responsibility of every tuple in the lineage, descending."""
    scores = {
        token: responsibility(
            provenance, token, max_contingency=max_contingency
        )
        for token in provenance.lineage()
    }
    return dict(
        sorted(scores.items(), key=lambda item: (-item[1], str(item[0])))
    )


def aggregate_interventions(
    relation: Relation,
    query_fn: Callable[[Relation], float],
    *,
    groups: Mapping[str, Sequence[Hashable]] | None = None,
    top_k: int | None = None,
) -> list[tuple[str, float]]:
    """Intervention-based explanation of an aggregate answer.

    For each base tuple (or each named *group* of tuples — predicate-based
    explanations delete homogeneous subsets), report the change in the
    query answer when it is deleted:
    ``effect = q(D) - q(D without the group)``.  Sorted by |effect|
    descending; positive effect means the group pushes the answer up.
    """
    baseline = float(query_fn(relation))
    all_tuples = relation.tuple_ids()
    if not all_tuples:
        raise ValidationError("relation has no base tuples")
    if groups is None:
        groups = {str(token): [token] for token in all_tuples}
    effects = []
    universe = frozenset(all_tuples)
    for label, members in groups.items():
        missing = [m for m in members if m not in universe]
        if missing:
            raise ProvenanceError(
                f"group {label!r} references unknown tuples {missing}"
            )
        without = universe - frozenset(members)
        effects.append(
            (label, baseline - float(query_fn(relation.restrict_to(without))))
        )
    effects.sort(key=lambda item: (-abs(item[1]), item[0]))
    return effects[:top_k] if top_k is not None else effects
