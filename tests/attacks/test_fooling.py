import numpy as np
import pytest

from xaidb.attacks import ScaffoldedClassifier, train_ood_detector
from xaidb.data.perturbation import LimeTabularSampler
from xaidb.explainers import LimeExplainer


@pytest.fixture(scope="module")
def attack_setup(recidivism_biased):
    dataset = recidivism_biased.dataset
    detector = train_ood_detector(dataset, random_state=0)
    race = dataset.feature_index("race")
    priors = dataset.feature_index("priors")

    def biased(X):
        return (X[:, race] > 0.5).astype(float) * 0.8 + 0.1

    def innocuous(X):
        return (X[:, priors] > 0).astype(float) * 0.8 + 0.1

    scaffold = ScaffoldedClassifier(biased, innocuous, detector)
    return dataset, detector, biased, innocuous, scaffold


class TestOODDetector:
    def test_real_rows_pass(self, attack_setup):
        dataset, detector, *_ = attack_setup
        p_real = detector.predict_proba(dataset.X)[:, 1]
        assert (p_real >= 0.5).mean() > 0.95

    def test_perturbations_caught(self, attack_setup):
        dataset, detector, *_ = attack_setup
        sampler = LimeTabularSampler(dataset)
        perturbed, __ = sampler.sample(dataset.X[0], 301, random_state=1)
        p_real = detector.predict_proba(perturbed[1:])[:, 1]
        assert (p_real >= 0.5).mean() < 0.1


class TestScaffoldedClassifier:
    def test_deployed_behaviour_is_biased(self, attack_setup):
        dataset, __, biased, __, scaffold = attack_setup
        assert np.allclose(scaffold(dataset.X), biased(dataset.X))

    def test_perturbations_routed_to_innocuous(self, attack_setup):
        dataset, __, __, innocuous, scaffold = attack_setup
        sampler = LimeTabularSampler(dataset)
        perturbed, __m = sampler.sample(dataset.X[0], 201, random_state=2)
        routed = scaffold(perturbed[1:])
        expected = innocuous(perturbed[1:])
        assert np.mean(routed == expected) > 0.9

    def test_routing_fraction(self, attack_setup):
        dataset, __, __, __, scaffold = attack_setup
        assert scaffold.routing_fraction(dataset.X) > 0.95

    def test_lime_is_fooled(self, attack_setup):
        """The headline E19 result: LIME's top feature is 'race' for the
        naked biased model but almost never for the scaffold."""
        dataset, __, biased, __, scaffold = attack_setup
        lime = LimeExplainer(dataset, n_samples=400)
        naked_hits = 0
        scaffold_hits = 0
        for i in range(8):
            naked = lime.explain(biased, dataset.X[i], random_state=i)
            cloaked = lime.explain(scaffold, dataset.X[i], random_state=i)
            naked_hits += naked.top(1)[0][0] == "race"
            scaffold_hits += cloaked.top(1)[0][0] == "race"
        assert naked_hits >= 7
        assert scaffold_hits <= 2

    def test_threshold_extremes(self, attack_setup):
        dataset, detector, biased, innocuous, __ = attack_setup
        always_innocuous = ScaffoldedClassifier(
            biased, innocuous, detector, threshold=1.1
        )
        assert always_innocuous.routing_fraction(dataset.X) == 0.0
