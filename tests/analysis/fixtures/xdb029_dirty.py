"""Dirty fixture for XDB029: worker-pool operations provably after
close(), once directly and once through a helper (the finding carries
the witness line inside the helper)."""

__all__ = ["drained_map", "drained_share"]


class ArrayPool:
    """Structurally a worker pool: close plus map/share."""

    def __init__(self, jobs):
        self.jobs = jobs

    def map(self, fn, chunks):
        return [fn(chunk) for chunk in chunks]

    def share(self, array):
        return array

    def close(self):
        self.jobs = 0


def _reuse(pool, array):
    # the summary exports the obligation: share() is illegal once the
    # argument is already closed
    return pool.share(array)


def drained_map(chunks):
    pool = ArrayPool(2)
    pool.close()
    return pool.map(len, chunks)  # finding 1: closed on every path


def drained_share(array):
    pool = ArrayPool(2)
    pool.close()
    return _reuse(pool, array)  # finding 2: illegal inside the helper
