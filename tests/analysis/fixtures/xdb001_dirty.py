"""XDB001 dirty fixture: imports banned third-party ML packages.

Never imported by tests — only parsed by the linter.
"""

import sklearn.linear_model  # noqa: F401
import torch  # noqa: F401
from pandas import DataFrame  # noqa: F401
