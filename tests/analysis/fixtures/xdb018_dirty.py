"""Dirty fixture for XDB018: tasks submitted to the worker pool mutate
shared read-only arena arrays — a cross-process race."""

from xaidb.runtime import WorkerPool, parallel_map, resolve_shared

__all__ = ["scale_rows", "center_rows"]


def _scale_task(task):
    ref, factor = task
    data = resolve_shared(ref)
    data *= factor  # writes into the shared buffer in place
    return data.sum()


def _center_helper(data):
    data -= data.mean()  # summary: mutates 'data'


def _center_task(ref):
    data = resolve_shared(ref)
    _center_helper(data)  # mutation one call boundary down
    return data.sum()


def scale_rows(ref, factors):
    return parallel_map(_scale_task, [(ref, f) for f in factors])  # finding 1


def center_rows(refs):
    pool = WorkerPool.get()
    return pool.map(_center_task, refs, 2)  # finding 2
