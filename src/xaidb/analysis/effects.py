"""Concurrency & determinism effect vectors over the call graph.

The PR 5 runtime (``xaidb.runtime.parallel``) rests on two contracts no
test can see being broken at a distance: tasks submitted to the
persistent :class:`~xaidb.runtime.parallel.WorkerPool` never *mutate* a
``SharedArrayRef``-backed array (workers map one read-only buffer — a
write is a cross-process race), and tasks draw randomness only from
their per-task spawned seed (the bit-identical-for-every-``n_jobs``
guarantee).  The X-SYS serving layer adds a third: async request paths
must not block the event loop.  This module computes, for every
function in the lint corpus, the *effect vector* that makes those
contracts statically checkable:

- ``mutates_shared`` — the function writes (subscript store, augmented
  assignment, ``out=``, or transitively through a callee) into an array
  obtained from the shared arena (``resolve_shared(...)`` /
  ``SharedArrayRef.load()``), directly or any number of call
  boundaries down;
- ``draws_global_rng`` — the function reaches process-global
  randomness or wall-clock state (legacy ``numpy.random.*``, stdlib
  ``random``, ``time.time``, ``os.urandom``, …) instead of a seeded
  ``Generator``, directly or transitively;
- ``may_block`` — the function reaches a blocking call
  (``time.sleep``, ``subprocess``, file/socket I/O, ``.join()`` /
  ``.result()`` / ``.acquire()``, or a model ``fit``/``predict``
  path), directly or transitively;
- ``leaks_resource`` — some CFG path from a ``SharedMemory``
  acquisition reaches the function exit without a ``close``/``unlink``
  or an ownership transfer (the ``releases_resources`` obligation,
  checked over the try/finally edges :mod:`xaidb.analysis.cfg` models).

Effects are *witness strings* (``None`` = effect absent / nothing
provable), so the XDB018–XDB022 rules can say why a task is flagged.
They are computed bottom-up with the rest of the function summaries
(:func:`xaidb.analysis.summaries.summarize_function`, pass D), cached
per SCC under the same Merkle keys, and — like every tier before —
default to claiming nothing: unresolved calls, dynamic scopes and
ambiguous ``finally`` edges all block the proof, never invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from xaidb.analysis.callgraph import (
    CallGraph,
    FunctionNode,
    _own_calls,
    dotted_name,
)
from xaidb.analysis.cfg import CFG, function_cfg
from xaidb.analysis.dataflow import item_exprs, replay, solve_forward

__all__ = [
    "EffectVector",
    "function_effects",
    "direct_block_witness",
    "direct_rng_witness",
    "submission_sites",
    "resolve_task_refs",
    "leaked_acquisitions",
    "SHARED",
]

#: Alias-taint label marking "this value aliases a shared-arena array".
SHARED = "<shared>"

# -- sink tables ------------------------------------------------------------

#: Seeded-construction entry points under ``numpy.random`` that do NOT
#: touch module-level state (building a generator is deterministic; the
#: flow-sensitive XDB010/XDB016 own the literal-seed question).
_RNG_EXEMPT_TAILS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "BitGenerator",
        "RandomState",
        "Random",  # random.Random(seed): an instance, not the module state
    }
)

#: Module prefixes whose calls draw from process-global RNG state.
_RNG_PREFIXES = ("numpy.random.", "random.")

#: Exact dotted calls that read entropy or wall-clock state no seed
#: controls (``perf_counter``/``monotonic`` are deliberately absent:
#: measuring elapsed time in a stats ledger is deterministic-enough and
#: ubiquitous).
_RNG_EXACT = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Exact dotted calls that block the calling thread.
_BLOCK_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "select.select",
    }
)

#: Module prefixes whose calls block (process spawning, sockets, HTTP).
_BLOCK_PREFIXES = (
    "subprocess.",
    "socket.",
    "urllib.request.",
    "http.client.",
)

#: Bare-name calls that block (file I/O / terminal reads).
_BLOCK_NAMES = frozenset({"open", "input"})

#: Method names whose call is a model-evaluation path — the expensive
#: synchronous work an async handler must hop to an executor for.
_BLOCK_MODEL_METHODS = frozenset({"fit", "predict", "predict_proba"})

#: Pool/lock/future synchronisation methods.  ``join`` only counts with
#: zero arguments (``", ".join(parts)`` is string formatting).
_BLOCK_SYNC_METHODS = frozenset({"result", "acquire"})

#: Pooled-submission callables: ``parallel_map(fn, tasks)`` and the
#: ``pool.map(fn, tasks, ...)`` method form.
_SUBMIT_NAMES = frozenset({"parallel_map"})

#: Compound-statement items whose bodies live in *successor* CFG blocks
#: — only their header expressions may be inspected at the item itself.
_HEADER_ITEMS = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.Match,
    ast.Try,
    ast.ExceptHandler,
)

#: Statements that end a basic block without falling through.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass(frozen=True)
class EffectVector:
    """The concurrency/determinism facts of one function, as witnesses
    (``None`` = effect provably absent or nothing provable)."""

    mutates_shared: str | None = None
    draws_global_rng: str | None = None
    may_block: str | None = None
    leaks_resource: str | None = None

    def to_dict(self) -> dict:
        return {
            "mutates_shared": self.mutates_shared,
            "draws_global_rng": self.draws_global_rng,
            "may_block": self.may_block,
            "leaks_resource": self.leaks_resource,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EffectVector":
        def witness(key: str) -> str | None:
            value = data[key]
            if value is not None and not isinstance(value, str):
                raise ValueError(f"{key} must be a string or None")
            return value

        return cls(
            mutates_shared=witness("mutates_shared"),
            draws_global_rng=witness("draws_global_rng"),
            may_block=witness("may_block"),
            leaks_resource=witness("leaks_resource"),
        )


# ---------------------------------------------------------------------------
# direct (syntactic) sink detection
# ---------------------------------------------------------------------------


def _expand(aliases: dict[str, str], dotted: str) -> str:
    """Rewrite the leading segment of ``dotted`` through a module's
    import aliases (``np.zeros`` -> ``numpy.zeros``)."""
    head, _, tail = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return dotted
    return f"{target}.{tail}" if tail else target


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def direct_rng_witness(
    call: ast.Call, aliases: dict[str, str]
) -> str | None:
    """Witness when ``call`` itself reads process-global RNG or
    wall-clock state, resolved through the module's import aliases."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    expanded = _expand(aliases, dotted)
    if expanded in _RNG_EXACT:
        return f"calls {expanded}() at line {call.lineno}"
    tail = expanded.rsplit(".", 1)[-1]
    for prefix in _RNG_PREFIXES:
        if expanded.startswith(prefix) and tail not in _RNG_EXEMPT_TAILS:
            return f"calls {expanded}() at line {call.lineno}"
    return None


def direct_block_witness(
    call: ast.Call, aliases: dict[str, str]
) -> str | None:
    """Witness when ``call`` itself blocks the calling thread."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _BLOCK_NAMES:
        return f"calls {func.id}() at line {call.lineno}"
    dotted = dotted_name(func)
    if dotted is not None:
        expanded = _expand(aliases, dotted)
        if expanded in _BLOCK_EXACT:
            return f"calls {expanded}() at line {call.lineno}"
        for prefix in _BLOCK_PREFIXES:
            if expanded.startswith(prefix):
                return f"calls {expanded}() at line {call.lineno}"
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in _BLOCK_SYNC_METHODS and len(call.args) <= 1:
            return f"calls .{attr}() at line {call.lineno}"
        if attr == "join" and not call.args and not call.keywords:
            return f"calls .join() at line {call.lineno}"
        if attr in _BLOCK_MODEL_METHODS:
            return (
                f"calls the model-evaluation path .{attr}() "
                f"at line {call.lineno}"
            )
    return None


# ---------------------------------------------------------------------------
# pooled-submission sites and task-function references
# ---------------------------------------------------------------------------


def submission_sites(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.Call, ast.AST]]:
    """``(call, task_fn_expr)`` for every pooled-map submission in
    ``fn``'s own body: ``parallel_map(task, ...)`` (possibly
    module-qualified) and the ``pool.map(task, tasks, ...)`` method
    form.  The builtin ``map`` (a bare name) never matches."""
    sites: list[tuple[ast.Call, ast.AST]] = []
    for call in _own_calls(fn):
        if _call_name(call) in _SUBMIT_NAMES and call.args:
            sites.append((call, call.args[0]))
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "map"
            and len(call.args) >= 2
        ):
            sites.append((call, call.args[0]))
    return sites


def resolve_task_refs(
    graph: CallGraph, fnode: FunctionNode, expr: ast.AST
) -> tuple[str, ...]:
    """Corpus qualnames a task-function *reference* (not a call) may
    denote: a module-level function, a (possibly aliased) import of
    one, ``self.method``, or a module-qualified function.  Anything
    else — lambdas, locals, partials — is unresolved (⊤, no claim)."""
    module = fnode.module
    aliases = graph.aliases.get(module, {})
    if isinstance(expr, ast.Name):
        qualname = f"{module}.{expr.id}"
        if qualname in graph.functions:
            return (qualname,)
        target = aliases.get(expr.id)
        if target is not None and target in graph.functions:
            return (target,)
        return ()
    if isinstance(expr, ast.Attribute):
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and fnode.class_name is not None
        ):
            class_fq = f"{module}.{fnode.class_name}"
            return tuple(graph.method_resolution(class_fq, expr.attr))
        dotted = dotted_name(expr)
        if dotted is not None:
            expanded = _expand(aliases, dotted)
            if expanded in graph.functions:
                return (expanded,)
    return ()


# ---------------------------------------------------------------------------
# shared-array mutation (alias taint over the arena sources)
# ---------------------------------------------------------------------------


def _mentions_shared_source(fn: ast.AST) -> bool:
    """Cheap syntactic gate: does ``fn`` load from the shared arena at
    all (``resolve_shared(...)`` / ``.load()``)?"""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name == "resolve_shared" and node.args:
                return True
            if (
                name == "load"
                and isinstance(node.func, ast.Attribute)
                and not node.args
            ):
                return True
    return False


def _shared_mutation_witness(
    fnode: FunctionNode,
    graph: CallGraph,
    summaries: dict,
    calls: list[ast.Call],
    cfg: CFG | None,
) -> str | None:
    # transitive first: a callee that loads-and-mutates on its own
    for call in calls:
        site = graph.callsites.get(id(call))
        if site is None:
            continue
        for qualname in site.candidates:
            summary = summaries.get(qualname)
            if (
                summary is not None
                and summary.effects.mutates_shared is not None
            ):
                return f"via {qualname} at line {call.lineno}"
    if not _mentions_shared_source(fnode.node):
        return None
    # deferred import: summaries imports this module for EffectVector,
    # so the taint machinery has to be pulled in lazily
    from xaidb.analysis.summaries import (
        SharedSourceTaint,
        iter_mutations,
        strip_via,
    )

    if cfg is None:
        cfg = function_cfg(fnode.node)
    taint = SharedSourceTaint(graph, summaries, entry={})
    in_states = solve_forward(cfg, taint)
    witness: list[str] = []

    def visit(item: ast.AST, state) -> None:
        if witness:
            return
        for labels, node, kind, detail in iter_mutations(
            item, state, taint, graph, summaries
        ):
            if not any(strip_via(label) == SHARED for label in labels):
                continue
            if kind == "callee":
                callee = detail.rpartition(":")[0]
                witness.append(
                    f"passes a shared array to {callee}, which "
                    f"mutates it, at line {node.lineno}"
                )
            else:
                witness.append(
                    f"writes into a shared array at line {node.lineno}"
                )
            return

    replay(cfg, taint, in_states, visit)
    return witness[0] if witness else None


# ---------------------------------------------------------------------------
# resource-release obligation (SharedMemory acquisitions)
# ---------------------------------------------------------------------------


def _acquisition_bindings(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.Assign, str]]:
    """``(assign, name)`` for every simple ``name = SharedMemory(...)``
    binding in ``fn``, excluding any inside a ``try`` that has
    ``except`` handlers — there the conservative exception edges make
    "the acquisition itself failed" indistinguishable from "acquired
    then leaked", so nothing is provable."""
    found: list[tuple[ast.Assign, str]] = []

    def scan(stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                inner = guarded or bool(stmt.handlers)
                scan(stmt.body, inner)
                scan(stmt.orelse, inner)
                for handler in stmt.handlers:
                    scan(handler.body, inner)
                scan(stmt.finalbody, inner)
                continue
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue  # separate scopes with their own CFGs
            if (
                not guarded
                and isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and _call_name(stmt.value) == "SharedMemory"
            ):
                found.append((stmt, stmt.targets[0].id))
            for field in ("body", "orelse", "cases"):
                children = getattr(stmt, field, None)
                if not children:
                    continue
                if field == "cases":
                    for case in children:
                        scan(case.body, guarded)
                else:
                    scan(children, guarded)

    scan(fn.body, False)
    return found


def _mentions(item: ast.AST, name: str) -> bool:
    """Whether ``item`` (a CFG item) evaluates any expression reading
    ``name`` — header items contribute only their header expressions."""
    if isinstance(item, _HEADER_ITEMS):
        roots = list(item_exprs(item))
    else:
        roots = [item]
    return any(
        isinstance(node, ast.Name) and node.id == name
        for root in roots
        for node in ast.walk(root)
    )


def _path_leaks(cfg: CFG, name: str, block_id: int, index: int) -> bool:
    """True when some CFG path from ``(block_id, index)`` reaches the
    function exit without ever mentioning ``name`` again (no release,
    no escape, no rebinding).  A terminator with multiple successors
    (``return``/``raise`` under a ``finally``) blocks the proof — the
    direct exit edge is the builder's over-approximation."""
    stack = [(block_id, index)]
    seen: set[tuple[int, int]] = set()
    while stack:
        current, start = stack.pop()
        if (current, start) in seen:
            continue
        seen.add((current, start))
        if current == cfg.exit:
            return True
        block = cfg.blocks[current]
        if any(_mentions(item, name) for item in block.items[start:]):
            continue  # released / escaped / rebound on this path
        if (
            block.items
            and isinstance(block.items[-1], _TERMINATORS)
            and len(block.succs) > 1
        ):
            continue  # ambiguous finally edges: prove nothing past them
        for succ in block.succs:
            stack.append((succ, 0))
    return False


def leaked_acquisitions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    cfg: CFG | None = None,
) -> list[tuple[ast.Assign, str]]:
    """Acquisitions in ``fn`` with a provable path to the function exit
    on which the segment is neither closed/unlinked nor handed off."""
    acquisitions = _acquisition_bindings(fn)
    if not acquisitions:
        return []
    if cfg is None:
        cfg = function_cfg(fn)
    location: dict[int, tuple[int, int]] = {}
    for block in cfg.blocks.values():
        for index, item in enumerate(block.items):
            location[id(item)] = (block.id, index)
    leaked: list[tuple[ast.Assign, str]] = []
    for item, name in acquisitions:
        loc = location.get(id(item))
        if loc is None:
            continue  # unreachable code: claim nothing
        if _path_leaks(cfg, name, loc[0], loc[1] + 1):
            leaked.append((item, name))
    return leaked


# ---------------------------------------------------------------------------
# the per-function effect vector (summary pass D)
# ---------------------------------------------------------------------------


def function_effects(
    fnode: FunctionNode,
    graph: CallGraph,
    summaries: dict,
    cfg: CFG | None = None,
) -> EffectVector:
    """Compute ``fnode``'s effect vector given its callees' summaries
    (bottom-up over the SCC condensation, like every other summary
    fact).  ``summaries`` maps qualnames to
    :class:`~xaidb.analysis.summaries.FunctionSummary`."""
    fn = fnode.node
    aliases = graph.aliases.get(fnode.module, {})
    calls = _own_calls(fn)
    draws: str | None = None
    blocks: str | None = None
    for call in calls:
        if draws is None:
            draws = direct_rng_witness(call, aliases)
        if blocks is None:
            blocks = direct_block_witness(call, aliases)
        if draws is not None and blocks is not None:
            break
        site = graph.callsites.get(id(call))
        if site is None:
            continue
        for qualname in site.candidates:
            summary = summaries.get(qualname)
            if summary is None:
                continue
            if draws is None and summary.effects.draws_global_rng:
                draws = f"via {qualname} at line {call.lineno}"
            if blocks is None and summary.effects.may_block:
                blocks = f"via {qualname} at line {call.lineno}"
    mutates = _shared_mutation_witness(
        fnode, graph, summaries, calls, cfg
    )
    leaks: str | None = None
    leaked = leaked_acquisitions(fn, cfg)
    if leaked:
        node, name = leaked[0]
        leaks = (
            f"SharedMemory bound to '{name}' at line {node.lineno} "
            f"may reach the function exit unreleased"
        )
    return EffectVector(
        mutates_shared=mutates,
        draws_global_rng=draws,
        may_block=blocks,
        leaks_resource=leaks,
    )
