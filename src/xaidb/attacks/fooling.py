"""Fooling LIME and SHAP: the scaffolding attack (Slack et al. 2020).

LIME and KernelSHAP query the model on *synthetic perturbations* that are
often far off the data manifold.  An adversary exploits this by deploying
a scaffold:

    scaffold(x) = biased_model(x)      if x looks like real data
                  innocuous_model(x)   if x looks like a perturbation

The deployed behaviour on real inputs is fully biased (e.g. decisions
driven by ``race``), yet the explainer — whose probes are routed to the
innocuous model — reports an innocent feature as most important.
Experiment E19 reproduces the paper's headline table: the fraction of
instances whose top-1 LIME/SHAP feature is the sensitive one, with and
without the scaffold.

The out-of-distribution detector is a random forest trained to separate
real rows from explainer-style perturbations, exactly the paper's
construction, with one engineered feature doing the heavy lifting: the
distance to the nearest real training row (marginal perturbations break
feature correlations, so they land measurably farther from the manifold).
"""

from __future__ import annotations

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.data.perturbation import LimeTabularSampler
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.models.forest import RandomForestClassifier
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["OODDetector", "train_ood_detector", "ScaffoldedClassifier"]


class OODDetector:
    """Real-vs-perturbed classifier over raw features + manifold distance.

    ``predict_proba(X)[:, 1]`` is the probability a row is *real* data.
    """

    def __init__(
        self,
        forest: RandomForestClassifier,
        reference: np.ndarray,
        scale: np.ndarray,
    ) -> None:
        self._forest = forest
        self._reference = reference
        self._scale = scale

    def _augment(self, X: np.ndarray, *, exclude_self: bool = False) -> np.ndarray:
        scaled = X / self._scale
        distances = pairwise_distances(scaled, self._reference)
        if exclude_self:
            # during training, a real row's nearest neighbour must not be
            # itself, or the feature leaks the label
            np.fill_diagonal(distances, np.inf)
        nearest = distances.min(axis=1)
        return np.column_stack([X, nearest])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X, name="X", ndim=2)
        return self._forest.predict_proba(self._augment(X))


def train_ood_detector(
    dataset: Dataset,
    *,
    n_perturbations_per_row: int = 1,
    n_estimators: int = 50,
    max_depth: int | None = 10,
    style: str = "lime",
    random_state: RandomState = None,
) -> OODDetector:
    """Train a real-vs-perturbed detector on the attacker's data.

    ``style`` selects the synthetic distribution the detector must catch
    — the attack is only as good as this match (Slack et al. train one
    detector per target explainer):

    - ``"lime"``: marginal perturbations from
      :class:`~xaidb.data.perturbation.LimeTabularSampler` (LIME's probes);
    - ``"shap"``: coordinate-masked hybrids of two real rows —
      KernelSHAP's marginal-imputation probes;
    - ``"both"``: the union.

    Classes are balanced so the 0.5 routing threshold is meaningful.
    """
    if n_perturbations_per_row < 1:
        raise ValidationError("n_perturbations_per_row must be >= 1")
    if style not in ("lime", "shap", "both"):
        raise ValidationError("style must be 'lime', 'shap' or 'both'")
    rng = check_random_state(random_state)
    sampler = LimeTabularSampler(dataset)
    real_rows = dataset.X
    scale = np.maximum(real_rows.std(axis=0), 1e-9)
    synthetic_blocks = []
    if style in ("lime", "both"):
        for row in real_rows:
            perturbed, __ = sampler.sample(
                row, n_perturbations_per_row + 1, random_state=rng
            )
            synthetic_blocks.append(perturbed[1:])  # row 0 is the instance
    if style in ("shap", "both"):
        # non-degenerate hybrids only: a mask taking (almost) everything
        # from one parent reproduces a real row and would poison the
        # detector's labels
        d = real_rows.shape[1]
        n_hybrids = len(real_rows) * n_perturbations_per_row
        left = real_rows[rng.integers(0, len(real_rows), size=n_hybrids)]
        right = real_rows[rng.integers(0, len(real_rows), size=n_hybrids)]
        masks = rng.random(size=left.shape) < 0.5
        counts = masks.sum(axis=1)
        degenerate = (counts < 2) | (counts > d - 2)
        while degenerate.any():
            masks[degenerate] = rng.random(size=(int(degenerate.sum()), d)) < 0.5
            counts = masks.sum(axis=1)
            degenerate = (counts < 2) | (counts > d - 2)
        synthetic_blocks.append(np.where(masks, left, right))
    synthetic = np.vstack(synthetic_blocks)
    # xailint: disable=XDB023 (dataset.X is validated non-empty, so len(real_rows) >= 1)
    replication = max(1, round(len(synthetic) / len(real_rows)))

    detector = OODDetector(
        RandomForestClassifier(
            n_estimators=n_estimators, max_depth=max_depth, random_state=rng
        ),
        reference=real_rows / scale,
        scale=scale,
    )
    # training features: real rows use leave-self-out nearest neighbour
    real_features = detector._augment(real_rows, exclude_self=True)
    real_features = np.repeat(real_features, replication, axis=0)
    synthetic_features = detector._augment(synthetic)
    X = np.vstack([real_features, synthetic_features])
    y = np.concatenate(
        [np.ones(len(real_features)), np.zeros(len(synthetic_features))]
    )
    detector._forest.fit(X, y)
    return detector


class ScaffoldedClassifier:
    """The adversarial scaffold routing queries by OOD detection.

    Parameters
    ----------
    biased_fn:
        The model actually deployed on real inputs (scores in [0, 1]).
    innocuous_fn:
        The cover story shown to explainers.
    detector:
        Real-vs-perturbed classifier from :func:`train_ood_detector`.
    threshold:
        Minimum detector probability of "real" to route to the biased
        model.
    """

    def __init__(
        self,
        biased_fn: PredictFn,
        innocuous_fn: PredictFn,
        detector: OODDetector,
        *,
        threshold: float = 0.5,
    ) -> None:
        self.biased_fn = biased_fn
        self.innocuous_fn = innocuous_fn
        self.detector = detector
        self.threshold = threshold

    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Scores routed per-row through the scaffold."""
        X = check_array(X, name="X", ndim=2)
        looks_real = self.detector.predict_proba(X)[:, 1] >= self.threshold
        out = np.empty(X.shape[0])
        if looks_real.any():
            out[looks_real] = np.asarray(self.biased_fn(X[looks_real]))
        if (~looks_real).any():
            out[~looks_real] = np.asarray(self.innocuous_fn(X[~looks_real]))
        return out

    def routing_fraction(self, X: np.ndarray) -> float:
        """Fraction of rows the scaffold would route to the biased model
        (diagnostics: ~1.0 on real data, ~0.0 on perturbations)."""
        X = check_array(X, name="X", ndim=2)
        looks_real = self.detector.predict_proba(X)[:, 1] >= self.threshold
        return float(looks_real.mean())
