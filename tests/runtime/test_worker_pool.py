"""The persistent WorkerPool: shared-memory round-trips, warm-worker
reuse accounting, and the bit-identical-for-every-``n_jobs`` contract."""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.runtime import (
    EvalStats,
    SharedArrayRef,
    WorkerPool,
    parallel_map,
    resolve_shared,
)


def _seeded_draw(seed: int) -> np.ndarray:  # module-level: picklable
    return np.random.default_rng(seed).normal(size=3)


def _shared_row_sum(task) -> float:  # module-level: picklable
    payload, index = task
    return float(resolve_shared(payload)[index].sum())


def _mutate_shared(task):  # module-level: picklable, and wrong on purpose
    payload, value = task
    resolve_shared(payload)[0, 0] = value
    return value


@pytest.fixture()
def fresh_pool():
    """A cold singleton for tests that assert on reuse counters, with
    guaranteed cleanup of workers and shared segments."""
    WorkerPool.close_global()
    yield WorkerPool.get()
    WorkerPool.close_global()


# ------------------------------------------------------------ determinism
def test_results_bit_identical_across_n_jobs(fresh_pool):
    seeds = list(range(20))
    reference = [_seeded_draw(seed) for seed in seeds]
    for n_jobs in (None, 1, 4):
        results = parallel_map(_seeded_draw, seeds, n_jobs=n_jobs)
        assert len(results) == len(reference)
        for got, want in zip(results, reference):
            assert np.array_equal(got, want)


# ------------------------------------------------------------ shared arena
def test_shared_array_round_trip(fresh_pool):
    array = np.arange(12, dtype=float).reshape(4, 3)
    ref = fresh_pool.share(array)
    assert isinstance(ref, SharedArrayRef)
    loaded = ref.load()
    assert np.array_equal(loaded, array)
    assert not loaded.flags.writeable  # read-only view, by contract
    # identity passthrough for plain arrays
    assert resolve_shared(array) is array
    assert np.array_equal(resolve_shared(ref), array)


def test_share_is_memoised_per_source_object(fresh_pool):
    array = np.ones((5, 2))
    assert fresh_pool.share(array) is fresh_pool.share(array)
    assert fresh_pool.n_shared_arrays == 1


def test_shared_payload_crosses_process_boundary(fresh_pool):
    array = np.arange(20, dtype=float).reshape(5, 4)
    ref = fresh_pool.share(array)
    tasks = [(ref, i) for i in range(5)]
    serial = parallel_map(
        _shared_row_sum, [(array, i) for i in range(5)]
    )
    pooled = parallel_map(_shared_row_sum, tasks, n_jobs=2)
    assert pooled == serial == [float(row.sum()) for row in array]


# ------------------------------------------------------------ reuse ledger
def test_pool_reuse_counted_on_second_map(fresh_pool):
    stats = EvalStats()
    parallel_map(_seeded_draw, list(range(6)), n_jobs=2, stats=stats)
    assert stats.n_pool_reuses == 0  # cold start paid the spawn
    parallel_map(_seeded_draw, list(range(6)), n_jobs=2, stats=stats)
    assert stats.n_pool_reuses == 1  # warm workers served this one
    assert fresh_pool.n_maps == 2
    assert fresh_pool.n_pool_reuses == 1


def test_pool_grows_without_losing_reuse_semantics(fresh_pool):
    parallel_map(_seeded_draw, list(range(4)), n_jobs=2)
    stats = EvalStats()
    # asking for more workers than the pool holds forces a respawn
    parallel_map(_seeded_draw, list(range(8)), n_jobs=4, stats=stats)
    assert stats.n_pool_reuses == 0
    parallel_map(_seeded_draw, list(range(4)), n_jobs=2, stats=stats)
    assert stats.n_pool_reuses == 1  # smaller requests ride the big pool


def test_repeated_data_shapley_fits_reuse_warm_pool(fresh_pool):
    """The acceptance contract: a second pooled explainer call must be
    served by already-warm workers, visible in its stats ledger — and
    stay bit-identical to the serial path."""
    from xaidb.datavaluation import DataShapley, UtilityFunction
    from xaidb.models import KNeighborsClassifier

    rng = np.random.default_rng(17)
    X = rng.normal(size=(18, 3))
    y = (X[:, 0] > 0).astype(int)
    X_valid = rng.normal(size=(12, 3))
    y_valid = (X_valid[:, 0] > 0).astype(int)
    utility = UtilityFunction(
        KNeighborsClassifier(n_neighbors=3), X_valid, y_valid
    )
    pooled = DataShapley(
        utility, X, y, n_permutations=4, n_jobs=2
    )
    pooled.fit(random_state=3)
    first = pooled.values_.copy()
    pooled.fit(random_state=3)
    assert pooled.stats_.n_pool_reuses > 0
    assert np.array_equal(pooled.values_, first)
    serial = DataShapley(utility, X, y, n_permutations=4).fit(
        random_state=3
    )
    assert np.array_equal(serial.values_, pooled.values_)
    # the training arrays crossed the boundary via the shared arena
    assert fresh_pool.n_shared_arrays == 2


# ------------------------------------------------------------ contract edges
def test_task_mutating_shared_array_raises_not_corrupts(fresh_pool):
    """The arena is read-only by contract; a task that writes anyway
    must fail loudly (ValueError is *not* a pool-fallback failure) and
    leave the shared buffer unscathed for every other worker."""
    array = np.arange(6, dtype=float).reshape(2, 3)
    ref = fresh_pool.share(array)
    with pytest.raises(ValueError):
        parallel_map(_mutate_shared, [(ref, 99.0), (ref, 98.0)], n_jobs=2)
    assert np.array_equal(ref.load(), array)


def test_unpicklable_task_counts_a_serial_fallback(fresh_pool):
    stats = EvalStats()
    results = parallel_map(
        lambda seed: seed * 2, list(range(5)), n_jobs=2, stats=stats
    )
    assert results == [0, 2, 4, 6, 8]  # identical verdict, serial path
    assert stats.n_serial_fallbacks == 1
    assert stats.n_pool_reuses == 0
    assert "n_serial_fallbacks" in stats.as_metadata()


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_bit_identity_under_both_start_methods(method, monkeypatch):
    """The determinism contract cannot depend on how workers are born:
    fork inherits the parent heap, spawn re-imports from scratch, and
    ``parallel_map`` must be bit-identical under both (and serial)."""
    import multiprocessing

    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable here")
    WorkerPool.close_global()  # the env hook only binds at pool creation
    monkeypatch.setenv("XAIDB_POOL_START_METHOD", method)
    try:
        seeds = list(range(8))
        reference = [_seeded_draw(seed) for seed in seeds]
        for n_jobs in (None, 1, 4):
            results = parallel_map(_seeded_draw, seeds, n_jobs=n_jobs)
            for got, want in zip(results, reference):
                assert np.array_equal(got, want)
        pool = WorkerPool.get()
        assert pool.n_maps == 1  # the n_jobs=4 map really used the pool
    finally:
        WorkerPool.close_global()


# ------------------------------------------------------------ lifecycle
def test_close_unlinks_segments_and_resets_singleton(fresh_pool):
    ref = fresh_pool.share(np.zeros(4))
    WorkerPool.close_global()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ref.name)
    replacement = WorkerPool.get()
    assert replacement is not fresh_pool
    assert replacement.n_shared_arrays == 0
