"""Exception hierarchy for :mod:`xaidb`.

All library-raised errors derive from :class:`XaidbError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` from bad API misuse caught
early by validation helpers raises :class:`ValidationError`, a subclass of
both :class:`XaidbError` and :class:`ValueError`).
"""

from __future__ import annotations

__all__ = [
    "XaidbError",
    "ValidationError",
    "NotFittedError",
    "ConvergenceError",
    "InfeasibleError",
    "SchemaError",
    "ProvenanceError",
]


class XaidbError(Exception):
    """Base class for every error raised by xaidb."""


class ValidationError(XaidbError, ValueError):
    """An argument failed validation (shape, dtype, range or consistency)."""


class NotFittedError(XaidbError, RuntimeError):
    """A model or explainer was used before :meth:`fit` was called."""


class ConvergenceError(XaidbError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class InfeasibleError(XaidbError, RuntimeError):
    """A search problem (e.g. counterfactual generation under constraints)
    has no feasible solution within the configured budget."""


class SchemaError(XaidbError, ValueError):
    """A relational operation referenced columns or types that do not exist
    or are incompatible."""


class ProvenanceError(XaidbError, RuntimeError):
    """Provenance information was requested but is unavailable (for example
    the relation was constructed without lineage tracking)."""
