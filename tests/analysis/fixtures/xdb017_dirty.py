"""Dirty fixture for XDB017: an explain method hands a caller-owned
array to a helper that mutates it, and returns a helper's view of one
(XDB003/XDB011 cannot see either; the summaries can)."""

import numpy as np

__all__ = ["normalise_inplace", "head_view", "Explainer"]


def normalise_inplace(arr):
    arr[:] = arr / arr.sum()  # summary: mutates 'arr'


def head_view(x):
    return x[:2]  # summary: returns a view of 'x'


class Explainer:
    def explain(self, X):
        normalise_inplace(X)  # finding 1: caller's buffer rewritten
        return np.abs(X) * 1.0

    def explain_head(self, X):
        top = head_view(X)
        return top  # finding 2: helper's view of X escapes
