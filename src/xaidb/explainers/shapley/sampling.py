"""Permutation-sampling (Monte-Carlo) Shapley estimation.

The classic unbiased estimator: draw random player orderings, accumulate
each player's marginal contribution when it joins the coalition of its
predecessors.  With antithetic sampling every permutation is paired with
its reverse, which cancels a large share of the variance at no extra
model cost.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.games import CachedGame, Game, MarginalImputationGame
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["permutation_shapley_values", "PermutationShapleyExplainer"]


def permutation_shapley_values(
    game: Game,
    n_permutations: int = 200,
    *,
    antithetic: bool = True,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo Shapley values.

    Returns
    -------
    (phi, standard_errors):
        Estimated values and their per-player Monte-Carlo standard errors
        (over permutations).
    """
    if n_permutations < 1:
        raise ValidationError("n_permutations must be >= 1")
    rng = check_random_state(random_state)
    cached = game if isinstance(game, CachedGame) else CachedGame(game)
    n = game.n_players
    contributions: list[np.ndarray] = []
    n_draws = (n_permutations + 1) // 2 if antithetic else n_permutations

    def walk(order: np.ndarray) -> np.ndarray:
        marginal = np.zeros(n)
        coalition: list[int] = []
        previous = cached.value(())
        for player in order:
            coalition.append(int(player))
            current = cached.value(coalition)
            marginal[int(player)] = current - previous
            previous = current
        return marginal

    for _ in range(n_draws):
        order = rng.permutation(n)
        contributions.append(walk(order))
        if antithetic:
            contributions.append(walk(order[::-1]))
    samples = np.asarray(contributions[:n_permutations])
    phi = samples.mean(axis=0)
    if len(samples) > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(len(samples))
    else:
        errors = np.full(n, np.nan)
    return phi, errors


class PermutationShapleyExplainer(Explainer):
    """SHAP values by permutation sampling over the marginal-imputation
    game (the model-agnostic fallback when features are too many for
    exact enumeration and KernelSHAP's regression is unwanted)."""

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        n_permutations: int = 200,
        antithetic: bool = True,
        feature_names: list[str] | None = None,
    ) -> None:
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.n_permutations = n_permutations
        self.antithetic = antithetic
        self.feature_names = feature_names

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        game = CachedGame(
            MarginalImputationGame(self.predict_fn, instance, self.background)
        )
        phi, errors = permutation_shapley_values(
            game,
            self.n_permutations,
            antithetic=self.antithetic,
            random_state=random_state,
        )
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=game.empty_value(),
            prediction=game.grand_value(),
            metadata={
                "method": "permutation_shapley",
                "standard_errors": errors.tolist(),
                "n_permutations": self.n_permutations,
                "n_coalitions_evaluated": game.n_evaluations,
            },
        )
