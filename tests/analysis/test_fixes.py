"""``xailint --fix``: XDB012 stale/dangling suppressions are deleted,
the fix is idempotent, and ``--dry-run`` only prints the diff."""

from __future__ import annotations

from pathlib import Path

import pytest

from xaidb.analysis.cli import main
from xaidb.analysis.engine import run_paths
from xaidb.analysis.fixes import apply_fixes, plan_fixes

DIRTY = '''\
import numpy as np

# xailint: disable=XDB002 (the violation below is long gone)
def mean_of(xs):
    return float(np.mean(np.asarray(xs, dtype=float)))


def scaled(xs):
    total = np.asarray(xs, dtype=float).sum()
    # xailint: disable=XDB006 (dangling: nothing follows)
'''

#: What --fix must leave behind: both bad comments gone, code intact.
CLEAN = '''\
import numpy as np

def mean_of(xs):
    return float(np.mean(np.asarray(xs, dtype=float)))


def scaled(xs):
    total = np.asarray(xs, dtype=float).sum()
'''


@pytest.fixture()
def dirty_tree(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(DIRTY, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _scan(root: Path):
    return run_paths(["module.py"], root=root, cache_path=None)


def test_plan_targets_stale_and_dangling_only(dirty_tree):
    result = _scan(dirty_tree)
    assert {f.rule_id for f in result.findings} >= {"XDB012"}
    fixes = plan_fixes(result.findings, dirty_tree)
    assert len(fixes) == 1
    assert fixes[0].drop_lines == {3, 10}
    assert not fixes[0].strip_lines


def test_apply_fixes_rewrites_and_rescans_clean(dirty_tree):
    result = _scan(dirty_tree)
    report = apply_fixes(result.findings, dirty_tree)
    assert report.n_files == 1
    assert report.n_findings == 2
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == CLEAN
    rescan = _scan(dirty_tree)
    assert not [f for f in rescan.findings if f.rule_id == "XDB012"]


def test_apply_fixes_is_idempotent(dirty_tree):
    apply_fixes(_scan(dirty_tree).findings, dirty_tree)
    first = (dirty_tree / "module.py").read_text(encoding="utf-8")
    second_report = apply_fixes(_scan(dirty_tree).findings, dirty_tree)
    assert second_report.n_findings == 0
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == first


def test_trailing_stale_comment_keeps_the_code(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(
        "x = 1  # xailint: disable=XDB002 (stale trailing comment)\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    report = apply_fixes(_scan(tmp_path).findings, tmp_path)
    assert report.n_findings == 1
    assert target.read_text(encoding="utf-8") == "x = 1\n"


def test_partial_stale_multi_id_comment_survives(tmp_path, monkeypatch):
    # XDB007 still fires on the target line, so the comment is only
    # *partially* stale and must be kept verbatim
    target = tmp_path / "module.py"
    target.write_text(
        "# xailint: disable=XDB002,XDB007 (one id is live)\n"
        "def f(bucket=[]):\n"
        "    return bucket\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    original = target.read_text(encoding="utf-8")
    report = apply_fixes(_scan(tmp_path).findings, tmp_path)
    assert report.n_findings == 0
    assert target.read_text(encoding="utf-8") == original


def test_cli_fix_dry_run_prints_diff_without_writing(
    dirty_tree, capsys
):
    assert main(["--fix", "--dry-run", "module.py", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "--- a/module.py" in out
    assert "+++ b/module.py" in out
    assert "-# xailint: disable=XDB002" in out
    assert "would remove 2 suppression comment(s)" in out
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == DIRTY


def test_cli_fix_applies_and_reports(dirty_tree, capsys):
    assert main(["--fix", "module.py", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "fixed 2 suppression comment(s) in 1 file(s)" in out
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == CLEAN


def test_cli_dry_run_without_fix_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--dry-run", "src"])
    assert excinfo.value.code == 2
