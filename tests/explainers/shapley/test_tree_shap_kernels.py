"""The vectorized explainer kernels (benchmark A15's substrate).

Three contracts, each pinned bitwise:

- the arena-wide path-dependent TreeSHAP kernel equals the retained
  recursion on every row (random trees depth 0-12 with threshold ties,
  NaN rows and single-node trees, plus fitted forests and GBMs), and
  matches the brute-force Shapley over ``tree_expected_value`` on small
  trees;
- the vectorized interventional kernel equals the retained
  per-background recursion;
- the stacked KernelSHAP batch solve equals the retained per-instance
  pipeline in both the exhaustive and sampled regimes, for any
  ``n_jobs``, with the coalition-mask arena shipping masks to workers
  as shared-memory references.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from xaidb.explainers.shapley import (
    KernelShapExplainer,
    TreeShapExplainer,
    banzhaf_values_sampled,
    ensemble_interventional_shap,
    ensemble_path_dependent_shap,
    interventional_tree_shap,
    shap_matrix,
)
from xaidb.explainers.shapley.coalitions import (
    clear_design_cache,
    design_cache_info,
    kernel_shap_design,
)
from xaidb.explainers.shapley.games import CachedGame, Game, MarginalImputationGame
from xaidb.explainers.shapley.tree import path_dependent_tree_shap, tree_expected_value
from xaidb.models import RandomForestRegressor
from xaidb.models.tree import TreeStructure, _LEAF
from xaidb.models.tree_kernels import EnsembleKernel
from xaidb.runtime import GameRuntime, RuntimeConfig, WorkerPool
from xaidb.utils.combinatorics import shapley_subset_weight
from xaidb.utils.rng import check_random_state


# ------------------------------------------------------------------
# synthetic trees: depth 0-12, tied thresholds, exercised with NaN rows
# ------------------------------------------------------------------
def random_tree(rng, d, max_depth):
    """A random :class:`TreeStructure` with quantized thresholds (so
    ``x == threshold`` ties actually occur) and consistent covers."""
    children_left, children_right = [], []
    feature, threshold, value, cover = [], [], [], []

    def build(depth, n_samples):
        node = len(feature)
        children_left.append(_LEAF)
        children_right.append(_LEAF)
        feature.append(-2)
        threshold.append(np.nan)
        value.append(rng.normal())
        cover.append(n_samples)
        if depth >= max_depth or n_samples < 2 or rng.random() < 0.2:
            return node
        left_samples = int(rng.integers(1, n_samples))
        feature[node] = int(rng.integers(0, d))
        threshold[node] = float(rng.integers(-2, 3)) / 2.0
        children_left[node] = build(depth + 1, left_samples)
        children_right[node] = build(depth + 1, n_samples - left_samples)
        return node

    build(0, int(rng.integers(50, 400)))
    return TreeStructure(
        children_left=np.asarray(children_left),
        children_right=np.asarray(children_right),
        feature=np.asarray(feature),
        threshold=np.asarray(threshold),
        value=np.asarray(value)[:, None],
        n_node_samples=np.asarray(cover),
    )


def random_rows(rng, n, d):
    """Quantized rows (to hit threshold ties) with some NaN entries
    (NaN fails every ``<=`` split, i.e. always goes right)."""
    X = rng.integers(-2, 3, size=(n, d)).astype(float) / 2.0
    nan_mask = rng.random(size=X.shape) < 0.1
    X[nan_mask] = np.nan
    return X


def brute_force_path_dependent(tree, leaf_values, x, d):
    """Exact Shapley over the EXPVALUE conditional-expectation game."""
    phi = np.zeros(d)
    for i in range(d):
        others = [p for p in range(d) if p != i]
        for size in range(d):
            weight = shapley_subset_weight(size, d)
            for subset in combinations(others, size):
                gain = tree_expected_value(
                    tree, leaf_values, x, subset + (i,)
                ) - tree_expected_value(tree, leaf_values, x, subset)
                phi[i] += weight * gain
    return phi


class TestArenaPathDependent:
    def test_matches_brute_force_small_trees(self):
        rng = np.random.default_rng(11)
        d = 4
        for __ in range(6):
            tree = random_tree(rng, d, max_depth=4)
            leaf_values = tree.value[:, 0]
            pack = EnsembleKernel.for_terms([(tree, leaf_values, 1.0)])
            X = random_rows(rng, 4, d)
            X = X[~np.isnan(X).any(axis=1)]  # EXPVALUE oracle is NaN-free
            if X.shape[0] == 0:
                continue
            phi = ensemble_path_dependent_shap(pack, X, d)
            for row in range(X.shape[0]):
                slow = brute_force_path_dependent(tree, leaf_values, X[row], d)
                assert np.allclose(phi[row], slow, atol=1e-10)

    @pytest.mark.parametrize("max_depth", [0, 1, 3, 6, 9, 12])
    def test_bitwise_vs_recursion_random_trees(self, max_depth):
        rng = np.random.default_rng(100 + max_depth)
        d = 6
        for __ in range(4):
            tree = random_tree(rng, d, max_depth=max_depth)
            leaf_values = tree.value[:, 0]
            pack = EnsembleKernel.for_terms([(tree, leaf_values, 1.0)])
            X = random_rows(rng, 12, d)
            phi = ensemble_path_dependent_shap(pack, X, d)
            for row in range(X.shape[0]):
                reference = path_dependent_tree_shap(
                    tree, leaf_values, X[row], d
                )
                assert np.array_equal(phi[row], reference)

    def test_single_node_tree_attributes_nothing(self):
        rng = np.random.default_rng(0)
        tree = random_tree(rng, 3, max_depth=0)
        assert tree.node_count == 1
        pack = EnsembleKernel.for_terms([(tree, tree.value[:, 0], 1.0)])
        phi = ensemble_path_dependent_shap(pack, np.zeros((5, 3)), 3)
        assert np.array_equal(phi, np.zeros((5, 3)))

    def test_multi_tree_arena_replays_scaled_sum(self):
        rng = np.random.default_rng(21)
        d = 5
        terms = []
        for t in range(7):
            tree = random_tree(rng, d, max_depth=5)
            terms.append((tree, tree.value[:, 0], 0.1 + 0.05 * t))
        pack = EnsembleKernel.for_terms(terms)
        X = random_rows(rng, 20, d)
        phi = ensemble_path_dependent_shap(pack, X, d)
        for row in range(X.shape[0]):
            reference = np.zeros(d)
            for tree, leaf_values, scale in terms:
                reference += scale * path_dependent_tree_shap(
                    tree, leaf_values, X[row], d
                )
            assert np.array_equal(phi[row], reference)

    def test_row_blocking_does_not_change_results(self):
        rng = np.random.default_rng(33)
        d = 4
        tree = random_tree(rng, d, max_depth=6)
        pack = EnsembleKernel.for_terms([(tree, tree.value[:, 0], 1.0)])
        X = random_rows(rng, 30, d)
        whole = ensemble_path_dependent_shap(pack, X, d)
        blocked = ensemble_path_dependent_shap(pack, X, d, row_block=7)
        assert np.array_equal(whole, blocked)


class TestExplainBatchOnFittedModels:
    def test_forest_batch_bitwise_equals_per_row(self, income, income_forest):
        explainer = TreeShapExplainer(income_forest)
        X = income.dataset.X[:40]
        batch = explainer.explain_batch(X)
        for i in range(X.shape[0]):
            single = explainer.explain(X[i])
            assert np.array_equal(batch[i].values, single.values)
            assert batch[i].base_value == single.base_value
            assert batch[i].prediction == single.prediction

    def test_gbm_batch_bitwise_equals_per_row(self, income, income_gbm):
        explainer = TreeShapExplainer(income_gbm)
        X = income.dataset.X[:25]
        batch = explainer.explain_batch(X)
        for i in range(X.shape[0]):
            assert np.array_equal(
                batch[i].values, explainer.explain(X[i]).values
            )

    def test_forest_regressor_batch(self, regression_data):
        X, y, __ = regression_data
        model = RandomForestRegressor(
            n_estimators=8, max_depth=4, random_state=3
        ).fit(X, y)
        explainer = TreeShapExplainer(model)
        batch = explainer.explain_batch(X[:15])
        for i in range(15):
            assert np.array_equal(
                batch[i].values, explainer.explain(X[i]).values
            )

    def test_batch_metadata_and_seed_tolerance(self, income, income_forest):
        explainer = TreeShapExplainer(income_forest)
        X = income.dataset.X[:3]
        batch = explainer.explain_batch(X, seeds=[1, 2, 3])
        assert batch[0].metadata["batched"] is True
        assert batch[0].metadata["method"] == "tree_shap_path_dependent"

    def test_shap_matrix_routes_bound_explain_through_batch(
        self, income, income_forest
    ):
        explainer = TreeShapExplainer(income_forest)
        X = income.dataset.X[:10]
        routed = shap_matrix(explainer.explain, X)
        per_row = np.vstack(
            [explainer.explain(row).values for row in X]
        )
        assert np.array_equal(routed, per_row)


class TestArenaInterventional:
    def test_bitwise_vs_recursion_random_trees(self):
        rng = np.random.default_rng(55)
        d = 5
        for __ in range(5):
            tree = random_tree(rng, d, max_depth=6)
            leaf_values = tree.value[:, 0]
            pack = EnsembleKernel.for_terms([(tree, leaf_values, 1.0)])
            finite = random_rows(rng, 14, d)
            finite = finite[~np.isnan(finite).any(axis=1)]
            if finite.shape[0] < 3:
                continue
            x, background = finite[0], finite[1:]
            fast = ensemble_interventional_shap(pack, x, background)
            reference = interventional_tree_shap(
                tree, leaf_values, x, background
            )
            assert np.array_equal(fast, reference)

    def test_explainer_interventional_on_forest(self, income, income_forest):
        explainer = TreeShapExplainer(income_forest)
        X = income.dataset.X
        att = explainer.explain_interventional(X[0], X[1:26])
        # interventional efficiency: sums to f(x) - mean f(background)
        assert att.additive_check(atol=1e-10)


# ------------------------------------------------------------------
# stacked KernelSHAP
# ------------------------------------------------------------------
class TestStackedKernelShap:
    @pytest.mark.parametrize("n_coalitions", [510, 64])
    def test_batch_bitwise_equals_serial(self, income, income_logistic, n_coalitions):
        X = income.dataset.X
        predict = lambda Z: income_logistic.predict_proba(Z)[:, 1]  # noqa: E731
        stacked = KernelShapExplainer(
            predict, X[:20], n_coalitions=n_coalitions
        )
        serial = KernelShapExplainer(
            predict, X[:20], n_coalitions=n_coalitions
        )
        got = stacked.explain_batch(X[:12], random_state=5)
        want = serial.explain_batch_serial(X[:12], random_state=5)
        for g, w in zip(got, want):
            assert np.array_equal(g.values, w.values)
            assert g.base_value == w.base_value
            assert g.prediction == w.prediction
        assert got[0].metadata["stacked"] is True
        assert stacked.batch_stats_ is not None
        assert stacked.batch_stats_.n_model_evals > 0

    def test_batch_bitwise_equals_per_instance_explain(self, income, income_logistic):
        X = income.dataset.X
        predict = lambda Z: income_logistic.predict_proba(Z)[:, 1]  # noqa: E731
        explainer = KernelShapExplainer(predict, X[:15], n_coalitions=32)
        from xaidb.utils.rng import spawn_seeds

        seeds = spawn_seeds(9, 6)
        batch = explainer.explain_batch(X[:6], seeds=seeds)
        for i in range(6):
            single = explainer.explain(X[i], random_state=seeds[i])
            assert np.array_equal(batch[i].values, single.values)

    def test_blas_predictor_stays_bitwise(self):
        # X @ w is NOT bitwise row-stable across call shapes on blocked
        # BLAS — the stacked path must therefore replay the serial call
        # shapes exactly, which this predictor would expose.
        rng = np.random.default_rng(3)
        w = rng.normal(size=9)
        predict = lambda Z: np.tanh(Z @ w)  # noqa: E731
        background = rng.normal(size=(30, 9))
        X = rng.normal(size=(25, 9))
        explainer = KernelShapExplainer(predict, background, n_coalitions=510)
        got = explainer.explain_batch(X, random_state=1)
        want = explainer.explain_batch_serial(X, random_state=1)
        for g, v in zip(got, want):
            assert np.array_equal(g.values, v.values)

    def test_design_arena_shares_objects(self):
        clear_design_cache()
        masks_a, weights_a = kernel_shap_design(7, 126)  # exhaustive
        masks_b, weights_b = kernel_shap_design(7, 126)
        assert masks_a is masks_b and weights_a is weights_b
        assert not masks_a.flags.writeable
        sampled_a, __ = kernel_shap_design(9, 40, 17)
        sampled_b, __ = kernel_shap_design(9, 40, 17)
        assert sampled_a is sampled_b
        info = design_cache_info()
        assert info["hits"] >= 2 and info["entries"] == 2
        # live generators must not be frozen into the cache
        gen_a, __ = kernel_shap_design(9, 40, check_random_state(17))
        gen_b, __ = kernel_shap_design(9, 40, check_random_state(17))
        assert gen_a is not gen_b
        assert np.array_equal(gen_a, sampled_a)


# ------------------------------------------------------------------
# arena masks across worker processes
# ------------------------------------------------------------------
def _linear_predict(Z):  # module-level: picklable for the worker pool
    return np.asarray(Z).sum(axis=1)


class TestMaskArenaAcrossWorkers:
    def test_n_jobs_bit_identity_and_shared_shipping(self):
        WorkerPool.close_global()
        try:
            rng = np.random.default_rng(2)
            background = rng.normal(size=(18, 8))
            x = rng.normal(size=8)
            masks, __ = kernel_shap_design(8, 254)  # read-only arena design
            results = {}
            for n_jobs in (None, 1, 4):
                runtime = GameRuntime(
                    MarginalImputationGame(_linear_predict, x, background),
                    config=RuntimeConfig(cache=False, n_jobs=n_jobs),
                )
                results[n_jobs] = runtime.values_batch(masks)
            assert np.array_equal(results[None], results[1])
            assert np.array_equal(results[None], results[4])
            # the arena design crossed the process boundary as one
            # shared segment, not as per-task pickled chunks
            assert WorkerPool.get().n_shared_arrays == 1
        finally:
            WorkerPool.close_global()

    def test_cached_runtime_preserves_arena_identity(self):
        WorkerPool.close_global()
        try:
            rng = np.random.default_rng(4)
            background = rng.normal(size=(10, 7))
            masks, __ = kernel_shap_design(7, 126)
            runtime = GameRuntime(
                MarginalImputationGame(
                    _linear_predict, rng.normal(size=7), background
                ),
                config=RuntimeConfig(cache=True, n_jobs=4),
            )
            pooled = runtime.values_batch(masks)
            serial_runtime = GameRuntime(
                MarginalImputationGame(
                    _linear_predict, rng.normal(size=7), background
                ),
                config=RuntimeConfig(cache=True),
            )
            # (different instance objects -> different values; identity
            # of the shipped masks is what we assert, via the arena)
            assert WorkerPool.get().n_shared_arrays == 1
            assert pooled.shape == (masks.shape[0],)
            del serial_runtime
        finally:
            WorkerPool.close_global()


# ------------------------------------------------------------------
# vectorized sampled Banzhaf
# ------------------------------------------------------------------
class _QuadraticGame(Game):
    def __init__(self, n, seed):
        super().__init__(n)
        rng = np.random.default_rng(seed)
        self.linear = rng.normal(size=n)
        self.pairwise = rng.normal(size=(n, n))

    def value(self, coalition):
        idx = sorted(set(int(i) for i in coalition))
        if not idx:
            return 0.0
        total = float(self.linear[idx].sum())
        for a in idx:
            for b in idx:
                if a < b:
                    total += float(self.pairwise[a, b])
        return total


def _scalar_banzhaf_sampled(game, n_samples, random_state):
    """The historical per-sample scalar loop, kept as the oracle."""
    rng = check_random_state(random_state)
    cached = CachedGame(game)
    n = game.n_players
    samples = np.zeros((n_samples, n))
    for s in range(n_samples):
        mask = rng.random(n) < 0.5
        for player in range(n):
            coalition = [p for p in range(n) if mask[p] and p != player]
            samples[s, player] = cached.value(
                coalition + [player]
            ) - cached.value(coalition)
    values = samples.mean(axis=0)
    errors = samples.std(axis=0, ddof=1) / np.sqrt(n_samples)
    return values, errors


class TestVectorizedBanzhaf:
    @pytest.mark.parametrize("n_players,seed", [(5, 0), (9, 3), (13, 8)])
    def test_mean_and_std_bitwise_vs_scalar_loop(self, n_players, seed):
        want_values, want_errors = _scalar_banzhaf_sampled(
            _QuadraticGame(n_players, seed), 150, 42
        )
        got_values, got_errors = banzhaf_values_sampled(
            _QuadraticGame(n_players, seed), 150, random_state=42
        )
        assert np.array_equal(got_values, want_values)
        assert np.array_equal(got_errors, want_errors)

    def test_single_sample_errors_are_nan(self):
        values, errors = banzhaf_values_sampled(
            _QuadraticGame(4, 0), 1, random_state=0
        )
        assert values.shape == (4,)
        assert np.all(np.isnan(errors))
