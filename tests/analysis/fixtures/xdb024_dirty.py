"""Dirty fixture for XDB024: log over an interval reaching 0, sqrt
over an interval reaching below 0."""

import numpy as np

__all__ = ["log_confidence", "root_deficit"]


def log_confidence(margin):
    conf = np.abs(margin)  # proven range [0, inf]: log(0) = -inf
    return np.log(conf)  # finding 1


def root_deficit(delta):
    shortfall = np.minimum(delta, 0.0)  # proven range [-inf, 0]
    return np.sqrt(shortfall)  # finding 2: sqrt of a negative is NaN
