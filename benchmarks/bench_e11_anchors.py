"""E11 — Anchors: short, high-precision, high-coverage rules
(Ribeiro, Singh & Guestrin 2018, Table 2 shape) + the bandit ablation.

Reproduced shape:

- anchors hit the precision target on fresh perturbations while LIME
  used *as a rule* ("top-2 features pinned") has visibly lower precision
  — the paper's central comparison;
- the KL-LUCB candidate selection reaches comparable precision to the
  naive fixed-budget baseline while spending fewer model queries
  (DESIGN.md ablation).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.explainers import LimeExplainer, predict_positive_proba
from xaidb.models import RandomForestClassifier
from xaidb.rules import AnchorsExplainer

N_INSTANCES = 6
PRECISION_TARGET = 0.9


def _rule_precision(explainer, columns, x, f, n=1500, seed=0):
    """Precision of 'pin these columns' as a rule, under the anchor
    perturbation distribution."""
    rng = np.random.default_rng(seed)
    samples = explainer._sample_under(tuple(sorted(columns)), x, n, rng)
    decision = float(f(x[None, :])[0]) >= 0.5
    return float(np.mean((f(samples) >= 0.5) == decision))


def compute_rows():
    workload = make_income(1000, random_state=0)
    dataset = workload.dataset
    model = RandomForestClassifier(
        n_estimators=15, max_depth=6, random_state=0
    ).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)

    lime = LimeExplainer(dataset, n_samples=600)
    variants = {
        "anchors (kl-lucb)": AnchorsExplainer(
            f, dataset, precision_threshold=PRECISION_TARGET,
            max_anchor_size=4, candidate_selection="kl_lucb",
        ),
        "anchors (fixed budget)": AnchorsExplainer(
            f, dataset, precision_threshold=PRECISION_TARGET,
            max_anchor_size=4, candidate_selection="fixed",
        ),
    }
    rows = []
    for name, explainer in variants.items():
        precisions, coverages, lengths, queries = [], [], [], []
        for i in range(N_INSTANCES):
            anchor = explainer.explain(dataset.X[i], random_state=i)
            fresh_precision = _rule_precision(
                explainer, anchor.feature_indices, dataset.X[i], f, seed=100 + i
            )
            precisions.append(fresh_precision)
            coverages.append(anchor.coverage)
            lengths.append(len(anchor.predicates))
            queries.append(anchor.n_samples_used)
        rows.append(
            (
                name,
                float(np.mean(precisions)),
                float(np.mean(coverages)),
                float(np.mean(lengths)),
                float(np.mean(queries)),
            )
        )

    # LIME-as-rule baseline: pin the top-2 LIME features
    kl_explainer = variants["anchors (kl-lucb)"]
    lime_precisions = []
    for i in range(N_INSTANCES):
        attribution = lime.explain(f, dataset.X[i], random_state=i)
        top2 = [
            dataset.feature_names.index(feature)
            for feature, __ in attribution.top(2)
        ]
        lime_precisions.append(
            _rule_precision(kl_explainer, top2, dataset.X[i], f, seed=200 + i)
        )
    rows.append(
        ("lime top-2 as rule", float(np.mean(lime_precisions)), float("nan"),
         2.0, float("nan"))
    )
    return rows


def test_e11_anchors(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E11: anchors vs LIME-as-rule (paper: anchors meet the precision "
        "target; attribution-as-rule does not)",
        ["method", "precision (fresh)", "coverage", "rule length", "queries"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    anchors_precision = by_name["anchors (kl-lucb)"][1]
    lime_precision = by_name["lime top-2 as rule"][1]
    # shape: anchors' rules are higher precision than LIME-as-rule
    assert anchors_precision > lime_precision
    assert anchors_precision >= PRECISION_TARGET - 0.1
