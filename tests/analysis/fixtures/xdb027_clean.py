"""Clean fixture for XDB027: the same reciprocal scales, denominators
clamped or guarded away from 0."""

import numpy as np

__all__ = ["hit_rates", "uniform_share"]


def hit_rates(indices):
    counts = np.zeros(8)
    for index in indices:
        counts[index] += 1.0
    return 1.0 / np.maximum(counts, 1.0)  # clamp: proven [1, inf]


def uniform_share(weights):
    if len(weights) == 0:
        return 0.0
    return 1.0 / len(weights)  # fall-through proves len >= 1
