import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import (
    CachedGame,
    ExactShapleyExplainer,
    MarginalImputationGame,
    exact_shapley_values,
)
from xaidb.explainers.shapley.games import FunctionGame


def glove_game():
    """Player 0 owns a left glove, players 1 and 2 right gloves; a pair is
    worth 1.  Known Shapley values: (2/3, 1/6, 1/6)."""
    return FunctionGame(
        3, lambda s: 1.0 if 0 in s and (1 in s or 2 in s) else 0.0
    )


def majority_game(n):
    """Unanimity-free majority: v(S)=1 iff |S| > n/2; all players
    symmetric so each gets 1/n."""
    return FunctionGame(n, lambda s: 1.0 if len(s) > n / 2 else 0.0)


class TestExactShapleyOnAnalyticGames:
    def test_glove_game(self):
        phi = exact_shapley_values(glove_game())
        assert np.allclose(phi, [2 / 3, 1 / 6, 1 / 6])

    def test_majority_symmetry(self):
        phi = exact_shapley_values(majority_game(5))
        assert np.allclose(phi, 0.2)

    def test_additive_game_gives_weights(self):
        weights = np.asarray([3.0, -1.0, 0.5, 2.0])
        game = FunctionGame(4, lambda s: sum(weights[i] for i in s))
        phi = exact_shapley_values(game)
        assert np.allclose(phi, weights)

    def test_dummy_player_gets_zero(self):
        game = FunctionGame(3, lambda s: 1.0 if 0 in s else 0.0)
        phi = exact_shapley_values(game)
        assert phi[1] == pytest.approx(0.0)
        assert phi[2] == pytest.approx(0.0)

    def test_efficiency_axiom(self):
        game = glove_game()
        phi = exact_shapley_values(game)
        assert phi.sum() == pytest.approx(game.grand_value() - game.empty_value())

    def test_refuses_too_many_players(self):
        game = FunctionGame(25, lambda s: float(len(s)))
        with pytest.raises(ValidationError, match="intractable"):
            exact_shapley_values(game)


class TestCachedGame:
    def test_caches_identical_coalitions(self):
        calls = {"n": 0}

        def v(s):
            calls["n"] += 1
            return float(len(s))

        game = CachedGame(FunctionGame(3, v))
        game.value([0, 1])
        game.value([1, 0])
        game.value((0, 1))
        assert calls["n"] == 1
        assert game.n_evaluations == 1


class TestMarginalImputationGame:
    def test_full_coalition_is_model_output(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        x = income.dataset.X[0]
        game = MarginalImputationGame(f, x, income.dataset.X[:20])
        assert game.grand_value() == pytest.approx(float(f(x[None, :])[0]))

    def test_empty_coalition_is_background_mean(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        background = income.dataset.X[:20]
        game = MarginalImputationGame(f, income.dataset.X[0], background)
        assert game.empty_value() == pytest.approx(float(f(background).mean()))

    def test_values_batch_matches_scalar(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        game = MarginalImputationGame(
            f, income.dataset.X[0], income.dataset.X[:10]
        )
        d = income.dataset.n_features
        rng = np.random.default_rng(0)
        masks = rng.random((6, d)) < 0.5
        batch = game.values_batch(masks)
        scalar = [game.value(np.flatnonzero(mask)) for mask in masks]
        assert np.allclose(batch, scalar)

    def test_invalid_coalition_index(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        game = MarginalImputationGame(
            f, income.dataset.X[0], income.dataset.X[:5]
        )
        with pytest.raises(ValidationError):
            game.value([99])

    def test_background_width_mismatch(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        with pytest.raises(ValidationError):
            MarginalImputationGame(f, np.zeros(3), income.dataset.X[:5])


class TestExactShapleyExplainer:
    def test_local_accuracy(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        explainer = ExactShapleyExplainer(
            f, income.dataset.X[:15], feature_names=income.dataset.feature_names
        )
        att = explainer.explain(income.dataset.X[2])
        assert att.additive_check(atol=1e-8)

    def test_dummy_feature_zero(self, income):
        """A model ignoring a feature must give it exactly zero."""
        used = [0, 1]

        def f(X):
            return X[:, used].sum(axis=1)

        explainer = ExactShapleyExplainer(f, income.dataset.X[:10])
        att = explainer.explain(income.dataset.X[0])
        assert np.allclose(att.values[2:], 0.0, atol=1e-12)
