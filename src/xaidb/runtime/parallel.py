"""Opt-in process-pool map for embarrassingly parallel outer loops.

TMC permutations, permutation-sampling Shapley draws and multi-instance
LIME/KernelSHAP batches are independent given their seeds, so they
parallelise trivially — *provided* determinism survives.  The contract
here: callers pre-spawn one seed per task with
:func:`xaidb.utils.rng.spawn_seeds` and the worker derives all of its
randomness from that seed, so ``parallel_map(fn, tasks, n_jobs=k)``
returns bit-identical results for every ``k`` (including serial).

Process pools require picklable work; closures and lambdas (e.g. the
``predict_fn`` adapters) are not.  Rather than making callers probe
picklability, the map falls back to the serial path when the pool cannot
ship the work — results are identical either way, only wall-clock
changes.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from xaidb.exceptions import ValidationError

__all__ = ["parallel_map"]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Failures that mean "this work cannot be shipped to a process pool"
#: (unpicklable callables/results, dead workers, missing OS support) —
#: all recoverable by running serially.
_POOL_FAILURES = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    EOFError,
    OSError,
    BrokenProcessPool,
)


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    *,
    n_jobs: int | None = None,
) -> list[_Result]:
    """Order-preserving ``[fn(t) for t in tasks]`` with optional workers.

    Parameters
    ----------
    fn:
        Pure task function; all randomness must come from the task
        payload (a spawned seed), never from global state.
    tasks:
        Task payloads; results are returned in task order.
    n_jobs:
        ``None`` or ``1`` runs serially in-process; ``k > 1`` uses up to
        ``k`` worker processes, falling back to serial execution when
        the work cannot be pickled across the process boundary.
    """
    if n_jobs is not None and n_jobs < 1:
        raise ValidationError("n_jobs must be >= 1 or None")
    task_list: Sequence[_Task] = list(tasks)
    if n_jobs is None or n_jobs == 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(task_list))
        ) as pool:
            return list(pool.map(fn, task_list))
    except _POOL_FAILURES:
        return [fn(task) for task in task_list]
