"""Provenance-tracking relational algebra.

Each operator returns a new :class:`~xaidb.db.relation.Relation` whose
rows carry provenance composed by the semiring rules in
:mod:`xaidb.db.provenance` — selection filters, projection/union add
(alternative derivations), join multiplies (joint derivations).
Aggregates record the lineage of every contributing row, since *all* of a
group's rows participate in its aggregate value.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from xaidb.db.provenance import Provenance
from xaidb.db.relation import Relation, Row
from xaidb.exceptions import SchemaError, ValidationError

__all__ = [
    "Predicate",
    "select",
    "project",
    "join",
    "union",
    "difference",
    "groupby",
    "aggregate",
]

Predicate = Callable[[Mapping[str, Any]], bool]


def select(relation: Relation, predicate: Predicate, *, name: str | None = None) -> Relation:
    """sigma: keep rows satisfying ``predicate`` (provenance unchanged)."""
    rows = [row for row in relation if predicate(row.as_dict())]
    return Relation(
        name=name or f"sigma({relation.name})",
        columns=list(relation.columns),
        rows=rows,
    )


def project(
    relation: Relation, columns: Sequence[str], *, name: str | None = None
) -> Relation:
    """pi with duplicate elimination: identical projected tuples merge and
    their provenances add."""
    columns = list(columns)
    missing = [c for c in columns if c not in relation.columns]
    if missing:
        raise SchemaError(f"{relation.name} has no columns {missing}")
    merged: dict[tuple, Provenance] = {}
    order: list[tuple] = []
    for row in relation:
        values = {c: row[c] for c in columns}
        key = tuple(sorted(values.items()))
        if key not in merged:
            merged[key] = row.provenance
            order.append(key)
        else:
            merged[key] = merged[key] + row.provenance
    rows = [Row(values=key, provenance=merged[key]) for key in order]
    return Relation(
        name=name or f"pi({relation.name})", columns=columns, rows=rows
    )


def join(
    left: Relation,
    right: Relation,
    on: Sequence[str],
    *,
    name: str | None = None,
) -> Relation:
    """Natural equi-join on ``on``; provenances multiply."""
    on = list(on)
    for column in on:
        if column not in left.columns or column not in right.columns:
            raise SchemaError(f"join column {column!r} missing from an input")
    overlap = (set(left.columns) & set(right.columns)) - set(on)
    if overlap:
        raise SchemaError(
            f"non-join columns appear on both sides: {sorted(overlap)}; "
            f"project or rename first"
        )
    index: dict[tuple, list[Row]] = {}
    for row in right:
        key = tuple(row[c] for c in on)
        index.setdefault(key, []).append(row)
    out_columns = list(left.columns) + [
        c for c in right.columns if c not in on
    ]
    rows = []
    for left_row in left:
        key = tuple(left_row[c] for c in on)
        for right_row in index.get(key, []):
            values = left_row.as_dict()
            values.update(
                {c: right_row[c] for c in right.columns if c not in on}
            )
            rows.append(
                Row.make(values, left_row.provenance * right_row.provenance)
            )
    return Relation(
        name=name or f"({left.name} ⋈ {right.name})",
        columns=out_columns,
        rows=rows,
    )


def union(left: Relation, right: Relation, *, name: str | None = None) -> Relation:
    """Set union: identical tuples merge with added provenance."""
    if sorted(left.columns) != sorted(right.columns):
        raise SchemaError("union requires identical schemas")
    combined = Relation(
        name=name or f"({left.name} ∪ {right.name})",
        columns=list(left.columns),
        rows=list(left.rows) + [
            Row.make(row.as_dict(), row.provenance) for row in right.rows
        ],
    )
    return project(combined, combined.columns, name=combined.name)


def difference(
    left: Relation, right: Relation, *, name: str | None = None
) -> Relation:
    """Set difference on values (provenance of survivors unchanged —
    why-provenance is a positive semiring, so the right side contributes
    no tokens)."""
    if sorted(left.columns) != sorted(right.columns):
        raise SchemaError("difference requires identical schemas")
    right_keys = {
        tuple(sorted(row.as_dict().items())) for row in right.rows
    }
    rows = [
        row
        for row in left.rows
        if tuple(sorted(row.as_dict().items())) not in right_keys
    ]
    return Relation(
        name=name or f"({left.name} - {right.name})",
        columns=list(left.columns),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
_AGGREGATES: dict[str, Callable[[list], float]] = {
    "count": lambda values: float(len(values)),
    "sum": lambda values: float(np.sum(values)),
    "avg": lambda values: float(np.mean(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
}


def groupby(
    relation: Relation,
    group_columns: Sequence[str],
    aggregations: Mapping[str, tuple[str, str]],
    *,
    name: str | None = None,
) -> Relation:
    """gamma: group by ``group_columns`` and compute aggregates.

    ``aggregations`` maps output column -> (function, input column); the
    function is one of count/sum/avg/min/max.  Each output row's
    provenance is the single witness containing every contributing base
    tuple (aggregates depend on all of their group).
    """
    group_columns = list(group_columns)
    for column in group_columns:
        if column not in relation.columns:
            raise SchemaError(f"unknown group column {column!r}")
    for out_col, (func, in_col) in aggregations.items():
        if func not in _AGGREGATES:
            raise ValidationError(f"unknown aggregate {func!r}")
        if func != "count" and in_col not in relation.columns:
            raise SchemaError(f"unknown aggregate input column {in_col!r}")
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in relation:
        key = tuple(row[c] for c in group_columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    rows = []
    for key in order:
        members = groups[key]
        values: dict[str, Any] = dict(zip(group_columns, key))
        for out_col, (func, in_col) in aggregations.items():
            inputs = (
                [1] * len(members)
                if func == "count"
                else [m[in_col] for m in members]
            )
            values[out_col] = _AGGREGATES[func](inputs)
        lineage: set = set()
        for member in members:
            lineage |= member.provenance.lineage()
        rows.append(Row.make(values, Provenance([frozenset(lineage)])))
    return Relation(
        name=name or f"gamma({relation.name})",
        columns=group_columns + list(aggregations.keys()),
        rows=rows,
    )


def aggregate(
    relation: Relation, func: str, column: str | None = None
) -> float:
    """Whole-relation scalar aggregate (count needs no column)."""
    if func not in _AGGREGATES:
        raise ValidationError(f"unknown aggregate {func!r}")
    if func == "count":
        return float(len(relation))
    if column is None:
        raise ValidationError(f"aggregate {func!r} needs a column")
    values = relation.column_values(column)
    if not values:
        return 0.0
    return _AGGREGATES[func](values)
