"""XDB005 dirty fixture: bare and overbroad exception handlers."""

__all__ = ["swallow"]


def swallow(fn) -> float:
    try:
        return fn()
    except:  # noqa: E722
        pass
    try:
        return fn()
    except Exception:
        return 0.0
