"""Frequent-itemset mining: Apriori and FP-Growth.

The tutorial (§2.2.1) roots rule-based explanations in the data-management
community's pattern-mining tradition (Agrawal et al. 1993/94; Han, Pei &
Yin 2000).  Both miners return identical results — the tests assert set
equality — and experiment E13 reproduces the classic runtime-vs-support
crossover where FP-Growth's single-pass prefix tree beats Apriori's
candidate generation at low support thresholds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations
from xaidb.data.transactions import TransactionDatabase
from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_probability

__all__ = ["apriori", "fp_growth", "AssociationRule", "association_rules"]


def apriori(
    database: TransactionDatabase,
    min_support: float,
    *,
    max_length: int | None = None,
) -> dict[frozenset, int]:
    """Level-wise Apriori.

    Returns ``{itemset: support_count}`` for every itemset with support
    fraction >= ``min_support``.  Candidate (k+1)-itemsets are generated
    by joining frequent k-itemsets and pruned by the downward-closure
    property before counting.
    """
    check_probability(min_support, name="min_support")
    if len(database) == 0:
        raise ValidationError("empty transaction database")
    threshold = min_support * len(database)

    frequent: dict[frozenset, int] = {}
    item_counts = database.item_counts()
    current = {
        frozenset([item]): count
        for item, count in item_counts.items()
        if count >= threshold
    }
    level = 1
    while current:
        frequent.update(current)
        if max_length is not None and level >= max_length:
            break
        candidates = _join_candidates(list(current.keys()), level)
        # prune: every k-subset must be frequent
        pruned = [
            c
            for c in candidates
            if all(frozenset(sub) in current for sub in combinations(c, level))
        ]
        counts: dict[frozenset, int] = defaultdict(int)
        for transaction in database:
            for candidate in pruned:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = {c: n for c, n in counts.items() if n >= threshold}
        level += 1
    return frequent


def _join_candidates(itemsets: list[frozenset], level: int) -> list[frozenset]:
    """Join step: merge pairs of k-itemsets sharing k-1 items."""
    candidates: set[frozenset] = set()
    for i in range(len(itemsets)):
        for j in range(i + 1, len(itemsets)):
            union = itemsets[i] | itemsets[j]
            if len(union) == level + 1:
                candidates.add(union)
    return list(candidates)


# ----------------------------------------------------------------------
# FP-Growth
# ----------------------------------------------------------------------
class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item, parent) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict = {}
        self.link: _FPNode | None = None


class _FPTree:
    """Prefix tree with per-item node links (header table)."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict = {}

    def insert(self, items: list, count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                # thread the header link
                if item in self.header:
                    child.link = self.header[item]
                self.header[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item) -> list[tuple[list, int]]:
        """Conditional pattern base: (path-to-root items, count) per node."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.link
        return paths


def fp_growth(
    database: TransactionDatabase,
    min_support: float,
    *,
    max_length: int | None = None,
) -> dict[frozenset, int]:
    """FP-Growth: frequent itemsets via recursive conditional FP-trees.

    Returns the same ``{itemset: support_count}`` mapping as
    :func:`apriori`.
    """
    check_probability(min_support, name="min_support")
    if len(database) == 0:
        raise ValidationError("empty transaction database")
    threshold = min_support * len(database)
    item_counts = database.item_counts()
    frequent_items = {
        item: count for item, count in item_counts.items() if count >= threshold
    }
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent_items, key=lambda i: (-frequent_items[i], str(i)))
        )
    }
    tree = _FPTree()
    for transaction in database:
        items = sorted(
            (i for i in transaction if i in frequent_items),
            key=lambda i: order[i],
        )
        if items:
            tree.insert(items, 1)

    result: dict[frozenset, int] = {}

    def mine(subtree: _FPTree, suffix: frozenset, counts: dict) -> None:
        for item, count in counts.items():
            itemset = suffix | {item}
            result[frozenset(itemset)] = count
            if max_length is not None and len(itemset) >= max_length:
                continue
            paths = subtree.prefix_paths(item)
            conditional_counts: dict = defaultdict(int)
            for path, path_count in paths:
                for path_item in path:
                    conditional_counts[path_item] += path_count
            conditional_counts = {
                i: c for i, c in conditional_counts.items() if c >= threshold
            }
            if not conditional_counts:
                continue
            conditional_order = {
                i: rank
                for rank, i in enumerate(
                    sorted(
                        conditional_counts,
                        key=lambda i: (-conditional_counts[i], str(i)),
                    )
                )
            }
            conditional_tree = _FPTree()
            for path, path_count in paths:
                kept = sorted(
                    (i for i in path if i in conditional_counts),
                    key=lambda i: conditional_order[i],
                )
                if kept:
                    conditional_tree.insert(kept, path_count)
            mine(conditional_tree, frozenset(itemset), conditional_counts)

    mine(tree, frozenset(), frequent_items)
    return result


# ----------------------------------------------------------------------
# Association rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AssociationRule:
    """``antecedent -> consequent`` with the classic quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lhs = ", ".join(map(str, sorted(self.antecedent, key=str)))
        rhs = ", ".join(map(str, sorted(self.consequent, key=str)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def association_rules(
    frequent_itemsets: dict[frozenset, int],
    n_transactions: int,
    *,
    min_confidence: float = 0.6,
) -> list[AssociationRule]:
    """Derive association rules from mined itemsets.

    For every frequent itemset and every non-trivial partition into
    antecedent/consequent, keep rules whose confidence meets the
    threshold.  Rules are returned sorted by (confidence, support)
    descending.
    """
    check_probability(min_confidence, name="min_confidence")
    if n_transactions < 1:
        raise ValidationError("n_transactions must be >= 1")
    rules = []
    for itemset, count in frequent_itemsets.items():
        if len(itemset) < 2:
            continue
        support = count / n_transactions
        for size in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset, key=str), size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                antecedent_count = frequent_itemsets.get(antecedent)
                consequent_count = frequent_itemsets.get(consequent)
                if not antecedent_count or not consequent_count:
                    continue
                confidence = count / antecedent_count
                if confidence < min_confidence:
                    continue
                lift = confidence / (consequent_count / n_transactions)
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(sorted(r.antecedent, key=str))))
    return rules
