"""Explaining database repairs through Shapley values (tutorial §3;
Deutch, Frost, Gilad & Sheffer 2021).

Given integrity constraints — functional dependencies here — an
inconsistent database has some set of violating tuple pairs.  "Which
tuples are to blame?" is a fair-division question: the *inconsistency
game* assigns every subset of tuples its number of internal violations,
and a tuple's Shapley value in that game is its share of the blame.  The
module also produces a minimal(ish) repair: greedily delete the
highest-blame tuples until consistency holds, which for FD-violation
counting is the classic weighted-vertex-cover heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from xaidb.db.relation import Relation
from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.exact import exact_shapley_values
from xaidb.explainers.shapley.games import CachedGame, Game
from xaidb.explainers.shapley.sampling import permutation_shapley_values
from xaidb.utils.rng import RandomState

__all__ = [
    "FunctionalDependency",
    "violating_pairs",
    "inconsistency_count",
    "repair_blame",
    "greedy_repair",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs``: tuples agreeing on ``lhs`` must agree on ``rhs``."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise ValidationError("FD sides must be non-empty")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FD({', '.join(self.lhs)} -> {', '.join(self.rhs)})"


def violating_pairs(
    relation: Relation, dependency: FunctionalDependency
) -> list[tuple[Hashable, Hashable]]:
    """All pairs of base tuples that jointly violate the FD."""
    for column in dependency.lhs + dependency.rhs:
        if column not in relation.columns:
            raise ValidationError(f"FD references unknown column {column!r}")
    pairs = []
    rows = list(relation.rows)
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            left, right = rows[i], rows[j]
            if all(left[c] == right[c] for c in dependency.lhs) and any(
                left[c] != right[c] for c in dependency.rhs
            ):
                lineage_left = sorted(left.provenance.lineage(), key=str)
                lineage_right = sorted(right.provenance.lineage(), key=str)
                if len(lineage_left) == 1 and len(lineage_right) == 1:
                    pairs.append((lineage_left[0], lineage_right[0]))
                else:
                    raise ValidationError(
                        "repair explanations require base relations "
                        "(atomic provenance per row)"
                    )
    return pairs


def inconsistency_count(
    relation: Relation, dependencies: Sequence[FunctionalDependency]
) -> int:
    """Total number of violating pairs across all FDs."""
    return sum(len(violating_pairs(relation, fd)) for fd in dependencies)


class _InconsistencyGame(Game):
    """``v(S)`` = number of violating pairs entirely inside ``S``."""

    def __init__(
        self,
        tuples: Sequence[Hashable],
        pairs: Sequence[tuple[Hashable, Hashable]],
    ) -> None:
        super().__init__(len(tuples))
        self.tuples = list(tuples)
        index = {token: i for i, token in enumerate(self.tuples)}
        self.pairs = [(index[a], index[b]) for a, b in pairs]

    def value(self, coalition) -> float:
        present = set(coalition)
        return float(
            sum(1 for a, b in self.pairs if a in present and b in present)
        )


def repair_blame(
    relation: Relation,
    dependencies: Sequence[FunctionalDependency],
    *,
    n_permutations: int | None = None,
    random_state: RandomState = None,
) -> dict[Hashable, float]:
    """Shapley blame of each base tuple for the database's inconsistency.

    For pair-counting games the exact Shapley value is each tuple's
    violating-pair degree divided by 2 (every pair splits evenly between
    its two endpoints); the game-theoretic computation is retained (and
    tested against that closed form) because it generalises to non-pair
    constraints.
    """
    pairs = []
    for dependency in dependencies:
        pairs.extend(violating_pairs(relation, dependency))
    tuples = relation.tuple_ids()
    if not tuples:
        raise ValidationError("relation has no base tuples")
    game = CachedGame(_InconsistencyGame(tuples, pairs))
    if n_permutations is None:
        phi = exact_shapley_values(game)
    else:
        phi, __ = permutation_shapley_values(
            game, n_permutations, random_state=random_state
        )
    return dict(zip(tuples, phi.tolist()))


def greedy_repair(
    relation: Relation,
    dependencies: Sequence[FunctionalDependency],
) -> tuple[Relation, list[Hashable]]:
    """Delete highest-blame tuples until every FD holds.

    Returns ``(consistent_subrelation, deleted_tuple_ids)``.  Greedy
    max-degree deletion is a 2-approximation of the minimal repair for
    pairwise FD conflicts.
    """
    current = relation
    deleted: list[Hashable] = []
    while True:
        pairs = []
        for dependency in dependencies:
            pairs.extend(violating_pairs(current, dependency))
        if not pairs:
            return current, deleted
        degree: dict[Hashable, int] = {}
        for a, b in pairs:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        victim = max(sorted(degree, key=str), key=lambda t: degree[t])
        deleted.append(victim)
        remaining = set(current.tuple_ids()) - {victim}
        current = current.restrict_to(remaining)
