#!/usr/bin/env python
"""The repo gate: lint + tier-1 tests + runtime-benchmark smoke, one exit code.

Runs, in order, stopping at the first failure:

1. ``xailint`` over the repo-standard scan set (src benchmarks examples
   tools) — the scientific-correctness invariants of docs/LINTING.md;
2. the tier-1 pytest suite (``tests/``, the ROADMAP.md conformance bar);
3. a smoke run of the A7 runtime-scaling benchmark
   (``benchmarks/bench_a07_runtime_scaling.py``) — proves the shared
   evaluation runtime's memoisation/chunking/parallel invariants on a
   small workload, so a regression in the substrate every perturbation
   explainer rides on cannot land silently.

Usage::

    python tools/check.py            # the full gate
    python tools/check.py --fast     # lint + tier-1 only (skip the bench smoke)

Exit status is the first failing step's, 0 when everything passes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# the tier-1 convention is `PYTHONPATH=src python -m pytest`; make the
# gate self-contained by prepending src/ for every subprocess.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else [])
)

STEPS: list[tuple[str, list[str]]] = [
    ("xailint", [sys.executable, str(REPO_ROOT / "tools" / "xailint.py")]),
    ("tier-1 tests", [sys.executable, "-m", "pytest", "-q", "tests"]),
    (
        "A7 runtime smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(REPO_ROOT / "benchmarks" / "bench_a07_runtime_scaling.py"),
        ],
    ),
]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fast = "--fast" in argv
    steps = STEPS[:2] if fast else STEPS
    for name, command in steps:
        print(f"== {name}: {' '.join(command)}", flush=True)
        completed = subprocess.run(command, cwd=REPO_ROOT, env=_ENV)
        if completed.returncode != 0:
            print(f"check.py: step '{name}' failed "
                  f"(exit {completed.returncode})", file=sys.stderr)
            return completed.returncode
        print(f"== {name}: ok", flush=True)
    print("check.py: all steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
