"""Batched tree-inference kernels (level-synchronous frontier traversal).

Every perturbation explainer in the survey is model-evaluation-bound: a
single KernelSHAP or Anchors call pushes 10^4-10^5 synthetic rows
through ``predict_proba``.  The seed implementation walked one Python
``while`` loop per row (:meth:`TreeStructure.apply_row`), so inference
cost was interpreter overhead, not arithmetic.  The kernels here replace
the n-row Python loop with ~``max_depth`` vectorized frontier steps —
``node = where(X[rows, feature[node]] <= threshold[node], left[node],
right[node])`` — over an *active set* that shrinks as rows land on
leaves, so total work is the sum of root-to-leaf path lengths, paid in
numpy instead of bytecode:

- :class:`TreeKernel` descends all rows of one tree simultaneously;
- :class:`EnsembleKernel` stacks every tree of a forest/GBM into one
  flat node arena (per-tree arrays concatenated with index offsets —
  the dense equivalent of padded ``(n_trees, max_nodes)`` tensors,
  without the padding waste), so a single traversal serves the whole
  ensemble, and the per-tree class-code realignment the forest
  previously re-derived with a Python loop per call is a precomputed
  scatter into the stacked value tensor.

Exactness contract (enforced by ``tests/models/test_tree_kernels.py``):
leaf routing is **bitwise identical** to the row-wise reference on
threshold ties (both use ``<=``), NaN inputs (``NaN <= t`` is False in
both, routing right) and single-node trees (zero traversal steps), and
accumulated probabilities/raw scores match the sequential reference
because per-tree contributions are summed in the same tree order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TreeKernel", "EnsembleKernel"]

_LEAF = -1


def _traverse(
    X: np.ndarray,
    row_of: np.ndarray,
    node: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    is_internal: np.ndarray,
) -> np.ndarray:
    """Advance every active (row, node) pair one level per iteration.

    ``node`` is mutated in place and returned; entries whose node is a
    leaf drop out of the active set, so each iteration only touches
    rows still descending.
    """
    active = np.flatnonzero(is_internal[node])
    while active.size:
        current = node[active]
        go_left = (
            X[row_of[active], feature[current]] <= threshold[current]
        )
        advanced = np.where(go_left, left[current], right[current])
        node[active] = advanced
        active = active[is_internal[advanced]]
    return node


class TreeKernel:
    """Vectorized ``apply`` for one :class:`~xaidb.models.tree.
    TreeStructure`.

    Caches only the *routing* arrays (children, split features,
    thresholds) — these are immutable once a tree is built.  Leaf
    values are deliberately not cached, so callers that re-estimate
    leaf values in place (the GBM's per-stage Newton step) always read
    fresh values through ``tree.value[kernel.apply(X)]``.
    """

    def __init__(self, tree) -> None:
        self.left = np.asarray(tree.children_left, dtype=np.intp)
        self.right = np.asarray(tree.children_right, dtype=np.intp)
        self.feature = np.asarray(tree.feature, dtype=np.intp)
        self.threshold = np.asarray(tree.threshold, dtype=float)
        self.is_internal = self.left != _LEAF

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of ``X`` — the whole frontier at
        once."""
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        node = np.zeros(n, dtype=np.intp)
        return _traverse(
            X,
            np.arange(n),
            node,
            self.left,
            self.right,
            self.feature,
            self.threshold,
            self.is_internal,
        )


class EnsembleKernel:
    """Stacked traversal over all trees of a forest/GBM at once.

    The per-tree flat arrays are concatenated into one node arena with
    per-tree index offsets (child pointers rebased at pack time), and
    the frontier state is one flat ``(n_trees * n_rows,)`` node vector:
    a single vectorized step advances every row in every tree, and
    (tree, row) pairs retire from the active set the moment they reach
    their leaf.

    ``values`` is packed per tree by the factory helpers:

    - :meth:`for_forest_classifier` scatters each tree's local class
      distributions into the forest's full class space using the tree's
      fitted class codes — the precomputed replacement for the per-call
      realignment loop;
    - :meth:`for_regressors` stacks the scalar leaf values of
      forest-regressor / GBM stage trees.
    """

    def __init__(self, structures: list, values: np.ndarray) -> None:
        counts = np.asarray([tree.node_count for tree in structures])
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        self.n_trees = len(structures)
        self.offsets = offsets
        self.counts = counts
        # training covers, packed alongside the routing arrays: the
        # path-dependent TreeSHAP kernel weighs absent features by
        # cover ratios, so the arena carries them too
        self.covers = np.concatenate(
            [np.asarray(tree.n_node_samples) for tree in structures]
        )
        #: per-tree output scales (set by :meth:`for_terms`); ``None``
        #: for inference packs, which apply scales via ``accumulate``
        self.scales: np.ndarray | None = None
        left = []
        right = []
        feature = []
        threshold = []
        for tree, offset in zip(structures, offsets):
            child_left = np.asarray(tree.children_left, dtype=np.intp)
            child_right = np.asarray(tree.children_right, dtype=np.intp)
            internal = child_left != _LEAF
            # rebase child pointers into the arena; leaves keep _LEAF so
            # is_internal stays a single comparison on the packed array
            left.append(np.where(internal, child_left + offset, _LEAF))
            right.append(np.where(internal, child_right + offset, _LEAF))
            feature.append(np.asarray(tree.feature, dtype=np.intp))
            threshold.append(np.asarray(tree.threshold, dtype=float))
        self.left = np.concatenate(left)
        self.right = np.concatenate(right)
        self.feature = np.concatenate(feature)
        self.threshold = np.concatenate(threshold)
        self.is_internal = self.left != _LEAF
        self.values = values

    # ------------------------------------------------------------------
    @classmethod
    def for_forest_classifier(
        cls, estimators: list, n_classes: int
    ) -> "EnsembleKernel":
        """Pack fitted :class:`DecisionTreeClassifier` trees, realigning
        each tree's local class distributions into the forest's full
        class space (a bootstrap sample can miss classes; the tree's
        ``classes_`` are the forest-level integer codes it did see)."""
        structures = [tree.tree_ for tree in estimators]
        total_nodes = sum(tree.node_count for tree in structures)
        values = np.zeros((total_nodes, n_classes))
        start = 0
        for estimator in estimators:
            tree = estimator.tree_
            codes = np.asarray(estimator.classes_, dtype=int)
            values[start : start + tree.node_count][:, codes] = tree.value
            start += tree.node_count
        return cls(structures, values)

    @classmethod
    def for_regressors(cls, structures: list) -> "EnsembleKernel":
        """Pack regression trees (scalar leaf values) — forest
        regressors and GBM stages."""
        values = np.concatenate([tree.value[:, 0] for tree in structures])
        return cls(structures, values)

    @classmethod
    def for_terms(cls, terms: list) -> "EnsembleKernel":
        """Pack a :class:`TreeShapExplainer` term decomposition —
        ``(structure, leaf_scalars, scale)`` triples — into one arena.

        Unlike the inference factories, the scalar node values come
        from the explainer's decomposition (a class-probability column,
        a realigned bootstrap column, a GBM stage) rather than
        ``tree.value``, and the per-term output scales ride along in
        :attr:`scales` so the SHAP kernels can fold trees in term
        order.
        """
        structures = [tree for tree, _, _ in terms]
        values = np.concatenate(
            [np.asarray(leaf_scalars, dtype=float) for _, leaf_scalars, _ in terms]
        )
        kernel = cls(structures, values)
        kernel.scales = np.asarray([scale for _, _, scale in terms], dtype=float)
        return kernel

    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Arena-global leaf index per (tree, row): shape
        ``(n_trees, n_rows)``.  Subtract :attr:`offsets` per tree to
        recover tree-local node ids."""
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        # every (tree, row) pair starts at that tree's root
        node = np.repeat(self.offsets.astype(np.intp), n)
        row_of = np.tile(np.arange(n), self.n_trees)
        _traverse(
            X,
            row_of,
            node,
            self.left,
            self.right,
            self.feature,
            self.threshold,
            self.is_internal,
        )
        return node.reshape(self.n_trees, n)

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values for every row.

        Shape ``(n_trees, n_rows, n_classes)`` for classifier packs and
        ``(n_trees, n_rows)`` for regressor packs.
        """
        leaves = self.apply(X)
        return self.values[leaves]

    def accumulate(
        self, X: np.ndarray, out: np.ndarray, *, scale: float = 1.0
    ) -> np.ndarray:
        """Sum per-tree leaf values into ``out`` **in tree order**.

        Sequential per-tree addition (not ``np.sum``'s pairwise
        reduction) keeps the result bitwise identical to the historical
        one-tree-at-a-time accumulation loops; ``scale=1.0`` multiplies
        through bitwise-unchanged (values are finite), so one code path
        serves forests and GBM stages.
        """
        contributions = self.leaf_values(X)
        for t in range(self.n_trees):
            out += scale * contributions[t]
        return out
