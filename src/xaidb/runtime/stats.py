"""Evaluation accounting for the shared runtime.

Every perturbation-based explainer ultimately spends its budget on model
evaluations (the tutorial's central cost claim); :class:`EvalStats` is the
one ledger they all write to, so benchmarks and serving layers can compare
methods by *work done* rather than wall-clock alone.  Explainers attach
``stats.as_metadata()`` to their :class:`~xaidb.explainers.base.
FeatureAttribution` so ``n_model_evals``, ``cache_hit_rate`` and
``wall_time_s`` travel with every explanation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["EvalStats"]

# Structural twin of ``xaidb.explainers.base.PredictFn`` — re-declared
# here because the runtime layer sits *below* the explainers package
# (explainers import the runtime, never the reverse).
_PredictFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class EvalStats:
    """Counters for one explanation run (or one shared runtime).

    Attributes
    ----------
    n_model_evals:
        Total *rows* scored by the model function.  This is the unit the
        tutorial's cost analysis is written in: one perturbed input, one
        forward pass.
    n_coalition_evals:
        Coalition values actually computed (cache misses that reached the
        game's value function).
    cache_hits / cache_misses:
        Memo-cache outcomes, over both scalar and batch lookups.
    wall_time_s:
        Seconds accumulated inside :meth:`timer` blocks.
    n_pool_reuses:
        Pooled ``parallel_map`` calls served by already-warm workers of
        the persistent :class:`~xaidb.runtime.parallel.WorkerPool`
        (each one is a process-pool spawn the run did not pay for).
    n_serial_fallbacks:
        ``parallel_map`` calls that could not cross the process
        boundary (unpicklable work, dead workers) and ran serially
        instead.  Results are identical either way; a nonzero count on
        a hot path means the requested parallelism silently bought
        nothing.
    """

    n_model_evals: int = 0
    n_coalition_evals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time_s: float = 0.0
    n_pool_reuses: int = 0
    n_serial_fallbacks: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of coalition lookups served from the memo cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def rows_per_s(self) -> float:
        """Model-evaluation throughput over the timed blocks — the
        hardware-utilisation number benchmark A10 tracks."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.n_model_evals / self.wall_time_s

    def count_rows(self, n_rows: int) -> None:
        self.n_model_evals += int(n_rows)

    def wrap_predict_fn(self, predict_fn: _PredictFn) -> _PredictFn:
        """Wrap ``predict_fn`` so every scored row is counted here."""

        def counted(X: np.ndarray) -> np.ndarray:
            X = np.asarray(X)
            self.count_rows(X.shape[0] if X.ndim > 1 else 1)
            return predict_fn(X)

        return counted

    @contextmanager
    def timer(self) -> Iterator["EvalStats"]:
        """Accumulate the wall-time of the enclosed block."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.wall_time_s += time.perf_counter() - start

    # ------------------------------------------------------------------
    def copy(self) -> "EvalStats":
        """Counter snapshot (``extra`` is shallow-copied)."""
        return EvalStats(
            n_model_evals=self.n_model_evals,
            n_coalition_evals=self.n_coalition_evals,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            wall_time_s=self.wall_time_s,
            n_pool_reuses=self.n_pool_reuses,
            n_serial_fallbacks=self.n_serial_fallbacks,
            extra=dict(self.extra),
        )

    def since(self, earlier: "EvalStats") -> "EvalStats":
        """Counters accumulated after the ``earlier`` snapshot — how a
        shared runtime attributes work to one explanation call."""
        return EvalStats(
            n_model_evals=self.n_model_evals - earlier.n_model_evals,
            n_coalition_evals=(
                self.n_coalition_evals - earlier.n_coalition_evals
            ),
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            wall_time_s=self.wall_time_s - earlier.wall_time_s,
            n_pool_reuses=self.n_pool_reuses - earlier.n_pool_reuses,
            n_serial_fallbacks=(
                self.n_serial_fallbacks - earlier.n_serial_fallbacks
            ),
        )

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold another ledger into this one (e.g. per-worker stats)."""
        self.n_model_evals += other.n_model_evals
        self.n_coalition_evals += other.n_coalition_evals
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_time_s += other.wall_time_s
        self.n_pool_reuses += other.n_pool_reuses
        self.n_serial_fallbacks += other.n_serial_fallbacks
        return self

    def as_metadata(self) -> dict[str, Any]:
        """The counter block explainers splice into attribution metadata."""
        return {
            "n_model_evals": int(self.n_model_evals),
            "cache_hit_rate": float(self.cache_hit_rate),
            "wall_time_s": float(self.wall_time_s),
            "rows_per_s": float(self.rows_per_s),
            "n_pool_reuses": int(self.n_pool_reuses),
            "n_serial_fallbacks": int(self.n_serial_fallbacks),
        }
