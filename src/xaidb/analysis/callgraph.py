"""Project-wide call graph over the parsed lint corpus.

The interprocedural tier (XDB014–XDB017) needs to know, for a call
expression in one function, *which function bodies might execute* — a
seeded generator, a view, or a float32 cast does not stop being a
hazard because it crossed a helper-call boundary.  This module builds
that graph from nothing but the already-parsed ASTs (stdlib only, like
the rest of the linter) and condenses it into strongly connected
components so summaries can be computed bottom-up even through
recursion.

Resolution is deliberately static and partial:

- **direct calls** — ``helper(x)`` where ``helper`` is a module-level
  function of the same module or a (possibly aliased) from-import of
  one;
- **method calls** — ``self.m(x)`` / ``cls.m(x)`` resolved through the
  static class hierarchy (the same cross-module base resolution XDB008
  uses): the nearest definition up the MRO chain *plus* every override
  in transitive subclasses, because ``self`` may be any subtype;
- **module-qualified calls** — ``mod.helper(x)`` / ``pkg.mod.helper(x)``
  through ``import``/``from import`` aliases;
- **constructor calls** — ``SomeClass(x)`` resolves to
  ``SomeClass.__init__`` when one is defined in the corpus.

Anything else (calls through variables, ``getattr``, decorators
returning wrappers, builtins, numpy) is *unresolved*: the call site
maps to the empty candidate set and downstream consumers fall back to
the ⊤ summary — "nothing provable", so no rule fires on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from xaidb.analysis.registry import FileContext

__all__ = [
    "FunctionNode",
    "CallSite",
    "CallGraph",
    "build_call_graph",
    "strongly_connected_components",
    "dotted_name",
]


@dataclass
class FunctionNode:
    """One statically-indexed function or method in the corpus."""

    qualname: str  # "module.func" or "module.Class.method"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class CallSite:
    """One call expression inside an indexed function."""

    call: ast.Call
    caller: str
    #: Qualnames the call may dispatch to; empty = unresolved (⊤).
    candidates: tuple[str, ...] = ()
    #: True when the receiver expression (``self.m(x)``) is the bound
    #: first argument — positional args then map from the callee's
    #: second parameter on.
    binds_receiver: bool = False


@dataclass
class CallGraph:
    """Functions, per-call-site resolution, and the edge relation."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)
    #: caller qualname -> callee qualnames (resolved edges only)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: id(ast.Call) -> CallSite for every call in an indexed function
    callsites: dict[int, CallSite] = field(default_factory=dict)
    #: fq class name -> fq base class names (in declaration order)
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: fq class name -> direct fq subclass names
    class_subs: dict[str, list[str]] = field(default_factory=dict)
    #: module -> local alias -> fq dotted target (``np`` -> ``numpy``),
    #: kept from the build index so effect analyses can resolve sink
    #: names (``np.random.normal`` -> ``numpy.random.normal``).
    aliases: dict[str, dict[str, str]] = field(default_factory=dict)

    def resolve_call(self, call: ast.Call) -> tuple[str, ...]:
        """Candidate callee qualnames for ``call`` (empty = ⊤)."""
        site = self.callsites.get(id(call))
        return site.candidates if site is not None else ()

    def functions_of(self, ctx: FileContext) -> list[FunctionNode]:
        """Indexed functions defined in ``ctx``'s module, in source
        order."""
        return sorted(
            (f for f in self.functions.values() if f.ctx is ctx),
            key=lambda f: (f.node.lineno, f.node.col_offset),
        )

    def method_resolution(self, class_fq: str, name: str) -> list[str]:
        """Candidates for ``self.name()`` on a ``class_fq`` receiver:
        the nearest definition up the static chain, plus overrides in
        transitive subclasses (``self`` may be any subtype)."""
        candidates: list[str] = []
        # nearest definition up the chain (pre-order over bases)
        stack = [class_fq]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            qualname = f"{current}.{name}"
            if qualname in self.functions:
                candidates.append(qualname)
                break
            stack = self.class_bases.get(current, []) + stack
        # overrides anywhere below the static receiver type
        stack = list(self.class_subs.get(class_fq, []))
        seen = {class_fq}
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            qualname = f"{current}.{name}"
            if qualname in self.functions and qualname not in candidates:
                candidates.append(qualname)
            stack.extend(self.class_subs.get(current, []))
        return candidates


def dotted_name(expr: ast.AST) -> str | None:
    """``a.b.c`` as a dotted string when ``expr`` is a pure
    name/attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_import_from(module: str, node: ast.ImportFrom) -> str | None:
    """Absolute module an ``ImportFrom`` pulls from (handles relative
    levels against the importing module's package)."""
    if node.level == 0:
        return node.module
    package_parts = module.split(".")[:-1]
    up = node.level - 1
    if up > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - up]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts) if base_parts else None


class _ModuleIndex:
    """Per-module symbol tables: functions, classes, import aliases."""

    def __init__(self, files: list[FileContext]) -> None:
        #: local alias -> fq dotted target, per module
        self.aliases: dict[str, dict[str, str]] = {}
        #: fq class name -> (ClassDef, FileContext)
        self.classes: dict[str, tuple[ast.ClassDef, FileContext]] = {}
        #: module -> set of top-level function names
        self.module_functions: dict[str, set[str]] = {}
        for ctx in files:
            module = ctx.module_name
            alias_map: dict[str, str] = {}
            fn_names: set[str] = set()
            for node in ctx.tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    fn_names.add(node.name)
                elif isinstance(node, ast.ClassDef):
                    self.classes[f"{module}.{node.name}"] = (node, ctx)
                elif isinstance(node, ast.ImportFrom):
                    base = _resolve_import_from(module, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if local != "*":
                            alias_map[local] = f"{base}.{alias.name}"
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname is not None:
                            alias_map.setdefault(alias.asname, alias.name)
                        else:
                            # `import a.b.c` binds `a` to package `a`
                            head = alias.name.split(".")[0]
                            alias_map.setdefault(head, head)
            self.aliases[module] = alias_map
            self.module_functions[module] = fn_names

    def expand(self, module: str, dotted: str) -> str:
        """Rewrite the leading segment of ``dotted`` through the
        module's import aliases (``np.zeros`` -> ``numpy.zeros``)."""
        head, _, tail = dotted.partition(".")
        target = self.aliases.get(module, {}).get(head)
        if target is None:
            return dotted
        return f"{target}.{tail}" if tail else target


def build_call_graph(files: list[FileContext]) -> CallGraph:
    """Index every top-level function and method in ``files`` and
    resolve the call sites inside each of them."""
    graph = CallGraph()
    index = _ModuleIndex(files)
    graph.aliases = index.aliases

    # -- pass 1: function/method index and class hierarchy -----------
    for ctx in files:
        module = ctx.module_name
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{node.name}"
                graph.functions[qualname] = FunctionNode(
                    qualname=qualname, module=module, node=node, ctx=ctx
                )
            elif isinstance(node, ast.ClassDef):
                class_fq = f"{module}.{node.name}"
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = f"{class_fq}.{item.name}"
                        graph.functions[qualname] = FunctionNode(
                            qualname=qualname,
                            module=module,
                            node=item,
                            ctx=ctx,
                            class_name=node.name,
                        )

    for class_fq, (cls, ctx) in index.classes.items():
        bases: list[str] = []
        for base in cls.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            resolved = _resolve_class(index, ctx.module_name, dotted)
            if resolved is not None:
                bases.append(resolved)
        graph.class_bases[class_fq] = bases
        for base_fq in bases:
            graph.class_subs.setdefault(base_fq, []).append(class_fq)

    # -- pass 2: call-site resolution --------------------------------
    for fn in graph.functions.values():
        edges = graph.edges.setdefault(fn.qualname, set())
        for call in _own_calls(fn.node):
            candidates, binds_receiver = _resolve(graph, index, fn, call)
            site = CallSite(
                call=call,
                caller=fn.qualname,
                candidates=tuple(candidates),
                binds_receiver=binds_receiver,
            )
            graph.callsites[id(call)] = site
            edges.update(candidates)
    return graph


def _resolve_class(
    index: _ModuleIndex, module: str, dotted: str
) -> str | None:
    """Fully-qualified class name a dotted expression refers to."""
    if "." not in dotted:
        local = f"{module}.{dotted}"
        if local in index.classes:
            return local
    expanded = index.expand(module, dotted)
    if expanded in index.classes:
        return expanded
    return None


def _own_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.Call]:
    """Call expressions in ``fn``'s own body, excluding nested
    function/class scopes (those execute on *their* call, not here)."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(
        calls, key=lambda c: (c.lineno, c.col_offset)
    )


def _resolve(
    graph: CallGraph,
    index: _ModuleIndex,
    fn: FunctionNode,
    call: ast.Call,
) -> tuple[list[str], bool]:
    """Candidate callee qualnames plus whether the call's receiver
    expression occupies the callee's first (``self``) parameter."""
    func = call.func
    module = fn.module

    if isinstance(func, ast.Name):
        name = func.id
        # same-module top-level function
        if name in index.module_functions.get(module, set()):
            qualname = f"{module}.{name}"
            if qualname in graph.functions:
                return [qualname], False
        # from-import (possibly aliased) of a corpus function or class
        target = index.aliases.get(module, {}).get(name)
        if target is not None:
            if target in graph.functions:
                return [target], False
            ctor = _constructor(graph, index, target)
            if ctor is not None:
                return [ctor], False
        # local class constructor
        local_cls = f"{module}.{name}"
        ctor = _constructor(graph, index, local_cls)
        if ctor is not None:
            return [ctor], False
        return [], False

    if isinstance(func, ast.Attribute):
        receiver = func.value
        # self.m() / cls.m(): static hierarchy resolution
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and fn.class_name is not None
        ):
            class_fq = f"{module}.{fn.class_name}"
            return graph.method_resolution(class_fq, func.attr), True
        dotted = dotted_name(func)
        if dotted is None:
            return [], False
        expanded = index.expand(module, dotted)
        # module-qualified function: pkg.mod.helper()
        if expanded in graph.functions:
            return [expanded], False
        # ClassName.method(...) / mod.ClassName(...) constructor
        ctor = _constructor(graph, index, expanded)
        if ctor is not None:
            return [ctor], False
        # unqualified-class method access: Class.m(self_like, ...)
        head, _, attr = expanded.rpartition(".")
        if head in index.classes:
            return graph.method_resolution(head, attr), False
        return [], False

    return [], False


def _constructor(
    graph: CallGraph, index: _ModuleIndex, class_fq: str
) -> str | None:
    """``class_fq.__init__`` when the corpus defines it (directly or up
    the static chain)."""
    if class_fq not in index.classes:
        return None
    resolved = graph.method_resolution(class_fq, "__init__")
    return resolved[0] if resolved else None


def strongly_connected_components(
    graph: CallGraph,
) -> list[list[str]]:
    """Tarjan's SCCs of the resolved edge relation, emitted callees
    before callers (reverse topological order of the condensation) —
    exactly the order bottom-up summary computation wants.

    Iterative formulation: the corpus has call chains deep enough that
    recursion limits are a real hazard.
    """
    order: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(graph.functions):
        if root in order:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                order[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = sorted(
                callee
                for callee in graph.edges.get(node, ())
                if callee in graph.functions
            )
            advanced = False
            for i in range(edge_index, len(successors)):
                succ = successors[i]
                if succ not in order:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], order[succ])
            if advanced:
                continue
            if low[node] == order[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
