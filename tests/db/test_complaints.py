import numpy as np
import pytest

from xaidb.db import Complaint, ComplaintDebugger
from xaidb.exceptions import ValidationError
from xaidb.models import LogisticRegression


@pytest.fixture(scope="module")
def corrupted_setup(income):
    """Flip negative labels to positive for a planted subset; the model
    then over-predicts positives, so 'rate too high' complaints should
    blame exactly the flipped rows."""
    X = income.dataset.X.copy()
    y = income.dataset.y.copy()
    rng = np.random.default_rng(0)
    negatives = np.flatnonzero(y == 0.0)
    corrupted = rng.choice(negatives, size=40, replace=False)
    y[corrupted] = 1.0
    model = LogisticRegression(l2=1e-2).fit(X, y)
    debugger = ComplaintDebugger(model, X, y, X)
    return debugger, corrupted, X, y


class TestComplaint:
    def test_direction_validated(self):
        with pytest.raises(ValidationError):
            Complaint(query_rows=np.arange(3), direction=0)


class TestComplaintDebugger:
    def test_query_value_is_mean_probability(self, corrupted_setup):
        debugger, __, X, __y = corrupted_setup
        complaint = Complaint(query_rows=np.arange(50), direction=-1)
        value = debugger.query_value(complaint)
        expected = float(
            debugger.model.predict_proba(X[:50])[:, 1].mean()
        )
        assert value == pytest.approx(expected)

    def test_blame_ranking_finds_corrupted_rows(self, corrupted_setup):
        debugger, corrupted, X, __ = corrupted_setup
        complaint = Complaint(
            query_rows=np.arange(len(X)), direction=-1,
            description="positive rate too high",
        )
        ranking = debugger.rank_training_points(complaint)
        recall = debugger.recall_at_k(ranking, corrupted, k=80)
        assert recall > 0.5  # far above the 80/600 ~ 13% random baseline

    def test_random_baseline_is_worse(self, corrupted_setup):
        debugger, corrupted, X, y = corrupted_setup
        complaint = Complaint(query_rows=np.arange(len(X)), direction=-1)
        ranking = debugger.rank_training_points(complaint)
        influence_recall = debugger.recall_at_k(ranking, corrupted, k=80)
        rng = np.random.default_rng(1)
        random_recalls = [
            debugger.recall_at_k(rng.permutation(len(y)), corrupted, k=80)
            for __ in range(10)
        ]
        assert influence_recall > np.mean(random_recalls)

    def test_fix_moves_query_toward_complaint(self, corrupted_setup):
        debugger, __, X, __y = corrupted_setup
        complaint = Complaint(query_rows=np.arange(len(X)), direction=-1)
        __, removed, before, after = debugger.fix(complaint, n_remove=40)
        assert after < before
        assert len(removed) == 40

    def test_opposite_direction_reverses_ranking_head(self, corrupted_setup):
        debugger, __, X, __y = corrupted_setup
        down = Complaint(query_rows=np.arange(len(X)), direction=-1)
        up = Complaint(query_rows=np.arange(len(X)), direction=1)
        head_down = set(debugger.rank_training_points(down)[:20].tolist())
        head_up = set(debugger.rank_training_points(up)[:20].tolist())
        assert not head_down & head_up

    def test_fix_bounds_validated(self, corrupted_setup):
        debugger, __, X, y = corrupted_setup
        complaint = Complaint(query_rows=np.arange(5), direction=-1)
        with pytest.raises(ValidationError):
            debugger.fix(complaint, n_remove=0)
        with pytest.raises(ValidationError):
            debugger.fix(complaint, n_remove=len(y))

    def test_recall_requires_nonempty_truth(self, corrupted_setup):
        debugger, __, __X, __y = corrupted_setup
        with pytest.raises(ValidationError):
            debugger.recall_at_k([1, 2], [], 1)
