"""Unit tests for the serving contracts and the ServiceStats ledger."""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.runtime import EvalStats
from xaidb.service import (
    ExplainRequest,
    ServiceStats,
    config_digest,
)


# ---------------------------------------------------------------- types
def test_config_digest_is_key_order_invariant():
    assert config_digest({"a": 1, "b": 2}) == config_digest(
        {"b": 2, "a": 1}
    )
    assert config_digest({"a": 1}) != config_digest({"a": 2})
    assert config_digest({}) == config_digest({})


def test_batch_key_coalesces_equal_configs_only():
    instance = np.zeros(3)
    a = ExplainRequest(
        model="m", explainer="lime", instance=instance,
        config={"n_samples": 64},
    )
    b = ExplainRequest(
        model="m", explainer="lime", instance=np.ones(3),
        config={"n_samples": 64},
    )
    c = ExplainRequest(
        model="m", explainer="lime", instance=instance,
        config={"n_samples": 128},
    )
    assert a.batch_key == b.batch_key  # instances differ, key agrees
    assert a.batch_key != c.batch_key  # configs differ, key differs


def test_request_validates_instance_shape():
    with pytest.raises(ValidationError):
        ExplainRequest(
            model="m", explainer="lime", instance=np.zeros((2, 2))
        )


# ---------------------------------------------------------------- stats
def test_percentiles_nearest_rank_on_fixed_sequence():
    stats = ServiceStats()
    # record 1..100 ms in shuffled order: percentile must sort
    for ms in np.random.default_rng(0).permutation(np.arange(1, 101)):
        stats.record_completion(ms / 1e3)
    # nearest-rank: p50 of 100 samples is the 50th smallest, etc.
    assert stats.p50_s == pytest.approx(0.050)
    assert stats.p95_s == pytest.approx(0.095)
    assert stats.p99_s == pytest.approx(0.099)
    assert stats.percentile(100.0) == pytest.approx(0.100)
    assert stats.percentile(1.0) == pytest.approx(0.001)
    assert stats.n_completed == 100


def test_percentile_edge_cases():
    stats = ServiceStats()
    assert stats.p99_s == 0.0  # empty: no crash, no NaN
    stats.record_completion(0.25)
    assert stats.p50_s == 0.25  # single sample is every percentile
    assert stats.p99_s == 0.25
    with pytest.raises(ValidationError):
        stats.percentile(0.0)
    with pytest.raises(ValidationError):
        stats.percentile(101.0)


def test_latency_buffer_is_bounded():
    stats = ServiceStats(max_latency_samples=8)
    for i in range(20):
        stats.record_completion(float(i))
    assert stats.n_latency_samples == 8  # ring wrapped, no growth
    assert stats.n_completed == 20  # counter still exact
    # the window holds the most recent completions
    assert stats.percentile(100.0) == 19.0


def test_batch_histogram_and_mean():
    stats = ServiceStats()
    assert stats.mean_batch_size == 0.0
    for size in (1, 4, 4, 7):
        stats.record_batch(size)
    assert stats.batch_sizes == {1: 1, 4: 2, 7: 1}
    assert stats.mean_batch_size == pytest.approx(4.0)


def test_composes_with_eval_stats():
    stats = ServiceStats()
    stats.merge_runtime(EvalStats(n_model_evals=100, cache_hits=10))
    stats.merge_runtime(None)  # backends without a ledger are fine
    stats.merge_runtime(EvalStats(n_model_evals=50, cache_evictions=2))
    assert stats.runtime.n_model_evals == 150
    assert stats.runtime.cache_hits == 10
    assert stats.runtime.cache_evictions == 2
    metadata = stats.as_metadata()
    assert metadata["runtime"]["n_model_evals"] == 150
    assert set(metadata) >= {
        "n_received", "n_completed", "n_shed", "n_deadline_expired",
        "p50_s", "p95_s", "p99_s", "mean_batch_size", "batch_size_hist",
        "queue_depth_peak", "runtime",
    }
