#!/usr/bin/env python
"""The repo gate: lint + tier-1 tests + runtime-benchmark smoke, one exit code.

Runs, in order, stopping at the first failure:

1. ``xailint`` over the repo-standard scan set (src benchmarks examples
   tools) — the scientific-correctness invariants of docs/LINTING.md;
2. the tier-1 pytest suite (``tests/``, the ROADMAP.md conformance bar);
3. a smoke run of the A7 runtime-scaling benchmark
   (``benchmarks/bench_a07_runtime_scaling.py``) — proves the shared
   evaluation runtime's memoisation/chunking/parallel invariants on a
   small workload, so a regression in the substrate every perturbation
   explainer rides on cannot land silently;
4. a smoke run of the A10 inference-kernel benchmark
   (``benchmarks/bench_a10_inference_kernels.py``, 2000 rows via
   ``XAIDB_A10_ROWS``) — proves the vectorized tree kernels stay
   bit-identical to the row-wise reference *and* meaningfully faster,
   so a perf or exactness regression in model inference cannot land
   silently either;
5. a smoke run of the A12 serving benchmark
   (``benchmarks/bench_a12_serving.py``, reduced sweep via
   ``XAIDB_A12_SMOKE``) — proves the explanation server's coalesced
   batches stay bitwise identical to the per-request serial path and
   the closed-loop sweep completes without failures;
6. a smoke run of the A13 numeric-lint benchmark
   (``benchmarks/bench_a13_numeric_lint.py``, reduced scan set via
   ``XAIDB_A13_SMOKE``) — proves a warm (summary-cached) scan is
   finding-for-finding identical to a cold one and that the interval
   pass really is skipped, so a cache-keying bug in the numeric tier
   cannot change verdicts silently;
7. a smoke run of the A14 typestate-lint benchmark
   (``benchmarks/bench_a14_typestate_lint.py``, reduced scan set via
   ``XAIDB_A14_SMOKE``) — the same warm≡cold identity for the
   typestate (pass F) and may-raise (pass G) summaries, so the
   XDB028-XDB032 tier replays from cache without losing its
   interprocedural witnesses;
8. a smoke run of the A15 explainer-kernel benchmark
   (``benchmarks/bench_a15_explainer_kernels.py``, reduced workloads
   via ``XAIDB_A15_SMOKE``) — proves the arena-wide TreeSHAP and
   stacked-KernelSHAP batch paths stay bitwise identical to the
   retained per-row/per-instance references and meaningfully faster,
   so a regression in the vectorized explainer kernels cannot land
   silently.

Usage::

    python tools/check.py            # the full gate
    python tools/check.py --fast     # lint + tier-1 only (skip the bench smoke)
    python tools/check.py --changed-only   # lint only files changed vs
                                           # the merge base with main
    python tools/check.py --baseline # lint failures only on findings not
                                     # in xailint_baseline.sarif

``--changed-only`` narrows the *lint* step to ``.py`` files that differ
from the merge base with ``main`` (plus untracked ones); when git cannot
answer — not a repository, no ``main`` ref — it falls back to the full
scan rather than passing vacuously.  Tests always run in full.

``--baseline`` makes the lint step diff its findings against the
committed SARIF snapshot (``xailint_baseline.sarif``) and fail only on
*new* ones — the adoption path for rules with pre-existing debt (see
docs/LINTING.md "Baseline gating").  Refresh the snapshot with
``python -m xaidb.analysis --write-baseline`` after a cleanup.

When ``GITHUB_ACTIONS`` is set (workflow runs), the lint step reports
via ``--format github`` so findings surface as inline PR annotations.

Exit status is the first failing step's, 0 when everything passes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# the tier-1 convention is `PYTHONPATH=src python -m pytest`; make the
# gate self-contained by prepending src/ for every subprocess.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else [])
)

#: Top-level directories the lint gate covers (the xailint default set).
SCAN_SET = ("src", "benchmarks", "examples", "tools")


def changed_python_files() -> list[str] | None:
    """``.py`` files under the scan set that differ from the merge base
    with ``main`` (committed, staged, working-tree or untracked), or
    ``None`` when git cannot answer — the caller then runs a full scan.
    """

    def _git(*args: str) -> str:
        completed = subprocess.run(
            ["git", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(completed.stderr.strip())
        return completed.stdout

    try:
        base = None
        for ref in ("origin/main", "main"):
            try:
                base = _git("merge-base", "HEAD", ref).strip()
                break
            except RuntimeError:
                continue
        if not base:
            return None
        changed = set(_git("diff", "--name-only", base).splitlines())
        changed |= set(
            _git("ls-files", "--others", "--exclude-standard").splitlines()
        )
    except (OSError, RuntimeError):
        return None
    return sorted(
        path
        for path in changed
        if path.endswith(".py")
        and path.split("/", 1)[0] in SCAN_SET
        and (REPO_ROOT / path).exists()  # deletions need no linting
    )


STEPS: list[tuple[str, list[str]]] = [
    ("xailint", [sys.executable, str(REPO_ROOT / "tools" / "xailint.py")]),
    ("tier-1 tests", [sys.executable, "-m", "pytest", "-q", "tests"]),
    (
        "A7 runtime smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(REPO_ROOT / "benchmarks" / "bench_a07_runtime_scaling.py"),
        ],
    ),
    (
        "A10 kernel smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(
                REPO_ROOT / "benchmarks" / "bench_a10_inference_kernels.py"
            ),
        ],
    ),
    (
        "A12 serving smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(REPO_ROOT / "benchmarks" / "bench_a12_serving.py"),
        ],
    ),
    (
        "A13 numeric-lint smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(REPO_ROOT / "benchmarks" / "bench_a13_numeric_lint.py"),
        ],
    ),
    (
        "A14 typestate-lint smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(REPO_ROOT / "benchmarks" / "bench_a14_typestate_lint.py"),
        ],
    ),
    (
        "A15 explainer-kernel smoke",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--benchmark-only",
            "--benchmark-disable-gc",
            str(
                REPO_ROOT / "benchmarks" / "bench_a15_explainer_kernels.py"
            ),
        ],
    ),
]

#: The A10 smoke shrinks the workload (the >= 10x bar applies at the
#: full 10^4 rows; the bench relaxes it below that — see its module
#: docstring).  Respect an explicit caller override.
_ENV.setdefault("XAIDB_A10_ROWS", "2000")

#: The A12 smoke shrinks the client sweep and skips the JSON artifact
#: write (the committed BENCH_serving.json only changes on full runs).
_ENV.setdefault("XAIDB_A12_SMOKE", "1")

#: The A13 smoke scans only the linter's own sources and skips the
#: BENCH_lint.json write (the committed record reflects full runs).
_ENV.setdefault("XAIDB_A13_SMOKE", "1")

#: The A14 smoke scans the protocol-dense modules (service, runtime,
#: analysis) and likewise skips the BENCH_lint.json write.
_ENV.setdefault("XAIDB_A14_SMOKE", "1")

#: The A15 smoke shrinks every explainer workload, loosens the speedup
#: bars and skips the BENCH_inference.json write (the committed record
#: reflects full runs — see the bench module docstring).
_ENV.setdefault("XAIDB_A15_SMOKE", "1")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fast = "--fast" in argv
    steps = list(STEPS[:2] if fast else STEPS)
    if "--baseline" in argv:
        name, command = steps[0]
        steps[0] = (
            f"{name} (baseline diff)",
            command + ["--baseline", "xailint_baseline.sarif"],
        )
    if os.environ.get("GITHUB_ACTIONS"):
        # inside a workflow run, findings surface as inline PR
        # annotations (::warning/::error commands) instead of plain text
        name, command = steps[0]
        steps[0] = (name, command + ["--format", "github"])
    if "--changed-only" in argv:
        changed = changed_python_files()
        if changed is None:
            print(
                "check.py: --changed-only: git has no merge base here; "
                "falling back to the full lint scan",
                flush=True,
            )
        elif not changed:
            print("check.py: --changed-only: no python changes to lint",
                  flush=True)
            steps = steps[1:]
        else:
            name, command = steps[0]
            steps[0] = (f"{name} ({len(changed)} changed)",
                        command + changed)
    for name, command in steps:
        print(f"== {name}: {' '.join(command)}", flush=True)
        completed = subprocess.run(command, cwd=REPO_ROOT, env=_ENV)
        if completed.returncode != 0:
            print(f"check.py: step '{name}' failed "
                  f"(exit {completed.returncode})", file=sys.stderr)
            return completed.returncode
        print(f"== {name}: ok", flush=True)
    print("check.py: all steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
