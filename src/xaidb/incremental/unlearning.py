"""HedgeCut-style low-latency machine unlearning for randomised trees
(Schelter, Grafberger & Dunning 2021).

HedgeCut's observation: extremely randomised trees choose splits from a
small random candidate set, so most deletions do not change which
candidate wins — the split is *robust* and the deletion reduces to O(depth)
counter updates.  Only when a deletion makes a previously losing
candidate overtake the winner must the affected subtree be re-grown (from
the retained rows, which each node remembers).

This implementation keeps, per node, the evaluated candidate splits with
their class-count statistics and the row ids that reached the node, so

- :meth:`forget` updates counts along one root-leaf path per tree,
  re-grows a subtree only on a split flip, and reports whether any tree
  needed surgery;
- deletions leave the model *exactly* as if the point had never been
  trained on, up to the retained random candidate draws (the HedgeCut
  contract), which the tests verify against a from-scratch rebuild with
  the same candidate seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["UnlearnableExtraTrees"]


@dataclass
class _Candidate:
    feature: int
    threshold: float


@dataclass
class _Node:
    rows: list[int]  # training row indices that reached this node
    class_counts: np.ndarray
    candidates: list[_Candidate] = field(default_factory=list)
    chosen: int = -1  # index into candidates; -1 = leaf
    left: "_Node | None" = None
    right: "_Node | None" = None
    seed: int = 0  # seed that drew this node's candidates (for re-grow)

    @property
    def is_leaf(self) -> bool:
        return self.chosen < 0


def _gini_gain(
    counts: np.ndarray, left_counts: np.ndarray
) -> float:
    """Gini impurity decrease of splitting ``counts`` into
    (``left_counts``, rest)."""
    total = counts.sum()
    left_total = left_counts.sum()
    right_counts = counts - left_counts
    right_total = total - left_total
    if left_total == 0 or right_total == 0:
        return -np.inf

    def gini(c: np.ndarray, n: float) -> float:
        p = c / n
        return 1.0 - float(np.sum(p * p))

    parent = gini(counts, total)
    child = (
        left_total * gini(left_counts, left_total)
        + right_total * gini(right_counts, right_total)
    ) / total
    return parent - child


class UnlearnableExtraTrees:
    """An extremely-randomised-trees classifier supporting fast deletion.

    Parameters
    ----------
    n_estimators / max_depth / min_samples_leaf:
        Usual tree-ensemble knobs.
    n_candidates:
        Random (feature, threshold) candidates evaluated per node;
        HedgeCut's robustness comes from this being small.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 10,
        max_depth: int = 6,
        min_samples_leaf: int = 5,
        n_candidates: int = 8,
        random_state: RandomState = None,
    ) -> None:
        if n_estimators < 1 or n_candidates < 1:
            raise ValidationError("n_estimators and n_candidates must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_candidates = n_candidates
        self.random_state = random_state
        self.roots_: list[_Node] | None = None
        self.classes_: np.ndarray | None = None
        self._X: np.ndarray | None = None
        self._y_index: np.ndarray | None = None
        self.active_: np.ndarray | None = None
        self.n_regrow_events_: int = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "UnlearnableExtraTrees":
        X = check_array(X, name="X", ndim=2)
        y = check_array(y, name="y", ndim=1)
        self.classes_ = np.unique(y)
        lookup = {label: i for i, label in enumerate(self.classes_)}
        self._y_index = np.asarray([lookup[label] for label in y], dtype=int)
        self._X = X.copy()
        self.active_ = np.ones(len(y), dtype=bool)
        seeds = spawn_seeds(check_random_state(self.random_state), self.n_estimators)
        self.roots_ = [
            self._grow(list(range(len(y))), depth=0, seed=seed)
            for seed in seeds
        ]
        return self

    def _draw_candidates(
        self, rows: list[int], rng: np.random.Generator
    ) -> list[_Candidate]:
        X_rows = self._X[rows]
        candidates = []
        for __ in range(self.n_candidates):
            feature = int(rng.integers(0, self._X.shape[1]))
            low = float(X_rows[:, feature].min())
            high = float(X_rows[:, feature].max())
            if high <= low:
                continue
            threshold = float(rng.uniform(low, high))
            candidates.append(_Candidate(feature=feature, threshold=threshold))
        return candidates

    def _class_counts(self, rows: list[int]) -> np.ndarray:
        return np.bincount(
            self._y_index[rows], minlength=len(self.classes_)
        ).astype(float)

    def _best_candidate(
        self, rows: list[int], candidates: list[_Candidate]
    ) -> int:
        counts = self._class_counts(rows)
        best_index, best_gain = -1, 1e-12
        for index, candidate in enumerate(candidates):
            left_rows = [
                r for r in rows if self._X[r, candidate.feature] <= candidate.threshold
            ]
            if (
                len(left_rows) < self.min_samples_leaf
                or len(rows) - len(left_rows) < self.min_samples_leaf
            ):
                continue
            gain = _gini_gain(counts, self._class_counts(left_rows))
            if gain > best_gain:
                best_index, best_gain = index, gain
        return best_index

    def _grow(self, rows: list[int], depth: int, seed: int) -> _Node:
        rng = check_random_state(seed)
        node = _Node(
            rows=list(rows),
            class_counts=self._class_counts(rows),
            seed=seed,
        )
        if (
            depth >= self.max_depth
            or len(rows) < 2 * self.min_samples_leaf
            or len(np.unique(self._y_index[rows])) < 2
        ):
            return node
        node.candidates = self._draw_candidates(rows, rng)
        node.chosen = self._best_candidate(rows, node.candidates)
        if node.chosen < 0:
            return node
        winner = node.candidates[node.chosen]
        left_rows = [
            r for r in rows if self._X[r, winner.feature] <= winner.threshold
        ]
        left_set = set(left_rows)
        right_rows = [r for r in rows if r not in left_set]
        child_seeds = spawn_seeds(rng, 2)
        node.left = self._grow(left_rows, depth + 1, child_seeds[0])
        node.right = self._grow(right_rows, depth + 1, child_seeds[1])
        return node

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["roots_"])
        X = check_array(X, name="X", ndim=2)
        out = np.zeros((X.shape[0], len(self.classes_)))
        for root in self.roots_:
            for i, row in enumerate(X):
                node = root
                while not node.is_leaf:
                    winner = node.candidates[node.chosen]
                    node = (
                        node.left
                        if row[winner.feature] <= winner.threshold
                        else node.right
                    )
                total = node.class_counts.sum()
                if total > 0:
                    out[i] += node.class_counts / total
        # xailint: disable=XDB023 (a fitted forest holds at least one root)
        return out / len(self.roots_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    # ------------------------------------------------------------------
    # unlearning
    # ------------------------------------------------------------------
    def forget(self, row: int) -> int:
        """Delete one training row from every tree.

        Returns the number of subtree re-grow events triggered (0 when
        every affected split was robust — the common, O(depth) case).
        """
        check_fitted(self, ["roots_"])
        if not 0 <= row < len(self.active_):
            raise ValidationError("row out of range")
        if not self.active_[row]:
            raise ValidationError(f"row {row} was already forgotten")
        self.active_[row] = False
        regrows = 0
        for tree_index, root in enumerate(self.roots_):
            regrows += self._forget_in_subtree(root, row, depth=0, holder=(self.roots_, tree_index))
        self.n_regrow_events_ += regrows
        return regrows

    def _forget_in_subtree(self, node: _Node, row: int, depth: int, holder) -> int:
        """Remove ``row`` from ``node`` downward; returns re-grow count."""
        if row not in node.rows:
            return 0
        node.rows.remove(row)
        node.class_counts = self._class_counts(node.rows)
        if node.is_leaf:
            return 0
        # does the winning candidate change after the deletion?
        new_best = self._best_candidate(node.rows, node.candidates)
        if new_best != node.chosen:
            # split flip: re-grow this subtree from the surviving rows
            container, key = holder
            rebuilt = self._grow(node.rows, depth, node.seed)
            container[key] = rebuilt
            return 1
        winner = node.candidates[node.chosen]
        if self._X[row, winner.feature] <= winner.threshold:
            return self._forget_in_subtree(
                node.left, row, depth + 1, (node.__dict__, "left")
            )
        return self._forget_in_subtree(
            node.right, row, depth + 1, (node.__dict__, "right")
        )
