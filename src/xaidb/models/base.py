"""Model interfaces.

Every xaidb model follows the familiar estimator protocol:

- constructor takes hyperparameters only and stores them verbatim;
- :meth:`fit` learns state into trailing-underscore attributes and returns
  ``self``;
- :meth:`predict` (and :meth:`predict_proba` for classifiers) consume 2-D
  float matrices.

:func:`clone` builds an unfitted copy with identical hyperparameters —
data-valuation methods retrain clones hundreds of times, so this is a
first-class operation rather than an afterthought.
"""

from __future__ import annotations

import copy
import inspect
from abc import ABC, abstractmethod
from typing import Any, TypeVar

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["ModelT", "Model", "clone", "Classifier", "Regressor"]

ModelT = TypeVar("ModelT", bound="Model")


class Model(ABC):
    """Abstract base estimator."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Model":
        """Learn from ``(X, y)`` and return ``self``."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X``."""

    # ------------------------------------------------------------------
    def get_params(self) -> dict[str, Any]:
        """Hyperparameters as passed to the constructor.

        Relies on the convention (enforced across xaidb) that ``__init__``
        stores each argument under an attribute of the same name.
        """
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                parameter.VAR_POSITIONAL,
                parameter.VAR_KEYWORD,
            ):
                continue
            if not hasattr(self, name):
                raise ValidationError(
                    f"{type(self).__name__}.__init__ argument {name!r} is "
                    f"not stored as an attribute; get_params cannot recover it"
                )
            params[name] = getattr(self, name)
        return params

    def _validate_fit_args(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        X = check_array(X, name="X", ndim=2)
        y = check_array(y, name="y", ndim=1)
        check_matching_lengths(("X", X), ("y", y))
        return X, y


def clone(model: ModelT) -> ModelT:
    """Return an unfitted copy of ``model`` with the same hyperparameters."""
    params = {key: copy.deepcopy(value) for key, value in model.get_params().items()}
    return type(model)(**params)


class Classifier(Model):
    """Base class for classifiers over integer-coded classes.

    Subclasses must set ``classes_`` in :meth:`fit` and implement
    :meth:`predict_proba`; :meth:`predict` defaults to the argmax class.
    """

    classes_: np.ndarray | None = None

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_rows, n_classes)``."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Set ``classes_`` from ``y`` and return indices into it."""
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValidationError(
                "classification requires at least two distinct labels"
            )
        lookup = {label: index for index, label in enumerate(self.classes_)}
        return np.asarray([lookup[label] for label in y], dtype=int)


class Regressor(Model):
    """Marker base class for regressors (predict returns real values)."""
