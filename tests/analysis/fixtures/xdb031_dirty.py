"""Dirty fixture for XDB031: fire-and-forget task bodies that provably
raise exception types the service boundary does not model — nothing
awaits the tasks, so the failures vanish into the event loop."""

import asyncio

__all__ = ["ServiceError", "refresh_all", "evict_all"]


class ServiceError(Exception):
    """The boundary's modelled failure type."""


async def _flaky_refresh(key):
    if not key:
        raise KeyError(key)
    return key


async def _flaky_evict(key):
    if key is None:
        raise ValueError("missing key")
    return key


async def refresh_all(keys):
    for key in keys:
        asyncio.create_task(_flaky_refresh(key))  # finding 1: KeyError


async def evict_all(keys):
    for key in keys:
        asyncio.ensure_future(_flaky_evict(key))  # finding 2: ValueError
