"""XDB018–XDB022 — the concurrency & determinism rule tier.

The PR 5 shared-memory runtime and the upcoming serving layer rest on
contracts that are invisible to per-function analysis: a pooled task
must not mutate the read-only arena buffer it was handed, must not draw
from process-global randomness, must actually be picklable, async
request paths must not block the event loop, and every ``SharedMemory``
acquisition must reach a release.  These five rules check those
contracts statically, riding on the effect vectors
(:mod:`xaidb.analysis.effects`) that summary pass D computes bottom-up
over the SCC condensation:

- **XDB018 shared-array-mutation** — a callable submitted to
  ``parallel_map``/``pool.map`` transitively writes into an array that
  aliases the shared arena (``resolve_shared``/``.load()``): a
  cross-process race, or a ``ValueError`` at best (the buffer is mapped
  read-only).
- **XDB019 nondeterministic-worker-task** — a pooled task transitively
  draws global RNG or wall-clock state, breaking the
  bit-identical-for-every-``n_jobs`` seeding contract.
- **XDB020 unpicklable-task-capture** — the submitted task is a lambda
  or a function defined inside the submitting frame: pickling fails and
  the map silently degrades to the serial fallback.
- **XDB021 blocking-call-in-async** — an ``async def`` body reaches a
  blocking call (directly or through a resolved helper) without an
  executor hop.
- **XDB022 leaked-shared-resource** — a ``SharedMemory`` acquisition
  with a provable CFG path to the function exit on which the segment is
  neither closed/unlinked nor handed off.

As everywhere in xailint, unresolved task references, dynamic scopes
and ambiguous control flow collapse to ⊤: no rule fires on anything it
cannot prove.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.effects import (
    direct_block_witness,
    leaked_acquisitions,
    resolve_task_refs,
    submission_sites,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import ProjectContext, ProjectRule, register
from xaidb.analysis.rules.interproc import _package_functions

__all__ = [
    "SharedArrayMutationRule",
    "NondeterministicWorkerTaskRule",
    "UnpicklableTaskCaptureRule",
    "BlockingCallInAsyncRule",
    "LeakedSharedResourceRule",
]


def _mentions_submission(fn: ast.AST) -> bool:
    """Cheap syntactic gate: does ``fn`` submit anything to a pool at
    all (``parallel_map`` by any name, or a ``.map`` method call)?"""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "parallel_map":
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "parallel_map",
                "map",
            ):
                return True
    return False


def _mentions_shared_memory(fn: ast.AST) -> bool:
    """Cheap syntactic gate for XDB022: any ``SharedMemory`` call."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "SharedMemory":
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "SharedMemory"
            ):
                return True
    return False


@register
class SharedArrayMutationRule(ProjectRule):
    rule_id = "XDB018"
    symbol = "shared-array-mutation"
    description = (
        "A callable submitted to parallel_map/WorkerPool.map "
        "transitively writes into an array aliasing the shared worker "
        "arena (resolve_shared/.load()): shared buffers are mapped "
        "read-only and owned by every worker at once, so the write is "
        "a cross-process race; copy first or return fresh arrays."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            if not _mentions_submission(fnode.node):
                continue
            seen: set[tuple[int, str]] = set()
            for call, task in submission_sites(fnode.node):
                for qualname in resolve_task_refs(
                    interproc.graph, fnode, task
                ):
                    summary = interproc.summaries.get(qualname)
                    if summary is None or (id(call), qualname) in seen:
                        continue
                    seen.add((id(call), qualname))
                    witness = summary.effects.mutates_shared
                    if witness is not None:
                        yield ctx.finding(
                            self,
                            call,
                            f"pooled task {qualname} mutates a shared "
                            f"arena array ({witness}); workers race on "
                            f"one read-only buffer — copy before "
                            f"writing or build the result fresh",
                        )


@register
class NondeterministicWorkerTaskRule(ProjectRule):
    rule_id = "XDB019"
    symbol = "nondeterministic-worker-task"
    description = (
        "A callable submitted to parallel_map/WorkerPool.map "
        "transitively draws from process-global randomness or "
        "wall-clock state (np.random.* module functions, random.*, "
        "time.time, os.urandom, ...): results then depend on worker "
        "scheduling, breaking the bit-identical-for-every-n_jobs "
        "contract; derive all randomness from the task's seed payload."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            if not _mentions_submission(fnode.node):
                continue
            seen: set[tuple[int, str]] = set()
            for call, task in submission_sites(fnode.node):
                for qualname in resolve_task_refs(
                    interproc.graph, fnode, task
                ):
                    summary = interproc.summaries.get(qualname)
                    if summary is None or (id(call), qualname) in seen:
                        continue
                    seen.add((id(call), qualname))
                    witness = summary.effects.draws_global_rng
                    if witness is not None:
                        yield ctx.finding(
                            self,
                            call,
                            f"pooled task {qualname} draws from "
                            f"process-global randomness or wall-clock "
                            f"state ({witness}); thread the per-task "
                            f"spawned seed into a local Generator "
                            f"instead",
                        )


@register
class UnpicklableTaskCaptureRule(ProjectRule):
    rule_id = "XDB020"
    symbol = "unpicklable-task-capture"
    description = (
        "The callable submitted to parallel_map/WorkerPool.map is a "
        "lambda or a function defined inside the submitting frame: "
        "pickling it fails, so the pooled map silently degrades to the "
        "serial fallback and the requested parallelism never happens; "
        "move the task to module level."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for _interproc, ctx, fnode in _package_functions(project):
            fn = fnode.node
            if not _mentions_submission(fn):
                continue
            local_defs: dict[str, str] = {}
            for node in ast.walk(fn):
                if (
                    isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and node is not fn
                ):
                    local_defs[node.name] = (
                        f"function '{node.name}' defined inside "
                        f"{fn.name}"
                    )
                elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Lambda
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_defs[target.id] = (
                                f"lambda bound to '{target.id}'"
                            )
            for call, task in submission_sites(fn):
                what = None
                if isinstance(task, ast.Lambda):
                    what = "a lambda"
                elif (
                    isinstance(task, ast.Name) and task.id in local_defs
                ):
                    what = local_defs[task.id]
                if what is not None:
                    yield ctx.finding(
                        self,
                        call,
                        f"task submitted to the worker pool is {what}, "
                        f"which cannot be pickled: the map silently "
                        f"degrades to the serial fallback — define the "
                        f"task at module level",
                    )


@register
class BlockingCallInAsyncRule(ProjectRule):
    rule_id = "XDB021"
    symbol = "blocking-call-in-async"
    description = (
        "An async def body reaches a blocking call — time.sleep, "
        "subprocess/socket/file I/O, .join()/.result()/.acquire(), or "
        "a model fit/predict path — directly or through a resolved "
        "helper, without an executor hop: the call stalls the whole "
        "event loop; use asyncio equivalents or run_in_executor."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            fn = fnode.node
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            aliases = interproc.graph.aliases.get(fnode.module, {})
            for site in interproc._sites_by_caller.get(
                fnode.qualname, ()
            ):
                call = site.call
                witness = direct_block_witness(call, aliases)
                if witness is not None:
                    yield ctx.finding(
                        self,
                        call,
                        f"async function {fn.name} performs a blocking "
                        f"call ({witness}); the event loop stalls for "
                        f"its whole duration — await an asyncio "
                        f"equivalent or hop to an executor",
                    )
                    continue
                for qualname in site.candidates:
                    summary = interproc.summaries.get(qualname)
                    if summary is None:
                        continue
                    transitive = summary.effects.may_block
                    if transitive is not None:
                        yield ctx.finding(
                            self,
                            call,
                            f"async function {fn.name} calls "
                            f"{qualname}, which may block "
                            f"({transitive}); run it in an executor "
                            f"(loop.run_in_executor / "
                            f"asyncio.to_thread)",
                        )
                        break


@register
class LeakedSharedResourceRule(ProjectRule):
    rule_id = "XDB022"
    symbol = "leaked-shared-resource"
    description = (
        "A SharedMemory acquisition has a provable CFG path to the "
        "function exit (early return, raise, or fall-through) on which "
        "the segment is neither closed/unlinked nor handed off to an "
        "owner: the mapping outlives the function and, across enough "
        "calls, exhausts /dev/shm; release in a finally block."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for _interproc, ctx, fnode in _package_functions(project):
            fn = fnode.node
            if not _mentions_shared_memory(fn):
                continue
            for node, name in leaked_acquisitions(fn):
                yield ctx.finding(
                    self,
                    node,
                    f"SharedMemory segment bound to '{name}' can reach "
                    f"the end of {fnode.qualname} without close()/"
                    f"unlink(); release it in a finally block or hand "
                    f"it to an owner that does",
                )
