import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.models import LogisticRegression, accuracy, roc_auc
from xaidb.utils.linalg import sigmoid


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 3))
    logits = X @ np.asarray([2.0, -1.0, 0.5])
    y = (rng.uniform(size=400) < sigmoid(logits)).astype(float)
    return X, y


class TestLogisticRegression:
    def test_learns_signal(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.72
        assert roc_auc(y, model.predict_proba(X)[:, 1]) > 0.80

    def test_coefficient_signs_match_generator(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0] > 0
        assert model.coef_[1] < 0

    def test_probabilities_sum_to_one(self, separable):
        X, y = separable
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_newton_converges_fast(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        assert model.n_iter_ <= 15

    def test_rejects_multiclass(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.asarray([0.0, 1.0, 2.0] * 10)
        with pytest.raises(ValidationError, match="binary"):
            LogisticRegression().fit(X, y)

    def test_rejects_single_class(self):
        X = np.ones((10, 2))
        with pytest.raises(ValidationError):
            LogisticRegression().fit(X, np.zeros(10))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba(np.ones((1, 2)))

    def test_classes_preserved(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y + 5.0)  # labels 5, 6
        assert set(model.predict(X)) <= {5.0, 6.0}

    def test_sample_weight_zero_removes_points(self, separable):
        X, y = separable
        full = LogisticRegression().fit(X, y)
        weights = np.ones(len(y))
        weights[:100] = 0.0
        weighted = LogisticRegression().fit(X, y, sample_weight=weights)
        subset = LogisticRegression().fit(X[100:], y[100:])
        assert np.allclose(weighted.coef_, subset.coef_, atol=1e-6)
        assert not np.allclose(weighted.coef_, full.coef_, atol=1e-4)

    def test_gradient_vanishes_at_optimum(self, separable):
        X, y = separable
        model = LogisticRegression(l2=1e-3).fit(X, y)
        # total gradient including the penalty must be ~0
        design = np.column_stack([X, np.ones(len(y))])
        y01 = y  # labels already 0/1
        residual = sigmoid(design @ model.theta_) - y01
        penalty = np.append(np.full(3, model.l2), 0.0)
        gradient = design.T @ residual + penalty * model.theta_
        assert np.linalg.norm(gradient) < 1e-4 * len(y)

    def test_hessian_matches_finite_difference(self, separable):
        X, y = separable
        model = LogisticRegression(l2=1e-2).fit(X[:50], y[:50])
        theta = model.theta_
        hessian = model.loss_hessian(X[:50])

        def grad(t):
            return model.loss_gradients(X[:50], y[:50], theta=t).mean(
                axis=0
            ) + np.append(np.full(3, model.l2), 0.0) * t / 50

        eps = 1e-5
        for j in range(len(theta)):
            step = np.zeros_like(theta)
            step[j] = eps
            fd = (grad(theta + step) - grad(theta - step)) / (2 * eps)
            assert np.allclose(fd, hessian[:, j], atol=1e-5)

    def test_set_theta_roundtrip(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        theta = model.theta_.copy()
        model.set_theta(theta * 2.0)
        assert np.allclose(model.theta_, theta * 2.0)

    def test_decision_function_consistent_with_proba(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        assert np.allclose(
            sigmoid(model.decision_function(X)), model.predict_proba(X)[:, 1]
        )
