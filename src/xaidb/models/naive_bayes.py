"""Gaussian naive Bayes classifier.

Included both as a fast baseline and because its conditional-independence
assumption gives Shapley-value tests a model with analytically predictable
attribution structure.
"""

from __future__ import annotations

import numpy as np

from xaidb.models.base import Classifier
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["GaussianNB"]


class GaussianNB(Classifier):
    """Per-class Gaussian likelihoods with empirical class priors.

    A small variance floor keeps degenerate (constant-within-class)
    features from producing infinite likelihoods.
    """

    def __init__(self, *, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # per-class means
        self.var_: np.ndarray | None = None  # per-class variances
        self.class_prior_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = self._validate_fit_args(X, y)
        y_index = self._encode_labels(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        floor = self.var_smoothing * float(np.var(X, axis=0).max() or 1.0)
        for k in range(n_classes):
            rows = X[y_index == k]
            # xailint: disable=XDB023 (fit's argument validation rejects an empty y)
            self.class_prior_[k] = len(rows) / len(y)
            self.theta_[k] = rows.mean(axis=0)
            self.var_[k] = rows.var(axis=0) + max(floor, 1e-12)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["theta_"])
        X = check_array(X, name="X", ndim=2)
        log_joint = np.zeros((X.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[k])
                + (X - self.theta_[k]) ** 2 / self.var_[k],
                axis=1,
            )
            log_joint[:, k] = np.log(self.class_prior_[k] + 1e-300) + log_likelihood
        log_joint -= log_joint.max(axis=1, keepdims=True)
        joint = np.exp(log_joint)
        # xailint: disable=XDB023 (the max shift leaves one term at exp(0) = 1, so the sum is >= 1)
        return joint / joint.sum(axis=1, keepdims=True)
