"""Causal substrate: directed acyclic causal graphs and structural causal
models with interventional sampling and abduction-action-prediction
counterfactuals (consumed by causal/asymmetric Shapley values, Shapley
flow, and LEWIS-style necessity/sufficiency scores)."""

from xaidb.causal.estimation import (
    fit_linear_gaussian_scm,
    mechanism_goodness_of_fit,
)
from xaidb.causal.graph import CausalGraph
from xaidb.causal.scm import (
    AdditiveNoiseMechanism,
    BernoulliMechanism,
    DiscreteMechanism,
    Mechanism,
    StructuralCausalModel,
)

__all__ = [
    "CausalGraph",
    "StructuralCausalModel",
    "Mechanism",
    "AdditiveNoiseMechanism",
    "BernoulliMechanism",
    "DiscreteMechanism",
    "fit_linear_gaussian_scm",
    "mechanism_goodness_of_fit",
]
