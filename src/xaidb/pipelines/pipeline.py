"""The provenance-tracking pipeline runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from xaidb.exceptions import ProvenanceError, ValidationError
from xaidb.pipelines.operators import Operator, StageRecord
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["PipelineResult", "ProvenancePipeline"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produced.

    ``lineage[i]`` is the original row id behind output row ``i``;
    ``records`` documents per stage which original rows it touched or
    dropped — the provenance needed to trace a bad model decision back
    through the preparation stages.
    """

    X: np.ndarray
    y: np.ndarray
    lineage: np.ndarray
    records: list[StageRecord] = field(default_factory=list)

    def stages_touching(self, original_row: Hashable) -> list[str]:
        """Names of the stages that modified (or dropped) a given
        original row — the backward provenance query."""
        row = int(original_row)
        stages = []
        for record in self.records:
            if row in record.touched_rows or row in record.dropped_rows:
                stages.append(record.name)
        return stages

    def surviving_original_rows(self) -> np.ndarray:
        return np.unique(self.lineage)

    def output_row_of(self, original_row: int) -> int | None:
        """Index of the output row descended from ``original_row``
        (None if dropped)."""
        matches = np.flatnonzero(self.lineage == original_row)
        if matches.size == 0:
            return None
        if matches.size > 1:
            raise ProvenanceError(
                f"original row {original_row} has multiple descendants; "
                f"use lineage directly"
            )
        return int(matches[0])


class ProvenancePipeline:
    """A fixed sequence of operators applied with lineage tracking.

    Parameters
    ----------
    stages:
        Operators executed in order.
    random_state:
        Seed; each stage gets an independent child seed so inserting or
        removing a stage does not perturb the randomness of later ones
        more than necessary.
    """

    def __init__(self, stages: list[Operator], *, random_state: RandomState = None) -> None:
        if not stages:
            raise ValidationError("pipeline needs at least one stage")
        self.stages = list(stages)
        self.random_state = random_state

    def run(self, X: np.ndarray, y: np.ndarray) -> PipelineResult:
        """Execute all stages; returns data + lineage + stage records."""
        X = check_array(X, name="X", ndim=2, ensure_finite=False)
        y = check_array(y, name="y", ndim=1)
        check_matching_lengths(("X", X), ("y", y))
        seeds = spawn_seeds(check_random_state(self.random_state), len(self.stages))
        lineage = np.arange(len(y))
        records: list[StageRecord] = []
        current_X, current_y = X.copy(), y.copy()
        for stage, seed in zip(self.stages, seeds):
            rng = check_random_state(seed)
            current_X, current_y, lineage, record = stage.apply(
                current_X, current_y, lineage, rng
            )
            records.append(record)
        return PipelineResult(
            X=current_X, y=current_y, lineage=lineage, records=records
        )

    def run_without_stage(
        self, X: np.ndarray, y: np.ndarray, stage_index: int
    ) -> PipelineResult:
        """Re-run the pipeline with one stage ablated (same child seeds
        for the remaining stages) — the intervention primitive stage
        attribution is built on."""
        if not 0 <= stage_index < len(self.stages):
            raise ValidationError("stage_index out of range")
        X = check_array(X, name="X", ndim=2, ensure_finite=False)
        y = check_array(y, name="y", ndim=1)
        seeds = spawn_seeds(check_random_state(self.random_state), len(self.stages))
        lineage = np.arange(len(y))
        records: list[StageRecord] = []
        current_X, current_y = X.copy(), y.copy()
        for index, (stage, seed) in enumerate(zip(self.stages, seeds)):
            if index == stage_index:
                continue
            rng = check_random_state(seed)
            current_X, current_y, lineage, record = stage.apply(
                current_X, current_y, lineage, rng
            )
            records.append(record)
        return PipelineResult(
            X=current_X, y=current_y, lineage=lineage, records=records
        )
