"""Clean fixture for XDB017: pure helpers, defensive copies at the
boundary, and mutation of locally-owned buffers stay silent."""

import numpy as np

__all__ = ["normalise_inplace", "normalise", "head_view", "Explainer"]


def normalise_inplace(arr):
    arr[:] = arr / arr.sum()


def normalise(arr):
    return arr / arr.sum()  # pure: fresh storage


def head_view(x):
    return x[:2]


class Explainer:
    def explain(self, X):
        work = np.array(X)  # copy first: the helper owns 'work'
        normalise_inplace(work)
        return np.abs(work)

    def explain_pure(self, X):
        return normalise(X)  # pure helper, fresh storage out

    def explain_head(self, X):
        top = head_view(X)
        return top.copy()  # copy at the boundary
