"""XDB002 dirty fixture: global-state randomness everywhere."""

import random

import numpy as np

__all__ = ["sample"]


def sample() -> float:
    np.random.seed(0)
    noise = np.random.normal(size=3)
    pick = random.choice([1, 2, 3])
    return float(noise.sum()) + pick + random.random()
