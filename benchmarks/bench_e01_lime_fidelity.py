"""E1 — LIME locally approximates any classifier (Ribeiro et al. 2016).

Reproduced shape: across black boxes of varying smoothness, LIME's local
surrogate reaches high local fidelity (weighted R^2) and recovers the
model's truly-important features (recall of the top-3 ground-truth-weight
features among LIME's top-3).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.evaluation import local_fidelity
from xaidb.explainers import LimeExplainer, predict_positive_proba
from xaidb.models import (
    GradientBoostedClassifier,
    LogisticRegression,
    RandomForestClassifier,
)

N_INSTANCES = 15


def compute_rows():
    workload = make_income(1200, random_state=0)
    dataset = workload.dataset
    true_top = {
        name
        for name, __ in sorted(
            workload.true_label_weights.items(), key=lambda kv: -abs(kv[1])
        )[:3]
    }
    models = {
        "logistic": LogisticRegression(l2=1e-2),
        "random_forest": RandomForestClassifier(
            n_estimators=20, max_depth=6, random_state=0
        ),
        "gbt": GradientBoostedClassifier(
            n_estimators=40, max_depth=3, random_state=0
        ),
    }
    lime = LimeExplainer(dataset, n_samples=1000)
    rows = []
    for name, model in models.items():
        model.fit(dataset.X, dataset.y)
        f = predict_positive_proba(model)
        recalls, scores = [], []
        for i in range(N_INSTANCES):
            attribution = lime.explain(f, dataset.X[i], random_state=i)
            lime_top = {feature for feature, __ in attribution.top(3)}
            recalls.append(len(lime_top & true_top) / 3.0)
            scores.append(attribution.metadata["score"])
        surrogate_r2 = float(np.mean(scores))
        recall = float(np.mean(recalls))
        rows.append((name, surrogate_r2, recall))
    return rows


def test_e01_lime_fidelity(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E1: LIME local fidelity and feature recall (paper: high on all models)",
        ["model", "surrogate weighted R^2", "recall@3 of true top-3"],
        rows,
    )
    by_model = {name: (r2, recall) for name, r2, recall in rows}
    # shape: smooth logistic model is fitted nearly perfectly locally
    assert by_model["logistic"][0] > 0.8
    # shape: on every model LIME recovers most truly-important features
    for name, (__, recall) in by_model.items():
        assert recall >= 0.5, name
