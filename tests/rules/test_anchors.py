import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.rules import AnchorsExplainer
from xaidb.rules.anchors import kl_bernoulli, kl_lower_bound, kl_upper_bound


class TestKlBounds:
    def test_kl_zero_at_equal(self):
        assert kl_bernoulli(0.3, 0.3) == pytest.approx(0.0, abs=1e-10)

    def test_kl_positive_elsewhere(self):
        assert kl_bernoulli(0.3, 0.7) > 0

    def test_bounds_bracket_mean(self):
        mean, n, beta = 0.8, 50, 2.0
        lower = kl_lower_bound(mean, n, beta)
        upper = kl_upper_bound(mean, n, beta)
        assert lower <= mean <= upper

    def test_bounds_tighten_with_samples(self):
        beta = 2.0
        wide = kl_upper_bound(0.8, 10, beta) - kl_lower_bound(0.8, 10, beta)
        narrow = kl_upper_bound(0.8, 1000, beta) - kl_lower_bound(0.8, 1000, beta)
        assert narrow < wide

    def test_zero_samples_vacuous(self):
        assert kl_upper_bound(0.5, 0, 1.0) == 1.0
        assert kl_lower_bound(0.5, 0, 1.0) == 0.0


class TestAnchorsExplainer:
    @pytest.fixture(scope="class")
    def explainer(self, income, income_forest):
        return AnchorsExplainer(
            predict_positive_proba(income_forest),
            income.dataset,
            precision_threshold=0.9,
            max_anchor_size=4,
        )

    def test_anchor_precision_meets_threshold(self, explainer, income, income_forest):
        anchor = explainer.explain(income.dataset.X[7], random_state=0)
        assert anchor.precision >= 0.85  # allow small estimation slack

    def test_anchor_precision_holds_on_fresh_samples(self, explainer, income, income_forest):
        """The found rule must generalise: fresh perturbations satisfying
        the anchor agree with the anchored prediction at ~ the reported
        precision."""
        x = income.dataset.X[7]
        anchor = explainer.explain(x, random_state=0)
        f = predict_positive_proba(income_forest)
        decision = float(f(x[None, :])[0]) >= 0.5
        rng = np.random.default_rng(123)
        samples = explainer._sample_under(
            tuple(anchor.feature_indices), x, 2000, rng
        )
        agreement = float(np.mean((f(samples) >= 0.5) == decision))
        assert agreement >= anchor.precision - 0.1

    def test_anchor_short(self, explainer, income):
        anchor = explainer.explain(income.dataset.X[3], random_state=1)
        assert len(anchor.predicates) <= 4

    def test_coverage_measured_on_data(self, explainer, income):
        anchor = explainer.explain(income.dataset.X[3], random_state=2)
        mask = explainer._satisfies(
            income.dataset.X, tuple(anchor.feature_indices), income.dataset.X[3]
        )
        assert anchor.coverage == pytest.approx(float(mask.mean()))
        assert mask[3]  # the instance satisfies its own anchor

    def test_fixed_selection_mode_runs(self, income, income_forest):
        explainer = AnchorsExplainer(
            predict_positive_proba(income_forest),
            income.dataset,
            precision_threshold=0.85,
            candidate_selection="fixed",
            max_anchor_size=3,
        )
        anchor = explainer.explain(income.dataset.X[5], random_state=3)
        assert anchor.precision > 0.5

    def test_invalid_selection_mode(self, income, income_forest):
        with pytest.raises(ValidationError):
            AnchorsExplainer(
                predict_positive_proba(income_forest),
                income.dataset,
                candidate_selection="thompson",
            )

    def test_trivially_constant_model_gets_perfect_anchor(self, income):
        constant = lambda X: np.full(X.shape[0], 0.9)
        explainer = AnchorsExplainer(
            constant, income.dataset, precision_threshold=0.95, max_anchor_size=2
        )
        anchor = explainer.explain(income.dataset.X[0], random_state=4)
        assert anchor.precision >= 0.95

    def test_predicate_text_mentions_feature_names(self, explainer, income):
        anchor = explainer.explain(income.dataset.X[9], random_state=5)
        names = set(income.dataset.feature_names)
        for predicate in anchor.predicates:
            assert any(name in predicate for name in names)
