"""E20 — Sanity checks for gradient attributions; LIME for text
(Adebayo et al. 2018 shape; tutorial §2.4).

Reproduced shapes:

- saliency and gradient*input *pass* the parameter-randomisation sanity
  check (rank correlation with the randomised model's attributions is far
  from 1), while a model-independent "edge detector" attribution *fails*
  it with correlation ~1 — exactly Adebayo et al.'s headline finding
  re-expressed for tabular MLPs;
- word-level LIME recovers the planted sentiment vocabulary of a text
  classifier (the §2.4 text claim).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_two_moons
from xaidb.evaluation import parameter_randomization_check
from xaidb.explainers import (
    BagOfWordsClassifier,
    LimeTextExplainer,
    gradient_times_input,
    saliency,
)
from xaidb.models import MLPClassifier

POSITIVE_WORDS = {"great", "wonderful", "loved"}
NEGATIVE_WORDS = {"terrible", "awful", "hated"}


def compute_rows():
    moons = make_two_moons(400, random_state=0)
    model = MLPClassifier(
        hidden_sizes=(16, 16), max_iter=600, random_state=0
    ).fit(moons.X, moons.y)

    methods = {
        "saliency": lambda m, x: saliency(m, x).values,
        "gradient*input": lambda m, x: gradient_times_input(m, x).values,
        "edge detector (|x|)": lambda m, x: np.abs(x),
    }
    sanity_rows = [
        (
            name,
            parameter_randomization_check(
                model, fn, moons.X[:15], random_state=1
            ),
        )
        for name, fn in methods.items()
    ]

    # text LIME
    documents = [
        "great movie loved the plot",
        "wonderful acting great pacing",
        "loved it wonderful story",
        "terrible movie hated the plot",
        "awful acting terrible pacing",
        "hated it awful story",
    ] * 4
    labels = [1, 1, 1, 0, 0, 0] * 4
    text_model = BagOfWordsClassifier().fit(documents, labels)
    explainer = LimeTextExplainer(n_samples=400)
    attribution = explainer.explain(
        text_model.positive_proba,
        "great movie loved the plot",
        random_state=0,
    )
    top_words = [name for name, value in attribution.ranked()[:2]]
    text_rows = [(word, attribution.as_dict()[word]) for word in top_words]
    return sanity_rows, text_rows


def test_e20_sanity_saliency(benchmark):
    sanity_rows, text_rows = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E20a: rank correlation after parameter randomisation "
        "(paper: model-dependent methods ~0, model-independent ~1)",
        ["attribution method", "correlation after randomisation"],
        sanity_rows,
    )
    print_table(
        "E20b: text-LIME top words for a positive review",
        ["word", "weight"],
        text_rows,
    )
    by_name = dict(sanity_rows)
    assert by_name["saliency"] < 0.8
    assert by_name["gradient*input"] < 0.8
    assert by_name["edge detector (|x|)"] > 0.99
    # the top text-LIME words are the planted positive vocabulary
    assert set(word for word, __ in text_rows) & POSITIVE_WORDS
