"""E2 — LIME's sampling is unreliable; stability indices (Visani 2020).

Reproduced shape: VSI and CSI grow monotonically (in trend) with the
number of perturbation samples — small budgets give unstable
explanations, which is the vulnerability the tutorial (§2.1.1)
highlights.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.evaluation import (
    coefficient_stability_index,
    variable_stability_index,
)
from xaidb.explainers import LimeExplainer, predict_positive_proba
from xaidb.models import GradientBoostedClassifier

SAMPLE_BUDGETS = [100, 300, 1000, 3000]
N_REPEATS = 5


def compute_rows():
    workload = make_income(1000, random_state=0)
    dataset = workload.dataset
    model = GradientBoostedClassifier(
        n_estimators=30, max_depth=3, random_state=0
    ).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    x = dataset.X[4]
    rows = []
    for budget in SAMPLE_BUDGETS:
        lime = LimeExplainer(dataset, n_samples=budget)
        runs = [lime.explain(f, x, random_state=s) for s in range(N_REPEATS)]
        rows.append(
            (
                budget,
                variable_stability_index(runs, top_k=3),
                coefficient_stability_index(runs),
            )
        )
    return rows


def test_e02_lime_stability(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E2: LIME stability vs sampling budget (paper: more samples -> more stable)",
        ["n_samples", "VSI (top-3 Jaccard)", "CSI (coefficient agreement)"],
        rows,
    )
    budgets = [row[0] for row in rows]
    csi = [row[2] for row in rows]
    # shape: the largest budget is more stable than the smallest
    assert csi[-1] > csi[0]
    # small budgets are genuinely unstable (the tutorial's criticism)
    assert csi[0] < 0.9
