"""xaidb.service — the explanation serving layer.

The paper's data-management pitch only bites once explanations are
*served*, not batch-computed.  This package turns the fast kernels
(:mod:`xaidb.models.tree_kernels`) and the batch-aware runtime
(:mod:`xaidb.runtime`) into a request-facing system, stdlib-only on the
serving side (``asyncio``):

- :class:`ExplainRequest` / :class:`ExplainResponse` — the contract,
  with typed rejections (:class:`LoadShedError`,
  :class:`DeadlineExceededError`);
- :class:`MicroBatcher` — bounded admission queue + batching-window
  drain; concurrent requests sharing a ``(model, explainer, config)``
  key coalesce into one batched explainer call;
- :class:`Dispatcher` — model/explainer registries and the per-key
  backend cache that executes coalesced batches, bitwise identical to
  the per-request serial path;
- :class:`ExplanationServer` — the asyncio front-end tying the three
  together, with per-request deadlines and load shedding;
- :class:`ServiceStats` — latency percentiles (p50/p95/p99), queue
  depth, batch-size histogram, shed/deadline counts, composed with the
  evaluation ledger (:class:`~xaidb.runtime.EvalStats`);
- :func:`run_closed_loop` / :class:`WorkloadItem` — the closed-loop
  load generator behind benchmark A12.

See ``docs/SERVING.md`` for the architecture tour.
"""

from xaidb.service.batcher import MicroBatcher, PendingRequest, group_by_key
from xaidb.service.dispatcher import (
    BackendFactory,
    BackendFn,
    Dispatcher,
    ModelEntry,
)
from xaidb.service.loadgen import LoadResult, WorkloadItem, run_closed_loop
from xaidb.service.server import ExplanationServer
from xaidb.service.stats import ServiceStats
from xaidb.service.types import (
    DeadlineExceededError,
    ExplainRequest,
    ExplainResponse,
    LoadShedError,
    ServiceError,
    UnknownExplainerError,
    UnknownModelError,
    config_digest,
)

__all__ = [
    "BackendFactory",
    "BackendFn",
    "DeadlineExceededError",
    "Dispatcher",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationServer",
    "LoadResult",
    "LoadShedError",
    "MicroBatcher",
    "ModelEntry",
    "PendingRequest",
    "ServiceError",
    "ServiceStats",
    "UnknownExplainerError",
    "UnknownModelError",
    "WorkloadItem",
    "config_digest",
    "group_by_key",
    "run_closed_loop",
]
