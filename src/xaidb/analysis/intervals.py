"""Value-range abstract interpretation over the CFG/worklist framework.

The numeric tier (XDB023–XDB027) needs to *prove* facts like "this
denominator's interval contains zero" or "this array is empty here".
This module supplies the domain and the flow-sensitive analysis:

- :class:`Interval` — a closed interval ``[lo, hi]`` over the extended
  reals plus a may-be-NaN flag.  The bounds describe the non-NaN
  possibilities; ``nan=True`` says NaN is additionally possible.
- :class:`AbstractNum` — one abstract numeric value: an element range,
  an optional first-dimension length interval (for arrays whose length
  is known, e.g. ``np.zeros(4)``), and a provably-scalar flag.
- :class:`IntervalAnalysis` — a :class:`~xaidb.analysis.dataflow.ValueTaint`
  subclass whose labels are encoded :class:`AbstractNum` values, with
  transfer functions for Python arithmetic and the numpy constructors,
  element-wise maps and reductions the explainer corpus leans on
  (``zeros``/``ones``/``full``/``arange``/``linspace``, ``sum``/``mean``/
  ``std``/``var`` with ``ddof``, ``maximum``/``minimum``/``clip``,
  ``abs``/``exp``/``log``/``sqrt``/``floor``/``ceil``/``sign``,
  ``len`` …).  It runs on :func:`~xaidb.analysis.dataflow.solve_refined`
  with comparison-guard refinement (``if x > 0:`` narrows the true
  branch, ``if len(a) == 0: return`` narrows the fall-through) and
  threshold widening/narrowing so loops converge.

Like every xailint domain the semantics is *silent-unless-provable*:
unknown names, attributes and unresolved calls evaluate to ⊤ (the full
range with NaN), and rules only fire on values carrying at least one
known bound.  Function parameters are seeded with opaque ``param:<name>``
labels, which stay ⊤ for in-function rule checks but let the summary
pass (:mod:`xaidb.analysis.summaries`, pass E) record *preconditions*
("``denom`` must be nonzero") that rules check at call sites.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Callable, Iterable

from xaidb.analysis.cfg import CFG
from xaidb.analysis.dataflow import (
    State,
    ValueTaint,
    solve_refined,
)
from xaidb.analysis.shapes import dtype_from_node

__all__ = [
    "Interval",
    "AbstractNum",
    "IntervalAnalysis",
    "FULL",
    "TOP_NUM",
    "TOP_LABELS",
    "PARAM_PREFIX",
    "encode",
    "decode",
    "is_param",
    "param_name",
    "param_label",
    "values_of",
    "params_of",
    "informative",
    "widen_state",
    "interval_add",
    "interval_sub",
    "interval_mul",
    "interval_div",
    "interval_floordiv",
    "interval_mod",
    "interval_pow",
    "interval_neg",
    "interval_abs",
    "interval_exp",
    "interval_log",
    "interval_log1p",
    "interval_sqrt",
    "interval_max",
    "interval_min",
    "interval_floor",
    "interval_ceil",
    "interval_sign",
    "interval_hull",
    "sum_reduce",
    "mean_reduce",
    "std_reduce",
    "minmax_reduce",
]

INF = math.inf

#: Bound on abstract-value sets per variable; beyond it collapse to the
#: hull (kept informative, unlike the shape domain's collapse to ⊤).
_MAX_VALUES = 4

#: Labels carried by function parameters: opaque to in-function rules,
#: read by the summary pass to derive ``param_preconditions``.
PARAM_PREFIX = "param:"


# ---------------------------------------------------------------------------
# the interval lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """Closed ``[lo, hi]`` over the extended reals; ``nan`` marks that
    NaN is *additionally* possible (the bounds never describe NaN)."""

    lo: float
    hi: float
    nan: bool = False

    def contains(self, value: float) -> bool:
        if math.isnan(value):
            return self.nan
        return self.lo <= value <= self.hi

    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    def is_full(self) -> bool:
        return self.lo == -INF and self.hi == INF

    def is_point(self) -> bool:
        return self.lo == self.hi and not math.isinf(self.lo)

    def __str__(self) -> str:  # witness text in findings
        body = f"[{_fmt_bound(self.lo)}, {_fmt_bound(self.hi)}]"
        return body + (" ∪ {nan}" if self.nan else "")


def _fmt_bound(x: float) -> str:
    if x == INF:
        return "inf"
    if x == -INF:
        return "-inf"
    if x == math.floor(x) and abs(x) < 1e16:
        return str(int(x))
    return repr(x)


FULL = Interval(-INF, INF)
FULL_NAN = Interval(-INF, INF, True)


def interval_hull(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi), a.nan or b.nan)


def interval_add(a: Interval, b: Interval) -> Interval:
    lo = a.lo + b.lo
    hi = a.hi + b.hi
    # inf + -inf at an endpoint: both infinities reachable, so is NaN
    if math.isnan(lo) or math.isnan(hi):
        return FULL_NAN
    # the opposing infinities need not share a corner: [-inf, 5] +
    # [0, inf] still reaches -inf + inf = NaN
    nan = a.nan or b.nan
    if (a.lo == -INF and b.hi == INF) or (a.hi == INF and b.lo == -INF):
        nan = True
    return Interval(lo, hi, nan)


def interval_neg(a: Interval) -> Interval:
    return Interval(-a.hi, -a.lo, a.nan)


def interval_sub(a: Interval, b: Interval) -> Interval:
    return interval_add(a, interval_neg(b))


def _has_inf(a: Interval) -> bool:
    return a.lo == -INF or a.hi == INF


def interval_mul(a: Interval, b: Interval) -> Interval:
    # 0 * inf = nan can hit at an *interior* zero, not just endpoints
    nan = a.nan or b.nan
    if (a.contains_zero() and _has_inf(b)) or (
        b.contains_zero() and _has_inf(a)
    ):
        nan = True
    cands = [x * y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    if any(math.isnan(c) for c in cands):
        return FULL_NAN
    return Interval(min(cands), max(cands), nan)


def interval_div(a: Interval, b: Interval) -> Interval:
    if b.contains_zero():
        # x/0 is ±inf (or NaN for 0/0): exactly what XDB023 exists for
        return FULL_NAN
    cands = [x / y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    if any(math.isnan(c) for c in cands):  # inf / inf
        return FULL_NAN
    return Interval(min(cands), max(cands), a.nan or b.nan)


def interval_floordiv(a: Interval, b: Interval) -> Interval:
    d = interval_div(a, b)
    # numpy floor_divide returns NaN for an infinite operand, and its
    # divmod-consistent result can differ from floor(fl(x/y)) by one
    # when the rounded quotient crosses an integer — pad the bounds
    nan = d.nan or _has_inf(a) or _has_inf(b)
    lo = _floor_widen(d.lo, up=False)
    hi = _floor_widen(d.hi, up=True)
    return Interval(lo, hi, nan)


def _floor_widen(x: float, *, up: bool) -> float:
    if not math.isfinite(x):
        return x
    pad = max(1.0, abs(x) * _REL_SLOP)
    return math.floor(x) + pad if up else math.floor(x) - pad


def interval_mod(a: Interval, b: Interval) -> Interval:
    if b.contains_zero():
        return FULL_NAN
    nan = a.nan or b.nan or _has_inf(a) or _has_inf(b)
    if b.lo > 0:  # result sign follows the divisor
        return Interval(0.0, b.hi, nan)
    return Interval(b.lo, 0.0, nan)


def interval_pow(
    a: Interval, b: Interval, int_exponent: int | None = None
) -> Interval:
    nan = a.nan or b.nan
    if int_exponent is not None and int_exponent >= 0:
        k = int_exponent
        if k % 2 == 0:
            base = interval_abs(a)
            return Interval(
                _finite_pow(base.lo, k), _finite_pow(base.hi, k), nan
            )
        return Interval(_finite_pow(a.lo, k), _finite_pow(a.hi, k), nan)
    if a.lo >= 0 and b.lo >= 0:
        return Interval(0.0, INF, nan)
    # negative base with a possibly fractional exponent: NaN territory
    return Interval(-INF, INF, True)


def _finite_pow(x: float, k: int) -> float:
    if x == INF:
        return INF if k > 0 else 1.0
    if x == -INF:
        return (-INF if k % 2 else INF) if k > 0 else 1.0
    try:
        return float(x**k)
    except OverflowError:
        return INF if (x > 0 or k % 2 == 0) else -INF


#: Relative outward slop absorbing libm ulp disagreements (math.exp vs
#: np.exp) and pairwise-summation rounding (≤ ~53 ulp): one part in
#: 2^40 dwarfs both while leaving zero and infinite bounds untouched.
_REL_SLOP = 2.0**-40

#: Smallest positive subnormal — an absolute floor for pads at
#: magnitudes where a relative pad would round back to nothing.
_TINY = 5e-324


def _pad_down(x: float) -> float:
    return x - (abs(x) * _REL_SLOP + _TINY) if math.isfinite(x) else x


def _pad_up(x: float) -> float:
    return x + (abs(x) * _REL_SLOP + _TINY) if math.isfinite(x) else x


def _rel_pad(iv: Interval) -> Interval:
    """Pad finite bounds outward relatively; 0 and ±inf stay put, so
    the zero-crossing facts the rules prove from are preserved."""
    lo = iv.lo if not math.isfinite(iv.lo) else iv.lo - abs(iv.lo) * _REL_SLOP
    hi = iv.hi if not math.isfinite(iv.hi) else iv.hi + abs(iv.hi) * _REL_SLOP
    return Interval(lo, hi, iv.nan)


def interval_abs(a: Interval) -> Interval:
    if a.lo >= 0:
        return a
    if a.hi <= 0:
        return interval_neg(a)
    return Interval(0.0, max(-a.lo, a.hi), a.nan)


def interval_exp(a: Interval) -> Interval:
    # libm exp is only faithfully rounded: numpy's answer can sit an
    # ulp outside math.exp's, so pad outward (exp is never negative)
    lo = max(0.0, _pad_down(_safe_exp(a.lo)))
    hi = _pad_up(_safe_exp(a.hi))
    return Interval(lo, hi, a.nan)


def _safe_exp(x: float) -> float:
    if x == INF:
        return INF
    try:
        return math.exp(x)
    except OverflowError:
        return INF


def interval_log(a: Interval) -> Interval:
    """``log``: ``-inf`` at 0, NaN below — the XDB024 domain."""
    nan = a.nan or a.lo < 0
    if a.hi <= 0:
        # only 0 (→ -inf) and negatives (→ nan) are reachable
        return Interval(-INF, -INF, True)
    lo = -INF if a.lo <= 0 else _pad_down(math.log(a.lo))
    hi = INF if a.hi == INF else _pad_up(math.log(a.hi))
    return Interval(lo, hi, nan)


def interval_log1p(a: Interval) -> Interval:
    # evaluated via math.log1p, not log(a + 1): rounding 1 + x first
    # loses low bits of x and the bounds would miss numpy's answer
    nan = a.nan or a.lo < -1.0
    if a.hi <= -1.0:
        return Interval(-INF, -INF, True)
    lo = -INF if a.lo <= -1.0 else _pad_down(math.log1p(a.lo))
    hi = INF if a.hi == INF else _pad_up(math.log1p(a.hi))
    return Interval(lo, hi, nan)


def interval_sqrt(a: Interval) -> Interval:
    nan = a.nan or a.lo < 0
    if a.hi < 0:
        return Interval(0.0, 0.0, True)  # superset of {nan}
    lo = math.sqrt(max(a.lo, 0.0))
    hi = INF if a.hi == INF else math.sqrt(a.hi)
    return Interval(lo, hi, nan)


def interval_max(a: Interval, b: Interval) -> Interval:
    # np.maximum propagates NaN (unlike builtin max, whose result set
    # this still over-approximates)
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi), a.nan or b.nan)


def interval_min(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi), a.nan or b.nan)


def interval_floor(a: Interval) -> Interval:
    lo = math.floor(a.lo) if math.isfinite(a.lo) else a.lo
    hi = math.floor(a.hi) if math.isfinite(a.hi) else a.hi
    return Interval(lo, hi, a.nan)


def interval_ceil(a: Interval) -> Interval:
    lo = math.ceil(a.lo) if math.isfinite(a.lo) else a.lo
    hi = math.ceil(a.hi) if math.isfinite(a.hi) else a.hi
    return Interval(lo, hi, a.nan)


def interval_sign(a: Interval) -> Interval:
    lo = -1.0 if a.lo < 0 else (0.0 if a.lo == 0 else 1.0)
    hi = 1.0 if a.hi > 0 else (0.0 if a.hi == 0 else -1.0)
    return Interval(lo, hi, a.nan)


# ---------------------------------------------------------------------------
# reductions (element range × length interval → result range)
# ---------------------------------------------------------------------------


def sum_reduce(elem: Interval, size: Interval | None) -> Interval:
    """``sum`` over between ``size.lo`` and ``size.hi`` elements each in
    ``elem`` (unknown length: any count ≥ 0, so 0 is always possible)."""
    nan = elem.nan or (elem.lo == -INF and elem.hi == INF)
    if size is None:
        n0, n1 = 0.0, INF
    else:
        n0, n1 = max(size.lo, 0.0), max(size.hi, 0.0)
    cands: list[float] = [0.0] if n0 == 0 else []
    for n in (n0, n1):
        for v in (elem.lo, elem.hi):
            c = n * v
            if not math.isnan(c):  # inf count × 0 element sums to 0
                cands.append(c)
    if not cands:
        cands = [0.0]
    # pairwise summation rounds: a computed sum can land a few ulp
    # outside the exact corner products
    return _rel_pad(Interval(min(cands), max(cands), nan))


def mean_reduce(elem: Interval, size: Interval | None) -> Interval:
    may_empty = size is None or size.lo <= 0
    nan = (
        elem.nan
        or may_empty  # mean of nothing is 0/0
        or (elem.lo == -INF and elem.hi == INF)
    )
    # summation rounding can push the computed mean an ulp past the
    # element bounds (e.g. the mean of n copies of v)
    return _rel_pad(Interval(elem.lo, elem.hi, nan))


def std_reduce(
    elem: Interval, size: Interval | None, ddof: Interval
) -> Interval:
    # NaN whenever n - ddof can be ≤ 0 (the XDB025 degenerate case) or
    # an infinite element poisons the moments
    if size is None:
        degenerate = True
    else:
        degenerate = size.lo <= ddof.hi
    nan = elem.nan or degenerate or _has_inf(elem)
    return Interval(0.0, INF, nan)


def minmax_reduce(elem: Interval) -> Interval:
    return Interval(elem.lo, elem.hi, elem.nan)


# ---------------------------------------------------------------------------
# abstract values and their label encoding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbstractNum:
    """One abstract numeric value.

    ``rng`` is the element range (for arrays: the range every element
    lies in).  ``size`` is the first-dimension length when provable,
    ``None`` otherwise.  ``scalar`` marks values provably not arrays
    (constants, ``len()`` results, full reductions)."""

    rng: Interval
    size: Interval | None = None
    scalar: bool = False


TOP_NUM = AbstractNum(FULL_NAN)


def encode(value: AbstractNum) -> str:
    if value.scalar:
        size = "s"
    elif value.size is None:
        size = "?"
    else:
        size = f"{value.size.lo!r}_{value.size.hi!r}"
    r = value.rng
    return f"{r.lo!r}~{r.hi!r}~{int(r.nan)}~{size}"


def decode(label: str) -> AbstractNum:
    lo, hi, nan, size = label.split("~")
    rng = Interval(float(lo), float(hi), nan == "1")
    if size == "s":
        return AbstractNum(rng, None, True)
    if size == "?":
        return AbstractNum(rng, None, False)
    slo, _, shi = size.partition("_")
    return AbstractNum(rng, Interval(float(slo), float(shi)), False)


def is_param(label: str) -> bool:
    return label.startswith(PARAM_PREFIX)


def param_name(label: str) -> str:
    body = label[len(PARAM_PREFIX) :]
    return body.partition("~")[0]


def param_label(name: str) -> str:
    return PARAM_PREFIX + name


def tagged_param(name: str, value: AbstractNum) -> str:
    """A parameter label carrying guard-refined numeric knowledge:
    ``if x > 0:`` turns ``param:x`` into ``param:x~<(0, inf] encoding>``
    on the true edge — provenance survives, and joins with an unguarded
    path keep the plain label alongside, so nothing is over-claimed."""
    return PARAM_PREFIX + name + "~" + encode(value)


def _param_numeric(label: str) -> str | None:
    body = label[len(PARAM_PREFIX) :]
    _name, sep, rest = body.partition("~")
    return rest if sep else None


def values_of(labels: frozenset[str]) -> list[AbstractNum]:
    """Decoded members that constitute *evidence*: plain numeric labels
    plus the refined halves of guarded parameters.  Unguarded parameter
    labels carry no range and are excluded."""
    out: list[AbstractNum] = []
    for label in sorted(labels):
        if is_param(label):
            rest = _param_numeric(label)
            if rest is not None:
                out.append(decode(rest))
        else:
            out.append(decode(label))
    return out


def params_of(labels: frozenset[str]) -> set[str]:
    """Names of *unguarded* parameters the value derives from — the set
    the summary pass turns into ``param_preconditions``."""
    return {
        param_name(label)
        for label in labels
        if is_param(label) and _param_numeric(label) is None
    }


def informative(value: AbstractNum) -> bool:
    """At least one finite range bound is known — the bar a value must
    clear before any numeric rule may cite it as evidence."""
    return not value.rng.is_full()


def _cap(values: Iterable[AbstractNum]) -> frozenset[str]:
    """Encode a value set; oversize sets collapse to their hull (which
    stays informative, unlike the shape domain's collapse to ⊤)."""
    unique = set(values)
    if not unique:
        return frozenset({encode(TOP_NUM)})
    if len(unique) > _MAX_VALUES:
        return frozenset({encode(_hull_of(unique))})
    return frozenset(encode(v) for v in unique)


def _hull_of(values: set[AbstractNum]) -> AbstractNum:
    rng = FULL
    size: Interval | None = None
    scalar = True
    first = True
    for v in values:
        if first:
            rng, size, scalar, first = v.rng, v.size, v.scalar, False
            continue
        rng = interval_hull(rng, v.rng)
        scalar = scalar and v.scalar
        if size is not None and v.size is not None:
            size = interval_hull(size, v.size)
        else:
            size = None
    return AbstractNum(rng, size if not scalar else None, scalar)


def _merge(labels: frozenset[str]) -> frozenset[str]:
    """Re-cap a label set, keeping param labels verbatim."""
    params = frozenset(label for label in labels if is_param(label))
    numeric = [decode(label) for label in labels if not is_param(label)]
    if not numeric:
        return params if params else frozenset({encode(TOP_NUM)})
    if len(numeric) > _MAX_VALUES:
        return params | frozenset({encode(_hull_of(set(numeric)))})
    return params | frozenset(encode(v) for v in numeric)


TOP_LABELS = frozenset({encode(TOP_NUM)})


# ---------------------------------------------------------------------------
# widening
# ---------------------------------------------------------------------------

#: Jump targets for growing bounds: sign information survives widening,
#: so a loop counter started at 0 widens to ``[0, inf]`` — still enough
#: to prove ``counter + 1`` nonzero.
_THRESHOLDS = (-1.0, 0.0, 1.0)


def _widen_bound_down(old: float, new: float) -> float:
    if new >= old:
        return old
    for t in reversed(_THRESHOLDS):
        if t <= new:
            return t
    return -INF


def _widen_bound_up(old: float, new: float) -> float:
    if new <= old:
        return old
    for t in _THRESHOLDS:
        if t >= new:
            return t
    return INF


def _widen_interval(old: Interval, new: Interval) -> Interval:
    return Interval(
        _widen_bound_down(old.lo, new.lo),
        _widen_bound_up(old.hi, new.hi),
        old.nan or new.nan,
    )


def _widen_num(old: AbstractNum, new: AbstractNum) -> AbstractNum:
    rng = _widen_interval(old.rng, new.rng)
    scalar = old.scalar and new.scalar
    size: Interval | None = None
    if old.size is not None and new.size is not None:
        size = _widen_interval(old.size, new.size)
    return AbstractNum(rng, size if not scalar else None, scalar)


def widen_state(old: State, new: State) -> State:
    """Per-variable threshold widening for :func:`solve_refined`: both
    sides collapse to their hulls and any still-moving bound jumps to
    the next threshold (±1, 0, ±inf), so the chain is finite."""
    out: State = {}
    for name, labels in new.items():
        old_labels = old.get(name)
        if old_labels is None or labels == old_labels:
            out[name] = labels
            continue
        out[name] = _widen_labels(old_labels, labels)
    return out


def _param_group(labels: frozenset[str], pname: str) -> list[AbstractNum]:
    return [
        decode(_param_numeric(label))  # type: ignore[arg-type]
        for label in labels
        if is_param(label)
        and param_name(label) == pname
        and _param_numeric(label) is not None
    ]


def _widen_labels(
    old_labels: frozenset[str], new_labels: frozenset[str]
) -> frozenset[str]:
    out: set[str] = set()
    union = new_labels | old_labels
    refined_names: set[str] = set()
    for label in union:
        if is_param(label):
            if _param_numeric(label) is None:
                out.add(label)  # plain provenance markers are stable
            else:
                refined_names.add(param_name(label))
    # guard-refined parameters widen to ONE label per name, else a loop
    # that re-refines each iteration would mint fresh labels forever
    for pname in sorted(refined_names):
        old_group = _param_group(old_labels, pname)
        new_group = _param_group(new_labels, pname)
        if old_group and new_group:
            widened = _widen_num(
                _hull_of(set(old_group)), _hull_of(set(new_group))
            )
        else:
            widened = _hull_of(set(old_group or new_group))
        out.add(tagged_param(pname, widened))
    old_nums = [decode(la) for la in old_labels if not is_param(la)]
    new_nums = [decode(la) for la in new_labels if not is_param(la)]
    if old_nums and new_nums:
        out.add(
            encode(
                _widen_num(_hull_of(set(old_nums)), _hull_of(set(new_nums)))
            )
        )
    else:
        for v in old_nums or new_nums:
            out.add(encode(v))
    return frozenset(out)


# ---------------------------------------------------------------------------
# the flow-sensitive analysis
# ---------------------------------------------------------------------------

#: Unary numpy/math maps: name -> interval transfer.
_UNARY_MAPS: dict[str, Callable[[Interval], Interval]] = {
    "abs": interval_abs,
    "absolute": interval_abs,
    "fabs": interval_abs,
    "exp": interval_exp,
    "log": interval_log,
    "log2": interval_log,
    "log10": interval_log,
    "log1p": interval_log1p,
    "sqrt": interval_sqrt,
    "floor": interval_floor,
    "ceil": interval_ceil,
    "sign": interval_sign,
    "negative": interval_neg,
}

#: Reduction spellings recognised both as ``np.sum(x)`` and ``x.sum()``.
_REDUCTION_NAMES = {
    "sum",
    "mean",
    "average",
    "std",
    "var",
    "median",
    "min",
    "max",
    "amin",
    "amax",
    "prod",
}

#: Reductions that raise / go NaN on an empty operand (XDB025's set;
#: ``sum``/``prod`` of nothing are well-defined identities).
EMPTY_UNSAFE_REDUCTIONS = {
    "mean",
    "average",
    "std",
    "var",
    "median",
    "min",
    "max",
    "amin",
    "amax",
}


def _module_alias(node: ast.AST) -> str | None:
    """``np``/``numpy`` or ``math`` qualifier names (corpus convention)."""
    if isinstance(node, ast.Name) and node.id in ("np", "numpy"):
        return "np"
    if isinstance(node, ast.Name) and node.id == "math":
        return "math"
    return None


def _call_keyword(call: ast.Call, name: str) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _loop_target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _loop_target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_loop_target_names(element))
        return names
    return []


class IntervalAnalysis(ValueTaint):
    """Interval abstract interpretation on the map lattice.

    A variable's labels are encoded :class:`AbstractNum` values (its
    possible ranges) plus opaque ``param:<name>`` markers for values
    derived from function parameters.  ``callee_ranges`` hooks summary
    knowledge in: given a call node it may return the callee's abstract
    return values, or ``None`` to fall back to the numpy transfers.
    """

    def __init__(
        self,
        entry: State | None = None,
        callee_ranges: Callable[
            [ast.Call], Iterable[AbstractNum] | None
        ] | None = None,
    ) -> None:
        super().__init__(entry=entry)
        self._callee_ranges = callee_ranges

    # -- solving ------------------------------------------------------

    def solve(self, cfg: CFG) -> dict[int, State]:
        """Widened/narrowed fixpoint with branch-guard refinement."""

        def refine_edge(out: State, src: int, dst: int) -> State:
            branch = cfg.branches.get((src, dst))
            if branch is None:
                return out
            test, sense = branch
            return self.refine_state(out, test, sense)

        return solve_refined(
            cfg, self, refine=refine_edge, widen=widen_state
        )

    # -- expression semantics ----------------------------------------

    def eval_expr(self, expr: ast.AST | None, state: State) -> frozenset[str]:
        if expr is None:
            return TOP_LABELS
        if isinstance(expr, ast.Constant):
            return self._constant(expr.value)
        if isinstance(expr, ast.Name):
            return state.get(expr.id, TOP_LABELS)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr, state)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, state)
        if isinstance(expr, ast.BoolOp):
            return self._boolop(expr, state)
        if isinstance(expr, ast.Compare):
            return _cap([AbstractNum(Interval(0.0, 1.0), None, True)])
        if isinstance(expr, ast.IfExp):
            return self._ifexp(expr, state)
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr, state)
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr, state)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return self._sequence(expr, state)
        if isinstance(expr, ast.NamedExpr):
            return self.eval_expr(expr.value, state)
        return TOP_LABELS

    def _constant(self, value: object) -> frozenset[str]:
        if isinstance(value, bool):
            point = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            try:
                point = float(value)
            except OverflowError:
                return TOP_LABELS
        else:
            return TOP_LABELS
        if math.isnan(point):
            return _cap([AbstractNum(Interval(0.0, 0.0, True), None, True)])
        return _cap([AbstractNum(Interval(point, point), None, True)])

    def hull(self, labels: frozenset[str]) -> AbstractNum:
        """Single-value summary of a label set (params count as ⊤) —
        what guard refinement compares against."""
        numeric = values_of(labels)
        if not numeric or params_of(labels):
            return TOP_NUM
        return _hull_of(set(numeric))

    def _unary(self, expr: ast.UnaryOp, state: State) -> frozenset[str]:
        operand = self.eval_expr(expr.operand, state)
        if isinstance(expr.op, ast.Not):
            return _cap([AbstractNum(Interval(0.0, 1.0), None, True)])
        out: list[AbstractNum] = []
        for label in sorted(operand):
            if is_param(label):
                return TOP_LABELS
            v = decode(label)
            if isinstance(expr.op, ast.USub):
                out.append(AbstractNum(interval_neg(v.rng), v.size, v.scalar))
            elif isinstance(expr.op, ast.UAdd):
                out.append(v)
            else:  # Invert: ~x = -x - 1 on ints
                rng = interval_sub(interval_neg(v.rng), Interval(1.0, 1.0))
                out.append(AbstractNum(rng, v.size, v.scalar))
        return _cap(out)

    def _binop(self, expr: ast.BinOp, state: State) -> frozenset[str]:
        left = self.eval_expr(expr.left, state)
        right = self.eval_expr(expr.right, state)
        # `[0.0] * n` is sequence repetition, not element-wise multiply
        if isinstance(expr.op, ast.Mult) and (
            isinstance(expr.left, (ast.List, ast.Tuple))
            or isinstance(expr.right, (ast.List, ast.Tuple))
        ):
            return self._repeat(expr, left, right)
        int_exponent: int | None = None
        if (
            isinstance(expr.op, ast.Pow)
            and isinstance(expr.right, ast.Constant)
            and isinstance(expr.right.value, int)
            and not isinstance(expr.right.value, bool)
        ):
            int_exponent = expr.right.value
        out: list[AbstractNum] = []
        for a in self._members(left):
            for b in self._members(right):
                rng = self._binop_rng(expr.op, a.rng, b.rng, int_exponent)
                if rng is None:
                    return TOP_LABELS
                out.append(
                    AbstractNum(rng, *self._combine_size(a, b))
                )
                if len(out) > 16:
                    return _cap(out)
        return _cap(out)

    def _members(self, labels: frozenset[str]) -> list[AbstractNum]:
        """Decoded members for arithmetic: numeric labels and the
        refined halves of guarded parameters contribute their ranges;
        any *unguarded* parameter contributes ⊤."""
        members = values_of(labels)
        if params_of(labels) or not members:
            members = members + [TOP_NUM]
        return members

    @staticmethod
    def _binop_rng(
        op: ast.operator,
        a: Interval,
        b: Interval,
        int_exponent: int | None,
    ) -> Interval | None:
        if isinstance(op, ast.Add):
            return interval_add(a, b)
        if isinstance(op, ast.Sub):
            return interval_sub(a, b)
        if isinstance(op, ast.Mult):
            return interval_mul(a, b)
        if isinstance(op, ast.Div):
            return interval_div(a, b)
        if isinstance(op, ast.FloorDiv):
            return interval_floordiv(a, b)
        if isinstance(op, ast.Mod):
            return interval_mod(a, b)
        if isinstance(op, ast.Pow):
            return interval_pow(a, b, int_exponent)
        return None  # matmul, bit ops: no numeric story

    @staticmethod
    def _combine_size(
        a: AbstractNum, b: AbstractNum
    ) -> tuple[Interval | None, bool]:
        if a.scalar and b.scalar:
            return None, True
        if a.scalar:
            return b.size, False
        if b.scalar:
            return a.size, False
        if (
            a.size is not None
            and b.size is not None
            and a.size == b.size
        ):
            return a.size, False
        return None, False

    def _repeat(
        self,
        expr: ast.BinOp,
        left: frozenset[str],
        right: frozenset[str],
    ) -> frozenset[str]:
        seq, count = (
            (left, right)
            if isinstance(expr.left, (ast.List, ast.Tuple))
            else (right, left)
        )
        out: list[AbstractNum] = []
        for s in self._members(seq):
            for c in self._members(count):
                size: Interval | None = None
                if s.size is not None:
                    n = interval_mul(s.size, interval_max(c.rng, Interval(0.0, 0.0)))
                    size = Interval(max(n.lo, 0.0), max(n.hi, 0.0))
                out.append(AbstractNum(s.rng, size, False))
        return _cap(out)

    def _boolop(self, expr: ast.BoolOp, state: State) -> frozenset[str]:
        # `a or b` yields a-when-truthy or b; `a and b` a-when-falsy or b.
        # Modelling the truthiness filter is what keeps the ubiquitous
        # `len(xs) or 1` divisor from reading as may-be-zero.
        out: list[AbstractNum] = []
        values = [self.eval_expr(v, state) for v in expr.values]
        for labels in values[:-1]:
            for v in self._members(labels):
                if isinstance(expr.op, ast.Or):
                    refined = _truthy_interval(v.rng)
                    if refined is not None:
                        out.append(AbstractNum(refined, v.size, v.scalar))
                else:
                    if v.rng.contains_zero() or v.rng.nan:
                        out.append(
                            AbstractNum(
                                Interval(0.0, 0.0, v.rng.nan),
                                v.size,
                                v.scalar,
                            )
                        )
        for v in self._members(values[-1]):
            out.append(v)
        return _cap(out)

    def _ifexp(self, expr: ast.IfExp, state: State) -> frozenset[str]:
        then_state = self.refine_state(state, expr.test, True)
        else_state = self.refine_state(state, expr.test, False)
        return _merge(
            self.eval_expr(expr.body, then_state)
            | self.eval_expr(expr.orelse, else_state)
        )

    def _subscript(self, expr: ast.Subscript, state: State) -> frozenset[str]:
        # x.shape[0] is the first-dimension length
        if (
            isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "shape"
            and isinstance(expr.value.value, ast.Name)
            and isinstance(expr.slice, ast.Constant)
            and expr.slice.value == 0
        ):
            return self._length_of(expr.value.value, state)
        base = self.eval_expr(expr.value, state)
        out: list[AbstractNum] = []
        for label in sorted(base):
            if is_param(label):
                return TOP_LABELS
            v = decode(label)
            if v.scalar or v.rng.is_full():
                return TOP_LABELS
            if isinstance(expr.slice, ast.Slice):
                out.append(AbstractNum(v.rng, None, False))
            else:
                out.append(AbstractNum(v.rng, None, True))
        return _cap(out)

    def _length_of(self, name: ast.Name, state: State) -> frozenset[str]:
        out: list[AbstractNum] = []
        for v in self._members(state.get(name.id, TOP_LABELS)):
            size = v.size if v.size is not None else Interval(0.0, INF)
            out.append(AbstractNum(size, None, True))
        return _cap(out)

    def _attribute(self, expr: ast.Attribute, state: State) -> frozenset[str]:
        if expr.attr == "T" and isinstance(expr.value, ast.Name):
            # transpose keeps element ranges (length may change)
            out = []
            for v in self._members(state.get(expr.value.id, TOP_LABELS)):
                out.append(AbstractNum(v.rng, None, False))
            return _cap(out)
        if expr.attr == "size":
            # total element count: nonnegative, but NOT the tracked
            # first-dim length (a (3, 0) array has size 0, len 3)
            return _cap([AbstractNum(Interval(0.0, INF), None, True)])
        return TOP_LABELS

    def _sequence(
        self, expr: ast.Tuple | ast.List, state: State
    ) -> frozenset[str]:
        if not expr.elts:
            return _cap(
                [AbstractNum(FULL, Interval(0.0, 0.0), False)]
            )
        if any(isinstance(e, ast.Starred) for e in expr.elts):
            return TOP_LABELS
        rng: Interval | None = None
        nested_ok = True
        for element in expr.elts:
            hull = self.hull(self.eval_expr(element, state))
            if hull.rng.is_full() and hull.rng.nan:
                nested_ok = False
                break
            rng = hull.rng if rng is None else interval_hull(rng, hull.rng)
        if not nested_ok or rng is None:
            return _cap(
                [
                    AbstractNum(
                        FULL_NAN,
                        Interval(float(len(expr.elts)), float(len(expr.elts))),
                        False,
                    )
                ]
            )
        n = float(len(expr.elts))
        return _cap([AbstractNum(rng, Interval(n, n), False)])


    # -- call semantics ----------------------------------------------

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "check_array"
            and call.args
        ):
            # contract beats the callee summary: the summary only says
            # "returns the input array", the contract adds what the
            # validation rejected
            return _cap(self._check_array_call(call, state))
        if self._callee_ranges is not None:
            summary = self._callee_ranges(call)
            if summary is not None:
                return _cap(summary)
        values = self._numpy_call(call, state)
        if values is not None:
            return _cap(values)
        return TOP_LABELS

    def _check_array_call(
        self, call: ast.Call, state: State
    ) -> list[AbstractNum]:
        # xaidb's own validator: by default it raises on empty arrays
        # (allow_empty=False) and on NaN/inf entries
        # (ensure_finite=True), so the value it returns is a non-empty
        # array of finite numbers
        operand = self.hull(self.eval_expr(call.args[0], state))
        allow_empty = keeps_nan = False
        for kw in call.keywords:
            truthy = not (
                isinstance(kw.value, ast.Constant) and not kw.value.value
            )
            if kw.arg == "allow_empty":
                allow_empty = truthy
            if kw.arg == "ensure_finite":
                keeps_nan = not truthy
        rng = (
            operand.rng
            if keeps_nan
            else Interval(operand.rng.lo, operand.rng.hi, False)
        )
        size = operand.size
        if not allow_empty:
            size = (
                Interval(1.0, INF)
                if size is None
                else Interval(max(1.0, size.lo), max(1.0, size.hi))
            )
        return [AbstractNum(rng, size, False)]

    def _numpy_call(
        self, call: ast.Call, state: State
    ) -> list[AbstractNum] | None:
        func = call.func
        if isinstance(func, ast.Name):
            return self._plain_call(func.id, call, state)
        if not isinstance(func, ast.Attribute):
            return None
        alias = _module_alias(func.value)
        if alias is not None:
            return self._module_call(func.attr, call, state)
        # array method: x.sum(), x.clip(...), x.astype(...)
        receiver = self.eval_expr(func.value, state)
        return self._method_call(func.attr, call, receiver, state)

    def _plain_call(
        self, name: str, call: ast.Call, state: State
    ) -> list[AbstractNum] | None:
        if name == "len" and len(call.args) == 1:
            if isinstance(call.args[0], ast.Name):
                labels = self._length_of(call.args[0], state)
            else:
                arg = self.hull(self.eval_expr(call.args[0], state))
                size = arg.size if arg.size is not None else Interval(0.0, INF)
                labels = _cap([AbstractNum(size, None, True)])
            return [decode(label) for label in labels]
        if name == "abs" and len(call.args) == 1:
            return self._map_unary(interval_abs, call.args[0], state)
        if name in ("float", "int", "round") and len(call.args) == 1:
            arg = self.hull(self.eval_expr(call.args[0], state))
            rng = arg.rng
            if name in ("int", "round") and not rng.is_full():
                # int() truncates toward zero, round() to even: both
                # land inside [floor(lo), ceil(hi)]
                rng = Interval(
                    interval_floor(rng).lo, interval_ceil(rng).hi, rng.nan
                )
            return [AbstractNum(rng, None, True)]
        if name in ("max", "min") and len(call.args) >= 2 and not call.keywords:
            op = interval_max if name == "max" else interval_min
            acc: Interval | None = None
            for arg in call.args:
                hull = self.hull(self.eval_expr(arg, state)).rng
                acc = hull if acc is None else op(acc, hull)
            assert acc is not None
            return [AbstractNum(acc, None, True)]
        if name in ("max", "min", "sum") and len(call.args) == 1:
            operand = self.hull(self.eval_expr(call.args[0], state))
            if name == "sum":
                return [AbstractNum(sum_reduce(operand.rng, operand.size), None, True)]
            return [AbstractNum(minmax_reduce(operand.rng), None, True)]
        if name == "range" and 1 <= len(call.args) <= 3:
            return self._range_like(call, state, integral=True)
        if name == "bool":
            return [AbstractNum(Interval(0.0, 1.0), None, True)]
        return None

    def _map_unary(
        self,
        fn: Callable[[Interval], Interval],
        arg: ast.AST,
        state: State,
    ) -> list[AbstractNum]:
        out: list[AbstractNum] = []
        for v in self._members(self.eval_expr(arg, state)):
            out.append(AbstractNum(fn(v.rng), v.size, v.scalar))
        return out

    def _module_call(
        self, name: str, call: ast.Call, state: State
    ) -> list[AbstractNum] | None:
        if name in _UNARY_MAPS and call.args:
            return self._map_unary(_UNARY_MAPS[name], call.args[0], state)
        if name in ("maximum", "minimum") and len(call.args) == 2:
            op = interval_max if name == "maximum" else interval_min
            a = self.hull(self.eval_expr(call.args[0], state))
            b = self.hull(self.eval_expr(call.args[1], state))
            size, scalar = self._combine_size(a, b)
            return [AbstractNum(op(a.rng, b.rng), size, scalar)]
        if name == "clip" and call.args:
            return self._clip(call, call.args[0], call.args[1:], state)
        if name in _REDUCTION_NAMES and call.args:
            return self._reduction(name, call, call.args[0], state)
        if name in ("zeros", "ones", "empty", "full") and call.args:
            return self._constructor(name, call, state)
        if name in ("zeros_like", "ones_like", "full_like") and call.args:
            base = self.hull(self.eval_expr(call.args[0], state))
            if name == "zeros_like":
                rng = Interval(0.0, 0.0)
            elif name == "ones_like":
                rng = Interval(1.0, 1.0)
            else:
                fill = (
                    self.hull(self.eval_expr(call.args[1], state)).rng
                    if len(call.args) > 1
                    else FULL_NAN
                )
                rng = fill
            return [AbstractNum(rng, base.size, False)]
        if name in ("array", "asarray", "asanyarray", "atleast_1d") and call.args:
            v = self.hull(self.eval_expr(call.args[0], state))
            return [AbstractNum(v.rng, v.size, False)]
        if name == "arange" and 1 <= len(call.args) <= 3:
            return self._range_like(call, state, integral=False)
        if name == "linspace" and len(call.args) >= 2:
            a = self.hull(self.eval_expr(call.args[0], state)).rng
            b = self.hull(self.eval_expr(call.args[1], state)).rng
            num_node = (
                call.args[2] if len(call.args) > 2 else _call_keyword(call, "num")
            )
            if num_node is None:
                size: Interval | None = Interval(50.0, 50.0)
            else:
                num = self.hull(self.eval_expr(num_node, state)).rng
                size = (
                    Interval(max(num.lo, 0.0), max(num.hi, 0.0))
                    if not num.is_full()
                    else None
                )
            return [AbstractNum(interval_hull(a, b), size, False)]
        if name == "where" and len(call.args) == 3:
            a = self.hull(self.eval_expr(call.args[1], state))
            b = self.hull(self.eval_expr(call.args[2], state))
            return [AbstractNum(interval_hull(a.rng, b.rng), None, False)]
        if name == "isnan" and call.args:
            return [AbstractNum(Interval(0.0, 1.0), None, False)]
        if name == "nan_to_num" and call.args:
            v = self.hull(self.eval_expr(call.args[0], state)).rng
            return [
                AbstractNum(
                    Interval(min(v.lo, 0.0), max(v.hi, 0.0), False),
                    None,
                    False,
                )
            ]
        if name == "dot" and len(call.args) == 2:
            return None  # cross-element sums: no cheap sound range
        return None

    def _method_call(
        self,
        name: str,
        call: ast.Call,
        receiver: frozenset[str],
        state: State,
    ) -> list[AbstractNum] | None:
        v = self.hull(receiver)
        if name in _REDUCTION_NAMES:
            return self._reduction(name, call, None, state, operand=v)
        if name == "clip":
            return self._clip(call, None, call.args, state, operand=v)
        if name == "astype":
            dtype = dtype_from_node(
                call.args[0] if call.args else _call_keyword(call, "dtype")
            )
            rng = v.rng
            if dtype.startswith(("int", "uint")) and not rng.is_full():
                rng = Interval(
                    interval_floor(rng).lo, interval_ceil(rng).hi, rng.nan
                )
            return [AbstractNum(rng, v.size, v.scalar)]
        if name == "item":
            return [AbstractNum(v.rng, None, True)]
        if name == "copy":
            return [v]
        if name in ("reshape", "ravel", "flatten", "squeeze"):
            return [AbstractNum(v.rng, None, False)]
        if name == "tolist":
            return [AbstractNum(v.rng, v.size, False)]
        return None

    def _reduction(
        self,
        name: str,
        call: ast.Call,
        operand_node: ast.AST | None,
        state: State,
        operand: AbstractNum | None = None,
    ) -> list[AbstractNum] | None:
        if operand is None:
            assert operand_node is not None
            operand = self.hull(self.eval_expr(operand_node, state))
            positional_axis = call.args[1] if len(call.args) > 1 else None
        else:
            # method form x.sum(...): the first positional arg is axis
            positional_axis = call.args[0] if call.args else None
        axis = _call_keyword(call, "axis") or positional_axis
        scalar = axis is None
        # axis reductions keep array-ness but the result length is the
        # *other* dims' — unknown here either way
        size = operand.size if axis is not None else None
        if name == "sum":
            rng = sum_reduce(operand.rng, operand.size)
        elif name in ("mean", "average", "median"):
            rng = mean_reduce(operand.rng, operand.size)
        elif name in ("std", "var"):
            ddof_node = _call_keyword(call, "ddof")
            ddof = (
                self.hull(self.eval_expr(ddof_node, state)).rng
                if ddof_node is not None
                else Interval(0.0, 0.0)
            )
            rng = std_reduce(operand.rng, operand.size, ddof)
        elif name in ("min", "max", "amin", "amax"):
            rng = minmax_reduce(operand.rng)
        else:  # prod: products over unknown counts explode; stay ⊤
            return None
        return [AbstractNum(rng, None if scalar else size, scalar)]

    def _clip(
        self,
        call: ast.Call,
        operand_node: ast.AST | None,
        bound_args: list[ast.expr] | tuple[ast.expr, ...],
        state: State,
        operand: AbstractNum | None = None,
    ) -> list[AbstractNum]:
        if operand is None:
            assert operand_node is not None
            operand = self.hull(self.eval_expr(operand_node, state))
        bounds = list(bound_args)
        lo_node = bounds[0] if len(bounds) > 0 else None
        hi_node = bounds[1] if len(bounds) > 1 else None
        if lo_node is None:
            lo_node = _call_keyword(call, "a_min") or _call_keyword(call, "min")
        if hi_node is None:
            hi_node = _call_keyword(call, "a_max") or _call_keyword(call, "max")
        rng = operand.rng
        if lo_node is not None and not (
            isinstance(lo_node, ast.Constant) and lo_node.value is None
        ):
            rng = interval_max(rng, self.hull(self.eval_expr(lo_node, state)).rng)
        if hi_node is not None and not (
            isinstance(hi_node, ast.Constant) and hi_node.value is None
        ):
            rng = interval_min(rng, self.hull(self.eval_expr(hi_node, state)).rng)
        return [AbstractNum(rng, operand.size, operand.scalar)]

    def _range_like(
        self, call: ast.Call, state: State, integral: bool
    ) -> list[AbstractNum]:
        args = [self.hull(self.eval_expr(a, state)).rng for a in call.args]
        if len(args) == 1:
            start, stop = Interval(0.0, 0.0), args[0]
        else:
            start, stop = args[0], args[1]
        if len(args) == 3:
            step = args[2]
            if (
                integral
                and step.lo == step.hi
                and not step.nan
                # xailint: disable=XDB006 (a range step is an exact integer constant)
                and step.lo != 0.0
            ):
                # a known step direction keeps the exclusive stop out:
                # range(a, b, -1) yields b+1..a, range(a, b, c>0) a..b-1
                if step.lo > 0.0:
                    lo, hi = start.lo, stop.hi - 1.0
                else:
                    lo, hi = stop.lo + 1.0, start.hi
                return [
                    AbstractNum(
                        Interval(
                            lo, max(lo, hi), start.nan or stop.nan
                        ),
                        None,
                        False,
                    )
                ]
            # an unknown step can run backwards: elements stay within
            # the start/stop hull, the count is unknown
            return [AbstractNum(interval_hull(start, stop), None, False)]
        elements = Interval(
            start.lo,
            max(start.lo, stop.hi - (1.0 if integral else 0.0)),
            start.nan or stop.nan,
        )
        size = Interval(
            max(0.0, stop.lo - start.hi - (0.0 if integral else 1.0)),
            max(0.0, stop.hi - start.lo),
        )
        if not math.isfinite(size.lo):
            size = Interval(0.0, size.hi)
        return [AbstractNum(elements, size, False)]

    def _constructor(
        self, name: str, call: ast.Call, state: State
    ) -> list[AbstractNum]:
        size = self._shape_first_dim(call.args[0], state)
        if name == "zeros":
            rng = Interval(0.0, 0.0)
        elif name == "ones":
            rng = Interval(1.0, 1.0)
        elif name == "full":
            rng = (
                self.hull(self.eval_expr(call.args[1], state)).rng
                if len(call.args) > 1
                else FULL_NAN
            )
        else:  # empty: uninitialised memory, anything incl. NaN
            rng = FULL_NAN
        return [AbstractNum(rng, size, False)]

    def _shape_first_dim(
        self, node: ast.AST, state: State
    ) -> Interval | None:
        if isinstance(node, (ast.Tuple, ast.List)):
            if not node.elts:
                return Interval(0.0, 0.0)
            node = node.elts[0]
        rng = self.hull(self.eval_expr(node, state)).rng
        if rng.is_full() or rng.nan:
            return None
        return Interval(max(rng.lo, 0.0), max(rng.hi, 0.0))

    # -- statement semantics -----------------------------------------

    def transfer(self, item: ast.AST, state: State) -> None:
        if isinstance(item, (ast.For, ast.AsyncFor)):
            elements = self._element_labels(
                self.eval_expr(item.iter, state)
            )
            super().transfer(item, state)
            for name in _loop_target_names(item.target):
                state[name] = elements
            return
        if isinstance(item, ast.AugAssign):
            if isinstance(item.target, ast.Name):
                combined = self._aug_value(item, state)
                state[item.target.id] = combined
            elif isinstance(item.target, ast.Subscript):
                self._weak_update(item.target, self._aug_value(item, state), state)
            return
        if isinstance(item, ast.Assign):
            value_labels = self.eval_expr(item.value, state)
            for target in item.targets:
                if isinstance(target, ast.Subscript):
                    self._weak_update(target, value_labels, state)
                else:
                    self._assign(target, item.value, value_labels, state)
            return
        if isinstance(item, ast.Assert):
            refined = self.refine_state(state, item.test, True)
            state.clear()
            state.update(refined)
            return
        if isinstance(item, ast.Expr) and isinstance(item.value, ast.Call):
            if self._contract_call(item.value, state):
                return
        super().transfer(item, state)

    def _contract_call(self, call: ast.Call, state: State) -> bool:
        """Statement-level calls with known postconditions.

        ``check_positive(x)`` is xaidb's own validator: it raises unless
        ``x > 0`` (``x >= 0`` with ``strict=False``), so fall-through
        code may rely on the bound.  ``x.append(v)`` grows a tracked
        list by exactly one element.  Returns True when handled.
        """
        func = call.func
        if (
            isinstance(func, ast.Name)
            and func.id == "check_positive"
            and call.args
            and isinstance(call.args[0], ast.Name)
        ):
            strict = True
            for kw in call.keywords:
                if kw.arg == "strict":
                    strict = not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    )
            guard = ast.copy_location(
                ast.Compare(
                    left=call.args[0],
                    ops=[ast.Gt() if strict else ast.GtE()],
                    comparators=[
                        ast.copy_location(ast.Constant(value=0.0), call)
                    ],
                ),
                call,
            )
            refined = self.refine_state(state, guard, True)
            state.clear()
            state.update(refined)
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Name)
            and len(call.args) == 1
            and func.value.id in state
        ):
            appended = self.hull(self.eval_expr(call.args[0], state))
            members: list[AbstractNum] | None = []
            for label in sorted(state[func.value.id]):
                if is_param(label):
                    members = None
                    break
                v = decode(label)
                size = (
                    Interval(v.size.lo + 1.0, v.size.hi + 1.0, v.size.nan)
                    if v.size is not None
                    else None
                )
                members.append(
                    AbstractNum(
                        interval_hull(v.rng, appended.rng), size, False
                    )
                )
            if members is not None:
                state[func.value.id] = _cap(members)
            return True
        return False

    def _aug_value(self, item: ast.AugAssign, state: State) -> frozenset[str]:
        if isinstance(item.target, ast.Name):
            load = ast.copy_location(
                ast.Name(id=item.target.id, ctx=ast.Load()), item.target
            )
            synthetic = ast.copy_location(
                ast.BinOp(left=load, op=item.op, right=item.value), item
            )
            return self.eval_expr(synthetic, state)
        # x[i] op= v: the touched elements become old-op-v, the rest
        # keep their old range; the caller hulls both via _weak_update
        base = (
            state.get(item.target.value.id, TOP_LABELS)
            if isinstance(item.target, ast.Subscript)
            and isinstance(item.target.value, ast.Name)
            else TOP_LABELS
        )
        old = self.hull(base)
        v = self.hull(self.eval_expr(item.value, state))
        rng = self._binop_rng(item.op, old.rng, v.rng, None)
        if rng is None:
            return TOP_LABELS
        return _cap([AbstractNum(rng, None, old.scalar)])

    def _weak_update(
        self,
        target: ast.Subscript,
        value_labels: frozenset[str],
        state: State,
    ) -> None:
        """``x[i] = v`` joins v's range into x's element range (a weak
        update: untouched elements keep their old values)."""
        if not isinstance(target.value, ast.Name):
            return
        name = target.value.id
        old = self.hull(state.get(name, TOP_LABELS))
        new = self.hull(value_labels)
        merged = AbstractNum(
            interval_hull(old.rng, new.rng), old.size, False
        )
        state[name] = _cap([merged])

    def _element_labels(self, labels: frozenset[str]) -> frozenset[str]:
        out: list[AbstractNum] = []
        for label in sorted(labels):
            if is_param(label):
                return TOP_LABELS
            v = decode(label)
            if v.scalar or v.rng.is_full() and v.rng.nan:
                return TOP_LABELS
            out.append(AbstractNum(v.rng, None, False))
        return _cap(out) if out else TOP_LABELS

    # -- comparison-guard refinement ---------------------------------

    def refine_state(
        self, state: State, test: ast.expr, sense: bool
    ) -> State:
        """A fresh state with the knowledge that ``test`` evaluated to
        ``sense`` — `if x > 0:` narrows x on the true edge, `if n == 0:
        raise` narrows the fall-through."""
        new = dict(state)
        self._refine(new, test, sense)
        return new

    def _refine(self, state: State, test: ast.expr, sense: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._refine(state, test.operand, not sense)
            return
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and sense:
                for value in test.values:
                    self._refine(state, value, True)
            elif isinstance(test.op, ast.Or) and not sense:
                for value in test.values:
                    self._refine(state, value, False)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            self._refine_compare(
                state, test.left, test.ops[0], test.comparators[0], sense
            )
            return
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr == "isnan"
            and test.args
            and isinstance(test.args[0], ast.Name)
            and not sense
        ):
            # `if not np.isnan(x):` clears the NaN flag
            self._map_name(test.args[0].id, state, _drop_nan)
            return
        self._refine_truthy(state, test, sense)

    def _refine_compare(
        self,
        state: State,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        sense: bool,
    ) -> None:
        if not sense:
            inverted = _invert_op(op)
            if inverted is None:
                return
            op = inverted
        # `5 < x` reads as `x > 5`
        for target, bound, cmp in (
            (left, right, op),
            (right, left, _swap_op(op)),
        ):
            if cmp is None:
                continue
            other = self.hull(self.eval_expr(bound, state))
            kind, name = _refinable(target)
            if kind == "rng":
                self._map_name(
                    name,
                    state,
                    lambda v, c=cmp, o=other.rng: _refine_rng(v, c, o),
                )
            elif kind == "len":
                self._map_name(
                    name,
                    state,
                    lambda v, c=cmp, o=other.rng: _refine_len(v, c, o),
                )
            elif kind == "size":
                # `x.size` counts *all* elements: a positive total implies
                # len(x) >= 1, but a zero total does NOT imply len(x) == 0
                # (shape (3, 0) has size 0 and len 3), so only the
                # positive direction refines the first-dim length.
                if isinstance(cmp, (ast.Gt, ast.GtE)) and other.rng.lo > 0:
                    self._map_name(
                        name,
                        state,
                        lambda v: _refine_len(
                            v, ast.GtE(), Interval(1.0, 1.0)
                        ),
                    )

    def _refine_truthy(
        self, state: State, test: ast.expr, sense: bool
    ) -> None:
        kind, name = _refinable(test)
        if kind == "rng":
            fn = _exclude_zero if sense else _only_zero
            self._map_name(name, state, fn)
        elif kind == "len" and name:
            if sense:
                self._map_name(
                    name,
                    state,
                    lambda v: _refine_len(v, ast.GtE(), Interval(1.0, 1.0)),
                )
            else:
                self._map_name(
                    name,
                    state,
                    lambda v: _refine_len(v, ast.LtE(), Interval(0.0, 0.0)),
                )
        elif kind == "size" and name and sense:
            # truthy total element count => at least one row; the falsy
            # direction says nothing about the first dimension.
            self._map_name(
                name,
                state,
                lambda v: _refine_len(v, ast.GtE(), Interval(1.0, 1.0)),
            )

    def _map_name(
        self,
        name: str | None,
        state: State,
        fn: Callable[[AbstractNum], AbstractNum | None],
    ) -> None:
        """Apply a refinement to every member of ``name``'s value set.
        ``fn`` returning ``None`` drops the member (infeasible on this
        edge); an empty result set is ⊥ — the edge is dead for ``name``.
        Parameter labels are refined in place, keeping provenance."""
        if name is None:
            return
        labels = state.get(name, TOP_LABELS)
        out: set[str] = set()
        for label in sorted(labels):
            if is_param(label):
                rest = _param_numeric(label)
                base = TOP_NUM if rest is None else decode(rest)
                refined = fn(base)
                if refined is not None:
                    out.add(tagged_param(param_name(label), refined))
                continue
            refined = fn(decode(label))
            if refined is not None:
                out.add(encode(refined))
        state[name] = _merge(frozenset(out)) if out else frozenset()


# ---------------------------------------------------------------------------
# refinement helpers
# ---------------------------------------------------------------------------


def _next_up(x: float) -> float:
    return math.nextafter(x, INF)


def _next_down(x: float) -> float:
    return math.nextafter(x, -INF)


def _drop_nan(v: AbstractNum) -> AbstractNum:
    return AbstractNum(
        Interval(v.rng.lo, v.rng.hi, False), v.size, v.scalar
    )


def _truthy_interval(rng: Interval) -> Interval | None:
    """The truthy subset of a range (NaN is truthy!); ``None`` when the
    range is exactly {0}."""
    lo, hi = rng.lo, rng.hi
    # xailint: disable=XDB006 (interval endpoints are exact by construction)
    if lo == 0.0 and hi == 0.0:
        return Interval(0.0, 0.0, True) if rng.nan else None
    # xailint: disable=XDB006 (interval endpoints are exact by construction)
    if lo == 0.0:
        lo = _next_up(0.0)
    # xailint: disable=XDB006 (interval endpoints are exact by construction)
    elif hi == 0.0:
        hi = _next_down(0.0)
    return Interval(lo, hi, rng.nan)


def _exclude_zero(v: AbstractNum) -> AbstractNum | None:
    """Truthiness refinement: scalars lose the value 0 (when it sits on
    an endpoint), arrays gain length ≥ 1."""
    if v.scalar:
        refined = _truthy_interval(v.rng)
        if refined is None:
            return None
        return AbstractNum(refined, None, True)
    if v.size is not None:
        size = Interval(max(v.size.lo, 1.0), max(v.size.hi, 1.0))
        if v.size.hi < 1.0:
            return None
        return AbstractNum(v.rng, size, False)
    return v  # unknown kind: no safe claim either way


def _only_zero(v: AbstractNum) -> AbstractNum | None:
    """Falsiness refinement: scalars become exactly 0 (NaN is truthy,
    so it is gone too), arrays become empty."""
    if v.scalar:
        if not v.rng.contains_zero():
            return None
        return AbstractNum(Interval(0.0, 0.0), None, True)
    if v.size is not None:
        if v.size.lo > 0.0:
            return None
        return AbstractNum(v.rng, Interval(0.0, 0.0), False)
    return v


def _invert_op(op: ast.cmpop) -> ast.cmpop | None:
    if isinstance(op, ast.Gt):
        return ast.LtE()
    if isinstance(op, ast.GtE):
        return ast.Lt()
    if isinstance(op, ast.Lt):
        return ast.GtE()
    if isinstance(op, ast.LtE):
        return ast.Gt()
    if isinstance(op, ast.Eq):
        return ast.NotEq()
    if isinstance(op, ast.NotEq):
        return ast.Eq()
    return None


def _swap_op(op: ast.cmpop) -> ast.cmpop | None:
    """`c OP x` read from x's side: `5 < x` is `x > 5`."""
    if isinstance(op, ast.Gt):
        return ast.Lt()
    if isinstance(op, ast.GtE):
        return ast.LtE()
    if isinstance(op, ast.Lt):
        return ast.Gt()
    if isinstance(op, ast.LtE):
        return ast.GtE()
    if isinstance(op, (ast.Eq, ast.NotEq)):
        return op
    return None


def _refinable(expr: ast.expr) -> tuple[str | None, str | None]:
    """What a comparison side lets us refine: ``("rng", name)`` for a
    plain name, ``("len", name)`` for ``len(x)`` / ``x.shape[0]``,
    ``("size", name)`` for ``x.size`` (total element count — only the
    positive direction maps to first-dim length)."""
    if isinstance(expr, ast.Name):
        return "rng", expr.id
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
        and len(expr.args) == 1
        and isinstance(expr.args[0], ast.Name)
    ):
        return "len", expr.args[0].id
    if (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.value, ast.Attribute)
        and expr.value.attr == "shape"
        and isinstance(expr.value.value, ast.Name)
        and isinstance(expr.slice, ast.Constant)
        and expr.slice.value == 0
    ):
        return "len", expr.value.value.id
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr == "size"
        and isinstance(expr.value, ast.Name)
    ):
        return "size", expr.value.id
    return None, None


def _refine_rng(
    v: AbstractNum, op: ast.cmpop, other: Interval
) -> AbstractNum | None:
    """Refine a value's range given that ``value OP other`` held.  An
    ordering that held clears NaN (every comparison with NaN is False);
    ``!=`` keeps it (NaN != c is True)."""
    rng = v.rng
    if isinstance(op, ast.Gt):
        new = Interval(max(rng.lo, _next_up(other.lo)), rng.hi, False)
    elif isinstance(op, ast.GtE):
        new = Interval(max(rng.lo, other.lo), rng.hi, False)
    elif isinstance(op, ast.Lt):
        new = Interval(rng.lo, min(rng.hi, _next_down(other.hi)), False)
    elif isinstance(op, ast.LtE):
        new = Interval(rng.lo, min(rng.hi, other.hi), False)
    elif isinstance(op, ast.Eq):
        new = Interval(
            max(rng.lo, other.lo), min(rng.hi, other.hi), False
        )
    elif isinstance(op, ast.NotEq):
        new = rng
        if other.is_point() and not other.nan:
            c = other.lo
            lo, hi = rng.lo, rng.hi
            if lo == c:
                lo = _next_up(c)
            if hi == c:
                hi = _next_down(c)
            new = Interval(lo, hi, rng.nan)
    else:
        return v
    if new.lo > new.hi:
        # bounds emptied: feasible only as NaN (kept by !=) or not at all
        if new.nan:
            return AbstractNum(Interval(0.0, 0.0, True), v.size, v.scalar)
        return None
    return AbstractNum(new, v.size, v.scalar)


def _int_lower(bound: float, strict: bool) -> float:
    if not math.isfinite(bound):
        return 0.0 if bound == -INF else bound
    if strict:
        return math.floor(bound) + 1 if float(bound).is_integer() else math.ceil(bound)
    return math.ceil(bound)


def _int_upper(bound: float, strict: bool) -> float:
    if not math.isfinite(bound):
        return bound
    if strict:
        return math.ceil(bound) - 1 if float(bound).is_integer() else math.floor(bound)
    return math.floor(bound)


def _refine_len(
    v: AbstractNum, op: ast.cmpop, other: Interval
) -> AbstractNum | None:
    """Refine a value's first-dim length given ``len(value) OP other``
    (lengths are integers ≥ 0, so ``len > 0`` means ``len ≥ 1``)."""
    size = v.size if v.size is not None else Interval(0.0, INF)
    lo, hi = size.lo, size.hi
    if isinstance(op, ast.Gt):
        lo = max(lo, _int_lower(other.lo, strict=True))
    elif isinstance(op, ast.GtE):
        lo = max(lo, _int_lower(other.lo, strict=False))
    elif isinstance(op, ast.Lt):
        hi = min(hi, _int_upper(other.hi, strict=True))
    elif isinstance(op, ast.LtE):
        hi = min(hi, _int_upper(other.hi, strict=False))
    elif isinstance(op, ast.Eq):
        lo = max(lo, _int_lower(other.lo, strict=False))
        hi = min(hi, _int_upper(other.hi, strict=False))
    elif isinstance(op, ast.NotEq):
        if other.is_point():
            c = other.lo
            if lo == c:
                lo = c + 1.0
            if hi == c:
                hi = c - 1.0
    else:
        return v
    lo = max(lo, 0.0)
    if lo > hi:
        return None  # no feasible length: the edge is dead
    return AbstractNum(v.rng, Interval(lo, hi), False)
