"""KernelSHAP (Lundberg & Lee 2017).

Shapley values are the solution of a specific weighted linear regression:
fit an additive surrogate ``g(z) = phi_0 + sum_i phi_i z_i`` over coalition
indicator vectors ``z``, weighting each coalition by the Shapley kernel
``(d-1) / (C(d,|z|) |z| (d-|z|))``.  The empty and grand coalitions carry
infinite weight, so we enforce them as *exact* constraints:
``phi_0 = v(empty)`` and ``sum_i phi_i = v(full) - v(empty)`` (the latter
by variable elimination).  This is the ablation DESIGN.md calls out —
penalised variants trade exact efficiency for numerical convenience; we
keep the axiom exact.

With few features every coalition is enumerated and the result equals the
exact Shapley value (up to the background approximation); with many
features coalitions are sampled in complementary pairs, size-stratified by
the kernel distribution.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.games import MarginalImputationGame
from xaidb.runtime import EvalStats, GameRuntime, RuntimeConfig
from xaidb.utils.combinatorics import shapley_kernel_weight
from xaidb.utils.linalg import solve_psd
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array

__all__ = ["KernelShapExplainer"]


class KernelShapExplainer(Explainer):
    """Model-agnostic SHAP via the Shapley-kernel weighted regression.

    Parameters
    ----------
    predict_fn:
        Scalar model output to explain.
    background:
        Reference rows for the marginal-imputation value function.
    n_coalitions:
        Sampling budget when exhaustive enumeration (``2^d - 2``
        coalitions) would exceed it.
    l2:
        Tiny ridge stabiliser for the (possibly rank-deficient) sampled
        regression; does not affect the enforced constraints.
    config:
        Shared-runtime knobs (memo cache, ``max_batch_rows`` chunking);
        defaults to :class:`~xaidb.runtime.RuntimeConfig`'s defaults.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        n_coalitions: int = 2048,
        l2: float = 1e-10,
        feature_names: list[str] | None = None,
        config: RuntimeConfig | None = None,
    ) -> None:
        if n_coalitions < 4:
            raise ValidationError("n_coalitions must be at least 4")
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.n_coalitions = n_coalitions
        self.l2 = l2
        self.feature_names = feature_names
        self.config = config or RuntimeConfig()
        #: Shared ledger of the most recent :meth:`explain_batch` call.
        self.batch_stats_: EvalStats | None = None

    # ------------------------------------------------------------------
    def make_runtime(
        self,
        instance: np.ndarray,
        *,
        stats: EvalStats | None = None,
    ) -> GameRuntime:
        """A runtime for repeated explanations of one instance.

        Pass the result to :meth:`explain` via ``runtime=`` to share the
        coalition cache across calls (interactive workloads re-request
        the same explanation with different budgets/visualisations);
        its :attr:`~xaidb.runtime.GameRuntime.stats` accumulate across
        those calls while each attribution's metadata reports per-call
        deltas.  ``stats`` threads in an external ledger (e.g. one
        shared across a batch) instead of a fresh one.
        """
        instance = check_array(instance, name="instance", ndim=1)
        return GameRuntime(
            MarginalImputationGame(
                self.predict_fn, instance, self.background
            ),
            config=self.config,
            stats=stats,
        )

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
        runtime: GameRuntime | None = None,
    ) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        d = instance.shape[0]
        if d < 2:
            raise ValidationError("KernelSHAP needs at least 2 features")
        if runtime is None:
            runtime = self.make_runtime(instance)
        elif runtime.n_players != d:
            raise ValidationError(
                f"runtime is for {runtime.n_players} players, instance "
                f"has {d} features"
            )
        before = runtime.stats.copy()
        with runtime.stats.timer():
            base_value = runtime.value(())
            full_value = runtime.value(range(d))
            masks, weights = self._coalition_design(d, random_state)
            values = runtime.values_batch(masks)
            phi = self._solve(masks, values, weights, base_value, full_value)
        run_stats = runtime.stats.since(before)
        names = self.feature_names or [f"x{i}" for i in range(d)]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=base_value,
            prediction=full_value,
            metadata={
                "method": "kernel_shap",
                "n_coalitions": int(masks.shape[0]),
                "exhaustive": (2**d - 2) <= self.n_coalitions,
                **run_stats.as_metadata(),
            },
        )

    # ------------------------------------------------------------------
    def explain_batch(
        self,
        instances: np.ndarray,
        *,
        random_state: RandomState = None,
        seeds: list[int | None] | None = None,
    ) -> list[FeatureAttribution]:
        """Explain many instances in one call — the serving dispatcher's
        batch entry point.

        Each instance gets its own fresh game and runtime (the
        marginal-imputation game is per-instance, so coalition caches
        cannot be shared across rows), seeded per instance, which makes
        every attribution **bitwise identical** to the serial
        ``explain(instance, random_state=seed)`` path.  All runtimes
        write into one shared :attr:`batch_stats_` ledger; per-call
        deltas in each attribution's metadata stay exact because
        :meth:`EvalStats.since` snapshots are taken inside
        :meth:`explain`.
        """
        instances = check_array(instances, name="instances", ndim=2)
        n = instances.shape[0]
        if seeds is None:
            seeds = spawn_seeds(random_state, n)
        elif len(seeds) != n:
            raise ValidationError(
                f"got {len(seeds)} seeds for {n} instances"
            )
        self.batch_stats_ = EvalStats()
        return [
            self.explain(
                instances[i],
                random_state=seeds[i],
                runtime=self.make_runtime(
                    instances[i], stats=self.batch_stats_
                ),
            )
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    def _coalition_design(
        self, d: int, random_state: RandomState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return coalition masks and their regression weights."""
        total_nontrivial = 2**d - 2
        if total_nontrivial <= self.n_coalitions:
            masks = []
            weights = []
            for size in range(1, d):
                kernel = shapley_kernel_weight(size, d)
                for subset in combinations(range(d), size):
                    mask = np.zeros(d, dtype=bool)
                    mask[list(subset)] = True
                    masks.append(mask)
                    weights.append(kernel)
            return np.asarray(masks), np.asarray(weights)
        return self._sample_coalitions(d, random_state)

    def _sample_coalitions(
        self, d: int, random_state: RandomState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Size-stratified paired sampling from the kernel distribution.

        Sizes are drawn with probability proportional to the *total*
        kernel mass of that size (kernel weight x number of coalitions of
        that size); each sampled mask is paired with its complement.  Once
        sampled this way, every coalition enters the regression with unit
        weight (the kernel is already accounted for by the sampling
        distribution).

        Duplicate draws are *aggregated*: a mask sampled ``k`` times
        enters the regression once with weight ``k``.  This matches the
        sampling distribution exactly (the WLS normal equations are
        identical to ``k`` unit-weight copies) while letting the runtime
        cache dedupe cleanly — the seed behaviour, which kept duplicates
        as independent unit-weight rows, silently re-evaluated them.
        """
        rng = check_random_state(random_state)
        sizes = np.arange(1, d)
        mass = np.asarray(
            [shapley_kernel_weight(int(s), d) * comb(d, int(s)) for s in sizes]
        )
        probabilities = mass / mass.sum()
        n_pairs = self.n_coalitions // 2
        masks = np.zeros((2 * n_pairs, d), dtype=bool)
        drawn_sizes = rng.choice(sizes, size=n_pairs, p=probabilities)
        for pair, size in enumerate(drawn_sizes):
            chosen = rng.choice(d, size=int(size), replace=False)
            masks[2 * pair, chosen] = True
            masks[2 * pair + 1] = ~masks[2 * pair]
        unique_masks, counts = np.unique(masks, axis=0, return_counts=True)
        return unique_masks, counts.astype(float)

    def _solve(
        self,
        masks: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
        base_value: float,
        full_value: float,
    ) -> np.ndarray:
        """Constrained weighted least squares with the efficiency constraint
        eliminated onto the last feature."""
        d = masks.shape[1]
        Z = masks.astype(float)
        delta = full_value - base_value
        target = values - base_value - Z[:, -1] * delta
        design = Z[:, :-1] - Z[:, -1][:, None]
        weighted = design * weights[:, None]
        gram = weighted.T @ design + self.l2 * np.eye(d - 1)
        phi_head = solve_psd(gram, weighted.T @ target)
        phi = np.empty(d)
        phi[:-1] = phi_head
        phi[-1] = delta - phi_head.sum()
        return phi
