"""The pass G may-raise summaries: named types propagate bottom-up
with witnesses, handlers subtract only what they provably catch, and
everything unprovable collapses to the conservative ⊤ bit instead of
a wrong 'cannot raise' claim."""

from __future__ import annotations

import ast
from pathlib import Path

from xaidb.analysis.raises import (
    builtin_ancestors,
    decode_entry,
    encode_raises,
    is_cancellation,
    is_service_error,
)
from xaidb.analysis.registry import FileContext, ProjectContext


def _summaries(source: str):
    ctx = FileContext(
        path=Path("module.py"),
        relpath="module.py",
        source=source,
        tree=ast.parse(source),
        in_xaidb_package=True,
        module_name="xaidb.fx",
    )
    return ProjectContext(files=[ctx]).interproc().summaries


def _named(summary):
    return {decode_entry(e)[0] for e in summary.raises_named}


def test_direct_raise_is_named_with_a_witness():
    summaries = _summaries(
        "def boom(key):\n"
        "    raise KeyError(key)\n"
    )
    summary = summaries["xaidb.fx.boom"]
    assert not summary.raises_top
    ((type_name, witness),) = [
        decode_entry(e) for e in summary.raises_named
    ]
    assert type_name == "KeyError"
    assert witness == "xaidb.fx.boom:2"


def test_callee_raises_flow_into_the_caller():
    summaries = _summaries(
        "def inner(key):\n"
        "    raise KeyError(key)\n"
        "def outer(key):\n"
        "    return inner(key)\n"
    )
    summary = summaries["xaidb.fx.outer"]
    assert _named(summary) == {"KeyError"}
    # the witness points at the original raise, not the call site
    assert decode_entry(summary.raises_named[0])[1] == "xaidb.fx.inner:2"


def test_handler_subtracts_what_it_provably_catches():
    summaries = _summaries(
        "def guarded(key):\n"
        "    try:\n"
        "        raise KeyError(key)\n"
        "    except KeyError:\n"
        "        return None\n"
    )
    summary = summaries["xaidb.fx.guarded"]
    assert not summary.raises_top
    assert _named(summary) == set()


def test_disjoint_builtin_handler_provably_misses():
    summaries = _summaries(
        "def mismatched(key):\n"
        "    try:\n"
        "        raise KeyError(key)\n"
        "    except ValueError:\n"
        "        return None\n"
    )
    assert _named(summaries["xaidb.fx.mismatched"]) == {"KeyError"}


def test_broad_except_does_not_catch_cancellation():
    summaries = _summaries(
        "import asyncio\n"
        "def cancelled():\n"
        "    try:\n"
        "        raise asyncio.CancelledError()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    summary = summaries["xaidb.fx.cancelled"]
    assert _named(summary) == {"asyncio.CancelledError"}
    assert not summary.raises_top  # the broad handler clears ⊤, not this


def test_unresolved_call_and_bare_raise_are_top():
    summaries = _summaries(
        "def opaque(path):\n"
        "    return open(path).read()\n"
        "def reraise(exc):\n"
        "    raise\n"
    )
    assert summaries["xaidb.fx.opaque"].raises_top
    assert summaries["xaidb.fx.reraise"].raises_top


def test_finally_return_swallows_everything_in_flight():
    summaries = _summaries(
        "def swallowed(key):\n"
        "    try:\n"
        "        raise KeyError(key)\n"
        "    finally:\n"
        "        return None\n"
    )
    summary = summaries["xaidb.fx.swallowed"]
    assert not summary.raises_top
    assert _named(summary) == set()


def test_corpus_exception_hierarchy_resolves_through_bases():
    summaries = _summaries(
        "class ServiceError(Exception):\n"
        "    pass\n"
        "class RefreshError(ServiceError):\n"
        "    pass\n"
        "def modelled(key):\n"
        "    try:\n"
        "        raise RefreshError(key)\n"
        "    except ServiceError:\n"
        "        return None\n"
    )
    summary = summaries["xaidb.fx.modelled"]
    assert not summary.raises_top
    assert _named(summary) == set()


def test_encode_caps_named_types_into_top():
    named = {f"Error{i}": f"m.f:{i}" for i in range(20)}
    entries, top = encode_raises(named, False)
    assert len(entries) == 12  # the overflow collapses into ⊤
    assert top


def test_encode_is_sorted_and_decodable():
    entries, top = encode_raises(
        {"ValueError": "m.f:3", "KeyError": "m.f:2"}, False
    )
    assert not top
    assert entries == ("KeyError@m.f:2", "ValueError@m.f:3")
    assert decode_entry(entries[0]) == ("KeyError", "m.f:2")


def test_classification_helpers():
    assert is_cancellation("asyncio.CancelledError")
    assert not is_cancellation("KeyError")
    assert "Exception" in builtin_ancestors("KeyError")
    assert "BaseException" in builtin_ancestors("asyncio.CancelledError")


def test_service_error_classification_uses_corpus_ancestry():
    ctx = FileContext(
        path=Path("module.py"),
        relpath="module.py",
        source=(
            "class ServiceError(Exception):\n"
            "    pass\n"
            "class RefreshError(ServiceError):\n"
            "    pass\n"
        ),
        tree=ast.parse(
            "class ServiceError(Exception):\n"
            "    pass\n"
            "class RefreshError(ServiceError):\n"
            "    pass\n"
        ),
        in_xaidb_package=True,
        module_name="xaidb.fx",
    )
    graph = ProjectContext(files=[ctx]).interproc().graph
    assert is_service_error("xaidb.fx.ServiceError", graph)
    assert is_service_error("xaidb.fx.RefreshError", graph)
    assert not is_service_error("KeyError", graph)
