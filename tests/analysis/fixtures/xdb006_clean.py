"""XDB006 clean fixture: tolerance-based float comparison."""

import numpy as np

__all__ = ["compare"]


def compare(x: float, count: int) -> bool:
    if count == 0:  # integer comparison is exact
        return False
    return bool(np.isclose(x, 0.1))
