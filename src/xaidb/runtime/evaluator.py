"""The shared evaluation substrate for perturbation-based explainers.

Every surveyed family — LIME, KernelSHAP, Anchors, Data Shapley — reduces
to *many model evaluations over perturbed inputs* (PAPER.md's central
cost claim).  :class:`GameRuntime` is the one place that cost is paid:
it layers a batch-aware memo cache, bounded-memory chunking and full
evaluation accounting over any cooperative
:class:`~xaidb.explainers.shapley.games.Game`, so estimators share work
instead of re-rolling their own loops.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.runtime.cache import DEFAULT_MAX_ENTRIES, CoalitionCache
from xaidb.runtime.parallel import WorkerPool, parallel_map, resolve_shared
from xaidb.runtime.stats import EvalStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    # The runtime layer sits below the explainers package; the Game
    # protocol is consumed structurally (n_players/value/values_batch),
    # never imported at module scope — that would be a cycle.
    from xaidb.explainers.shapley.games import Game

__all__ = ["RuntimeConfig", "GameRuntime"]


def _values_batch_chunk(task) -> np.ndarray:
    """Evaluate one mask chunk — the process-pool work unit for
    :meth:`GameRuntime._evaluate`'s parallel path.  ``batch_fn`` is a
    bound method of the wrapped game, so the chunk only ships when the
    game itself is picklable."""
    batch_fn, masks, max_batch_rows, supports_chunks = task
    masks = resolve_shared(masks)
    if supports_chunks:
        return np.asarray(
            batch_fn(masks, max_batch_rows=max_batch_rows), dtype=float
        )
    return np.asarray(batch_fn(masks), dtype=float)


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the shared evaluation runtime.

    Attributes
    ----------
    cache:
        Memoise coalition values (and dedupe within each batch).  Off,
        every request is evaluated verbatim — the seed-loop baseline.
    max_batch_rows:
        Upper bound on hybrid-matrix rows materialised per model call;
        ``None`` evaluates each batch in one shot (the seed behaviour).
    n_jobs:
        Worker processes for embarrassingly parallel outer loops
        (``None``/``1`` = serial).  Consumed by the explainers' parallel
        paths and by :class:`GameRuntime`'s chunked batch evaluation,
        which fans uncached mask chunks over the persistent
        :class:`~xaidb.runtime.parallel.WorkerPool` when the game can
        cross the process boundary (instrumented games carry an
        unpicklable counting wrapper and transparently stay serial, so
        evaluation accounting is never lost to a worker process).
    max_cache_entries:
        Capacity bound on the coalition memo cache (FIFO eviction,
        ``None`` = unbounded).  The default is far above any single
        explanation's coalition count, so results are bitwise unchanged
        there; it exists so a long-running server cannot leak memory on
        every distinct coalition.  Evictions surface as
        ``EvalStats.cache_evictions``.
    """

    cache: bool = True
    max_batch_rows: int | None = 16384
    n_jobs: int | None = None
    max_cache_entries: int | None = DEFAULT_MAX_ENTRIES

    def __post_init__(self) -> None:
        if self.max_batch_rows is not None and self.max_batch_rows < 1:
            raise ValidationError("max_batch_rows must be >= 1 or None")
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1 or None")
        if self.max_cache_entries is not None and self.max_cache_entries < 1:
            raise ValidationError("max_cache_entries must be >= 1 or None")


class GameRuntime:
    """Memoised, chunked, instrumented view of a cooperative game.

    The runtime *behaves as* a game (``n_players``/``value``/
    ``values_batch``/``grand_value``/``empty_value``), so any Shapley
    estimator can consume it unchanged; repeated and overlapping
    coalition workloads are served from the cache, and all model-eval
    accounting lands in :attr:`stats`.  It deliberately does not
    subclass :class:`~xaidb.explainers.shapley.games.Game` — the
    runtime layer sits below the explainers package.

    The wrapped game is instrumented in place: its ``predict_fn`` (when
    it has one) is replaced by a counting wrapper, so the runtime should
    own the game for the duration of the explanation.
    """

    #: Estimators must not re-wrap this game in another memo layer.
    provides_cache = True

    def __init__(
        self,
        game: "Game",
        *,
        config: RuntimeConfig | None = None,
        stats: EvalStats | None = None,
    ) -> None:
        if game.n_players < 1:
            raise ValidationError("a game needs at least one player")
        self.n_players = game.n_players
        self.game = game
        self.config = config or RuntimeConfig()
        self.stats = stats or EvalStats()
        self._cache = (
            CoalitionCache(
                game.n_players,
                max_entries=self.config.max_cache_entries,
            )
            if self.config.cache
            else None
        )
        # ``wrap_predict_fn`` is idempotent: re-wrapping a game that an
        # earlier runtime already instrumented (a dispatcher reusing
        # long-lived games) replaces the old counting wrapper instead of
        # stacking another one, so each scored row counts exactly once —
        # in *this* runtime's ledger.
        if hasattr(game, "predict_fn"):
            game.predict_fn = self.stats.wrap_predict_fn(game.predict_fn)
        self._evictions_seen = 0
        batch_fn = getattr(game, "values_batch", None)
        self._batch_fn = batch_fn
        self._batch_fn_chunks = bool(batch_fn) and (
            "max_batch_rows" in inspect.signature(batch_fn).parameters
        )

    # ------------------------------------------------------------------
    def _mask_of(self, coalition: Iterable[int]) -> np.ndarray:
        mask = np.zeros(self.n_players, dtype=bool)
        present = list(coalition)
        if present:
            index = np.asarray(present, dtype=int)
            if index.min() < 0 or index.max() >= self.n_players:
                raise ValidationError(
                    "coalition contains invalid player index"
                )
            mask[index] = True
        return mask

    def _sync_evictions(self) -> None:
        """Mirror the cache's eviction count into the ledger (as deltas,
        so a stats object shared across runtimes accumulates correctly)."""
        if self._cache is None:
            return
        delta = self._cache.n_evictions - self._evictions_seen
        if delta:
            self.stats.cache_evictions += delta
            self._evictions_seen = self._cache.n_evictions

    def value(self, coalition: Iterable[int]) -> float:
        mask = self._mask_of(coalition)
        if self._cache is not None:
            hit = self._cache.get(mask)
            if hit is not None:
                self.stats.cache_hits += 1
                return hit
            self.stats.cache_misses += 1
        result = float(self.game.value(np.flatnonzero(mask)))
        self.stats.n_coalition_evals += 1
        if self._cache is not None:
            self._cache.put(mask, result)
            self._sync_evictions()
        return result

    # ------------------------------------------------------------------
    def values_batch(self, masks: np.ndarray) -> np.ndarray:
        """Evaluate a ``(n, d)`` boolean mask batch, memoised and chunked."""
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[1] != self.n_players:
            raise ValidationError(
                f"masks must have shape (n, {self.n_players})"
            )
        if self._cache is None:
            values = self._evaluate(masks)
            self.stats.n_coalition_evals += masks.shape[0]
            return values

        values, missing = self._cache.lookup_batch(masks)
        self.stats.cache_hits += masks.shape[0] - len(missing)
        if len(missing):
            # Dedupe inside the batch: paired sampling and repeated
            # workloads emit identical masks that need one evaluation.
            keys: dict[bytes, int] = {}
            unique_rows: list[int] = []
            position: list[int] = []
            for row in missing:
                key = masks[row].tobytes()
                slot = keys.get(key)
                if slot is None:
                    keys[key] = len(unique_rows)
                    position.append(len(unique_rows))
                    unique_rows.append(int(row))
                else:
                    position.append(slot)
            if len(unique_rows) == masks.shape[0]:
                # Nothing cached and no duplicates: evaluate the
                # caller's array as-is.  Preserving object identity is
                # what lets the worker pool's ``share()`` memo hit for
                # read-only arena designs (and skips a full-array copy).
                unique_masks = masks
            else:
                unique_masks = masks[unique_rows]
            self.stats.cache_misses += len(unique_rows)
            self.stats.cache_hits += len(missing) - len(unique_rows)
            unique_values = self._evaluate(unique_masks)
            self.stats.n_coalition_evals += len(unique_rows)
            self._cache.store_batch(unique_masks, unique_values)
            self._sync_evictions()
            values[missing] = unique_values[position]
        return values

    def _evaluate(self, masks: np.ndarray) -> np.ndarray:
        """Raw (uncached) evaluation, chunked when the game supports it.

        With ``config.n_jobs > 1`` the mask chunks fan out over the
        persistent worker pool; per-mask values are independent, so
        chunk boundaries and worker count never change the result
        (games that cannot be pickled — every instrumented game, whose
        ``predict_fn`` is a counting closure — fall back to the serial
        path inside ``parallel_map``, keeping the ledger exact).
        """
        n_jobs = self.config.n_jobs
        if self._batch_fn is not None:
            if (
                n_jobs is not None
                and n_jobs > 1
                and masks.shape[0] >= 2 * n_jobs
            ):
                chunks = np.array_split(masks, n_jobs)
                payloads: list = chunks
                if not masks.flags.writeable:
                    # Read-only masks are arena designs with stable
                    # object identity: place them in shared memory once
                    # (``share`` memoises per source object) and ship
                    # pickle-cheap window handles instead of per-task
                    # mask copies.  Writable masks are one-shot arrays
                    # — sharing them would pin them in the arena for
                    # the life of the pool, so those still travel by
                    # pickle.
                    ref = WorkerPool.get().share(masks)
                    edges = np.cumsum(
                        [0] + [chunk.shape[0] for chunk in chunks]
                    )
                    payloads = [
                        ref.slice(edges[k], edges[k + 1])
                        for k in range(len(chunks))
                    ]
                parts = parallel_map(
                    _values_batch_chunk,
                    [
                        (
                            self._batch_fn,
                            payload,
                            self.config.max_batch_rows,
                            self._batch_fn_chunks,
                        )
                        for payload in payloads
                    ],
                    n_jobs=n_jobs,
                    stats=self.stats,
                )
                return np.concatenate(parts)
            if self._batch_fn_chunks:
                return np.asarray(
                    self._batch_fn(
                        masks, max_batch_rows=self.config.max_batch_rows
                    ),
                    dtype=float,
                )
            return np.asarray(self._batch_fn(masks), dtype=float)
        return np.asarray(
            [self.game.value(np.flatnonzero(mask)) for mask in masks],
            dtype=float,
        )

    # ------------------------------------------------------------------
    def grand_value(self) -> float:
        """``v(N)`` — the payoff of the full coalition (cached)."""
        return self.value(range(self.n_players))

    def empty_value(self) -> float:
        """``v(∅)`` — the base payoff (cached)."""
        return self.value(())

    @property
    def n_cached(self) -> int:
        """Distinct coalitions held in the memo cache."""
        return len(self._cache) if self._cache is not None else 0
