"""Clean fixture for XDB010: every sampled generator is caller-derived."""

import numpy as np

from xaidb.utils.rng import check_random_state

__all__ = ["sanctioned", "derived_seed", "passed_through", "no_sink"]


def sanctioned(n, random_state=None):
    rng = check_random_state(random_state)
    return rng.normal(size=n)


def derived_seed(n, seed):
    # a child stream derived from a caller seed is caller-reproducible
    rng = np.random.default_rng(seed + 1)
    return rng.uniform(size=n)


def passed_through(n, rng):
    gen = rng  # assignment chain from a parameter stays clean
    return gen.integers(0, n)


def no_sink():
    # constructing a generator is not the violation; sampling from it is
    rng = np.random.default_rng(7)
    return rng
