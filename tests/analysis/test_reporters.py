"""Reporter schema stability and CLI behaviour."""

from __future__ import annotations

import json

import pytest

from xaidb.analysis import (
    JSON_SCHEMA_VERSION,
    lint_source,
    render_github,
    render_json,
    render_text,
)
from xaidb.analysis.cli import main
from xaidb.analysis.reporters import (
    _github_escape_data,
    _github_escape_property,
)

DIRTY = "def f(x, bucket=[]):\n    return bucket\n"

#: The pinned JSON schema — changing either set is a breaking change
#: that must bump JSON_SCHEMA_VERSION (see docs/LINTING.md).
DOCUMENT_KEYS = {
    "schema_version",
    "files_scanned",
    "ok",
    "findings",
    "suppressed_count",
    "summary",
}
FINDING_KEYS = {"path", "line", "col", "rule", "symbol", "message", "severity"}


class TestJsonReporter:
    def test_schema_keys_are_stable(self):
        document = json.loads(render_json(lint_source(DIRTY)))
        assert set(document) == DOCUMENT_KEYS
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert document["ok"] is False
        assert document["files_scanned"] == 1
        assert document["summary"] == {"XDB007": 1}
        (finding,) = document["findings"]
        assert set(finding) == FINDING_KEYS
        assert finding["rule"] == "XDB007"
        assert finding["symbol"] == "mutable-default-argument"
        assert finding["severity"] == "error"

    def test_clean_document(self):
        document = json.loads(render_json(lint_source("x = 1\n")))
        assert document["ok"] is True
        assert document["findings"] == []
        assert document["summary"] == {}


class TestTextReporter:
    def test_one_line_per_finding_plus_summary(self):
        text = render_text(lint_source(DIRTY, filename="mod.py"))
        assert "mod.py:1:" in text
        assert "XDB007" in text
        assert "1 finding(s)" in text

    def test_clean_says_clean(self):
        assert "clean" in render_text(lint_source("x = 1\n"))


class TestGithubReporter:
    def test_one_annotation_per_finding(self):
        out = render_github(lint_source(DIRTY, filename="mod.py"))
        (annotation, summary) = out.splitlines()
        assert annotation.startswith("::error file=mod.py,line=1,col=")
        assert ",title=XDB007::" in annotation
        assert "[mutable-default-argument]" in annotation
        assert "1 finding(s)" in summary

    def test_clean_emits_only_the_summary_line(self):
        out = render_github(lint_source("x = 1\n"))
        assert out.splitlines() == ["xailint: 1 file scanned, clean"]

    def test_workflow_command_escaping(self):
        # %, CR and LF would corrupt the ::command stream; commas and
        # colons would corrupt the property list.  The escapes are
        # GitHub's documented ones.
        out = render_github(lint_source(DIRTY, filename="a,b:c.py"))
        assert "file=a%2Cb%3Ac.py," in out
        assert _github_escape_data("50%\r\ndone") == "50%25%0D%0Adone"
        assert _github_escape_property("f:1,2") == "f%3A1%2C2"


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main([str(tmp_path)]) == 1
        assert "XDB007" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main([str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"] == {"XDB007": 1}

    def test_rules_subset(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert main([str(tmp_path), "--rules", "XDB001"]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--rules", "XDB999"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_nonexistent_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "no_such_dir")])
        assert excinfo.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in [f"XDB00{i}" for i in range(1, 9)]:
            assert rule_id in out
