"""The asyncio explanation server: queue → micro-batches → fan-out.

:class:`ExplanationServer` is the headless, high-throughput counterpart
of the interactive explanation front-ends the paper surveys: requests
enter the bounded queue (overflow is shed with a typed error), a
batching loop drains them in small windows, coalesces requests sharing
a ``(model, explainer, config)`` key into *one* batched explainer call
(dispatched off-loop in a worker thread so the event loop keeps
admitting traffic), and fans the per-instance results back out to each
caller's future.  Per-request deadlines are enforced twice: expired
requests are dropped *before* dispatch so the back-end never pays for
work nobody is waiting on, and a caller stops waiting the moment its
budget elapses regardless of where its request is.

The contract that makes coalescing safe: each request carries its own
seed, and every backend's batch entry point reproduces the serial
``explain(instance, random_state=seed)`` results bitwise (asserted in
``tests/service/test_server.py``).
"""

from __future__ import annotations

import asyncio
import itertools

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.service.batcher import MicroBatcher, PendingRequest, group_by_key
from xaidb.service.dispatcher import Dispatcher
from xaidb.service.stats import ServiceStats
from xaidb.service.types import (
    DeadlineExceededError,
    ExplainRequest,
    ExplainResponse,
    ServiceError,
)

__all__ = ["ExplanationServer"]


class ExplanationServer:
    """Micro-batching asyncio front-end over a :class:`Dispatcher`.

    Parameters
    ----------
    dispatcher:
        The batched back-end (models + explainer factories).
    max_queue_depth:
        Admission bound; submissions beyond it raise
        :class:`~xaidb.service.types.LoadShedError`.
    max_batch_size / max_wait_s:
        Micro-batching knobs — see :class:`~xaidb.service.batcher.
        MicroBatcher`.
    max_inflight_batches:
        Dispatch-side backpressure: the batching loop stops draining
        the queue while this many batches are in flight, so overload
        builds *in the bounded queue* (where it sheds) instead of
        accumulating as unbounded dispatch tasks.
    stats:
        The serving ledger; defaults to a fresh
        :class:`~xaidb.service.stats.ServiceStats`.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with ExplanationServer(dispatcher) as server:
            response = await server.submit(request)
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        *,
        max_queue_depth: int = 256,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_inflight_batches: int = 8,
        stats: ServiceStats | None = None,
    ) -> None:
        if max_inflight_batches < 1:
            raise ValidationError("max_inflight_batches must be >= 1")
        self.max_inflight_batches = max_inflight_batches
        self.dispatcher = dispatcher
        self.stats = stats or ServiceStats()
        self.batcher = MicroBatcher(
            max_queue_depth=max_queue_depth,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
        )
        self._serve_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._key_locks: dict[tuple[str, str, str], asyncio.Lock] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        return self._serve_task is not None and not self._serve_task.done()

    async def start(self) -> None:
        if self.running:
            return
        self._serve_task = asyncio.create_task(
            self._serve(), name="xaidb-explanation-server"
        )

    async def stop(self) -> None:
        """Stop the batching loop, let in-flight dispatches finish, and
        fail anything still queued with a typed error."""
        if self._serve_task is not None:
            self._serve_task.cancel()
            try:
                await self._serve_task
            except asyncio.CancelledError:
                pass
            self._serve_task = None
        if self._dispatch_tasks:
            await asyncio.gather(
                *tuple(self._dispatch_tasks), return_exceptions=True
            )
        for entry in self.batcher.drain_nowait():
            if not entry.future.done():
                entry.future.set_exception(ServiceError("server stopped"))

    async def __aenter__(self) -> "ExplanationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # --------------------------------------------------------------- submit
    async def submit(self, request: ExplainRequest) -> ExplainResponse:
        """Submit one request and await its explanation.

        Raises
        ------
        LoadShedError
            Immediately, when the queue is at ``max_queue_depth``.
        DeadlineExceededError
            When ``request.deadline_s`` elapses first.
        ServiceError
            When dispatch fails (unknown model/explainer, backend
            error, server stopped).
        """
        if not self.running:
            raise ServiceError("server is not running; call start()")
        if request.deadline_s is not None and request.deadline_s <= 0:
            raise ValidationError("deadline_s must be > 0 or None")
        loop = asyncio.get_running_loop()
        entry = PendingRequest(
            request=request,
            request_id=next(self._ids),
            future=loop.create_future(),
            enqueued_at=loop.time(),
            deadline_at=(
                None
                if request.deadline_s is None
                else loop.time() + request.deadline_s
            ),
        )
        try:
            self.batcher.put_nowait(entry)
        except ServiceError:  # LoadShedError
            self.stats.n_shed += 1
            raise
        self.stats.n_received += 1
        self.stats.observe_queue_depth(self.batcher.depth)
        try:
            if request.deadline_s is None:
                result = await entry.future
            else:
                result = await asyncio.wait_for(
                    entry.future, request.deadline_s
                )
        except (asyncio.TimeoutError, DeadlineExceededError) as exc:
            self.stats.n_deadline_expired += 1
            raise DeadlineExceededError(
                f"deadline of {request.deadline_s}s expired for request "
                f"{entry.request_id} ({request.explainer} on "
                f"{request.model})"
            ) from exc
        except ServiceError:
            self.stats.n_failed += 1
            raise
        latency_s = loop.time() - entry.enqueued_at
        self.stats.record_completion(latency_s)
        return ExplainResponse(
            request_id=entry.request_id,
            result=result,
            latency_s=latency_s,
            batch_size=entry.batch_size,
            model=request.model,
            explainer=request.explainer,
        )

    # ------------------------------------------------------------- batching
    async def _serve(self) -> None:
        while True:
            if len(self._dispatch_tasks) >= self.max_inflight_batches:
                # backpressure: leave requests in the bounded queue
                # (where overflow sheds) until a dispatch slot frees up
                await asyncio.wait(
                    tuple(self._dispatch_tasks),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                continue
            window = await self.batcher.next_batch()
            for key, entries in group_by_key(window).items():
                task = asyncio.create_task(
                    self._dispatch_group(key, entries)
                )
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch_group(
        self,
        key: tuple[str, str, str],
        entries: list[PendingRequest],
    ) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: list[PendingRequest] = []
        for entry in entries:
            if entry.future.done():
                continue  # caller already gone (deadline/cancellation)
            if entry.expired(now):
                # don't pay the back-end for work nobody is waiting on
                entry.future.set_exception(
                    DeadlineExceededError(
                        f"deadline expired while queued (request "
                        f"{entry.request_id})"
                    )
                )
                continue
            live.append(entry)
        if not live:
            return
        model, explainer_name, _ = key
        instances = np.stack(
            [entry.request.instance for entry in live]
        ).astype(float)
        seeds = [entry.request.random_state for entry in live]
        config = dict(live[0].request.config)
        self.stats.record_batch(len(live))
        for entry in live:
            entry.batch_size = len(live)
        # backends carry per-call state (batch ledgers, samplers): one
        # in-flight dispatch per batch key, while distinct keys overlap
        lock = self._key_locks.setdefault(key, asyncio.Lock())
        try:
            async with lock:
                results, run_stats = await asyncio.to_thread(
                    self.dispatcher.dispatch,
                    model,
                    explainer_name,
                    config,
                    instances,
                    seeds,
                )
        except ServiceError as exc:
            self._fail_group(live, exc)
            return
        # xailint: disable=XDB005 (fan-out boundary: any backend failure must become a typed error on every waiter, never kill the serve loop)
        except Exception as exc:
            self._fail_group(
                live,
                ServiceError(
                    f"dispatch failed for {explainer_name} on "
                    f"{model}: {exc!r}"
                ),
            )
            return
        self.stats.merge_runtime(run_stats)
        for entry, result in zip(live, results):
            if not entry.future.done():
                entry.future.set_result(result)

    @staticmethod
    def _fail_group(
        entries: list[PendingRequest], error: ServiceError
    ) -> None:
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(error)
