"""parallel_map semantics and the serial == parallel determinism
contract for the explainers that ride on it."""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.runtime import parallel_map


def _square(x: int) -> int:  # module-level: picklable for the pool
    return x * x


def test_serial_map_preserves_order():
    assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]
    assert parallel_map(_square, []) == []


def test_pool_map_matches_serial():
    tasks = list(range(8))
    serial = parallel_map(_square, tasks, n_jobs=1)
    pooled = parallel_map(_square, tasks, n_jobs=2)
    assert pooled == serial


def test_unpicklable_fn_falls_back_to_serial():
    offset = 10
    closure = lambda x: x + offset  # noqa: E731 - deliberately unpicklable
    assert parallel_map(closure, [1, 2, 3], n_jobs=2) == [11, 12, 13]


def test_n_jobs_validation():
    with pytest.raises(ValidationError):
        parallel_map(_square, [1], n_jobs=0)


# ------------------------------------------------------- determinism
def test_parallel_tmc_matches_serial_bitwise():
    from xaidb.datavaluation import UtilityFunction, tmc_shapley_values
    from xaidb.models import KNeighborsClassifier

    rng = np.random.default_rng(5)
    X = rng.normal(size=(24, 3))
    y = (X[:, 0] + 0.3 * rng.normal(size=24) > 0).astype(int)
    X_valid = rng.normal(size=(16, 3))
    y_valid = (X_valid[:, 0] > 0).astype(int)
    utility = UtilityFunction(
        KNeighborsClassifier(n_neighbors=3), X_valid, y_valid
    )
    serial, serial_std = tmc_shapley_values(
        utility, X, y, n_permutations=6, random_state=11
    )
    pooled, pooled_std = tmc_shapley_values(
        utility, X, y, n_permutations=6, random_state=11, n_jobs=2
    )
    assert np.array_equal(serial, pooled)
    assert np.array_equal(serial_std, pooled_std)


def test_parallel_permutation_shapley_matches_serial_bitwise():
    from xaidb.explainers.shapley.games import MarginalImputationGame
    from xaidb.explainers.shapley.sampling import permutation_shapley_values

    rng = np.random.default_rng(9)
    weights = rng.normal(size=5)
    game = MarginalImputationGame(
        lambda X: X @ weights, rng.normal(size=5), rng.normal(size=(8, 5))
    )
    serial, serial_se = permutation_shapley_values(
        game, n_permutations=12, random_state=4
    )
    # the game's predict_fn closure is unpicklable, so the pool path
    # exercises the serial fallback — the contract is identical output
    pooled, pooled_se = permutation_shapley_values(
        game, n_permutations=12, random_state=4, n_jobs=2
    )
    assert np.array_equal(serial, pooled)
    assert np.array_equal(serial_se, pooled_se)
