"""``xailint --fix``: XDB012 stale/dangling suppressions are deleted,
reason-less ones are rewritten into the canonical reason-bearing form,
the fix is idempotent, and ``--dry-run`` only prints the diff."""

from __future__ import annotations

from pathlib import Path

import pytest

from xaidb.analysis.cli import main
from xaidb.analysis.engine import run_paths
from xaidb.analysis.fixes import apply_fixes, plan_fixes

DIRTY = '''\
import numpy as np

# xailint: disable=XDB002 (the violation below is long gone)
def mean_of(xs):
    return float(np.mean(np.asarray(xs, dtype=float)))


def scaled(xs):
    total = np.asarray(xs, dtype=float).sum()
    # xailint: disable=XDB006 (dangling: nothing follows)
'''

#: What --fix must leave behind: both bad comments gone, code intact.
CLEAN = '''\
import numpy as np

def mean_of(xs):
    return float(np.mean(np.asarray(xs, dtype=float)))


def scaled(xs):
    total = np.asarray(xs, dtype=float).sum()
'''


@pytest.fixture()
def dirty_tree(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(DIRTY, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _scan(root: Path):
    return run_paths(["module.py"], root=root, cache_path=None)


def test_plan_targets_stale_and_dangling_only(dirty_tree):
    result = _scan(dirty_tree)
    assert {f.rule_id for f in result.findings} >= {"XDB012"}
    fixes = plan_fixes(result.findings, dirty_tree)
    assert len(fixes) == 1
    assert fixes[0].drop_lines == {3, 10}
    assert not fixes[0].strip_lines


def test_apply_fixes_rewrites_and_rescans_clean(dirty_tree):
    result = _scan(dirty_tree)
    report = apply_fixes(result.findings, dirty_tree)
    assert report.n_files == 1
    assert report.n_findings == 2
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == CLEAN
    rescan = _scan(dirty_tree)
    assert not [f for f in rescan.findings if f.rule_id == "XDB012"]


def test_apply_fixes_is_idempotent(dirty_tree):
    apply_fixes(_scan(dirty_tree).findings, dirty_tree)
    first = (dirty_tree / "module.py").read_text(encoding="utf-8")
    second_report = apply_fixes(_scan(dirty_tree).findings, dirty_tree)
    assert second_report.n_findings == 0
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == first


def test_trailing_stale_comment_keeps_the_code(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(
        "x = 1  # xailint: disable=XDB002 (stale trailing comment)\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    report = apply_fixes(_scan(tmp_path).findings, tmp_path)
    assert report.n_findings == 1
    assert target.read_text(encoding="utf-8") == "x = 1\n"


def test_partial_stale_multi_id_comment_survives(tmp_path, monkeypatch):
    # XDB007 still fires on the target line, so the comment is only
    # *partially* stale and must be kept verbatim
    target = tmp_path / "module.py"
    target.write_text(
        "# xailint: disable=XDB002,XDB007 (one id is live)\n"
        "def f(bucket=[]):\n"
        "    return bucket\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    original = target.read_text(encoding="utf-8")
    report = apply_fixes(_scan(tmp_path).findings, tmp_path)
    assert report.n_findings == 0
    assert target.read_text(encoding="utf-8") == original


def test_cli_fix_dry_run_prints_diff_without_writing(
    dirty_tree, capsys
):
    assert main(["--fix", "--dry-run", "module.py", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "--- a/module.py" in out
    assert "+++ b/module.py" in out
    assert "-# xailint: disable=XDB002" in out
    assert "would remove 2 and rewrite 0 suppression comment(s)" in out
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == DIRTY


def test_cli_fix_applies_and_reports(dirty_tree, capsys):
    assert main(["--fix", "module.py", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "removed 2 and rewrote 0 suppression comment(s) in 1 file(s)" in out
    assert (dirty_tree / "module.py").read_text(encoding="utf-8") == CLEAN


#: A live finding suppressed without a reason: XDB007 fires on the
#: mutable default, the comment silences it, XDB012 flags the missing
#: reason — the mechanical fix appends the placeholder.
REASONLESS = (
    "# xailint: disable=XDB007\n"
    "def f(bucket=[]):\n"
    "    return bucket\n"
)


def test_reasonless_comment_is_rewritten(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(REASONLESS, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    result = _scan(tmp_path)
    fixes = plan_fixes(result.findings, tmp_path)
    assert len(fixes) == 1
    assert fixes[0].rewrite_lines == {1}
    assert not fixes[0].drop_lines and not fixes[0].strip_lines
    report = apply_fixes(result.findings, tmp_path)
    assert (report.n_removed, report.n_rewritten) == (0, 1)
    fixed = target.read_text(encoding="utf-8")
    assert fixed.splitlines()[0] == (
        "# xailint: disable=XDB007 (reason: TODO)"
    )
    # idempotent: the rewritten comment is reason-bearing, XDB012 is
    # silent, and a second --fix plans nothing
    rescan = _scan(tmp_path)
    assert not [f for f in rescan.findings if f.rule_id == "XDB012"]
    second = apply_fixes(rescan.findings, tmp_path)
    assert second.n_findings == 0
    assert target.read_text(encoding="utf-8") == fixed


def test_reasonless_trailing_comment_keeps_code(tmp_path, monkeypatch):
    target = tmp_path / "module.py"
    target.write_text(
        "def f(bucket=[]):  # xailint: disable=XDB007\n"
        "    return bucket\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    report = apply_fixes(_scan(tmp_path).findings, tmp_path)
    assert report.n_rewritten == 1
    assert target.read_text(encoding="utf-8").splitlines()[0] == (
        "def f(bucket=[]):  # xailint: disable=XDB007 (reason: TODO)"
    )


def test_cli_fix_dry_run_reports_rewrites(tmp_path, monkeypatch, capsys):
    target = tmp_path / "module.py"
    target.write_text(REASONLESS, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["--fix", "--dry-run", "module.py", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "+# xailint: disable=XDB007 (reason: TODO)" in out
    assert "would remove 0 and rewrite 1 suppression comment(s)" in out
    assert target.read_text(encoding="utf-8") == REASONLESS


def test_cli_dry_run_without_fix_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--dry-run", "src"])
    assert excinfo.value.code == 2
