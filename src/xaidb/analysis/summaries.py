"""Bottom-up function summaries over the call-graph condensation.

The interprocedural rules (XDB014–XDB017) never re-analyse a callee at
every call site.  Instead, each function in the corpus gets one
:class:`FunctionSummary` — the caller-visible facts of its body:

- ``returns_view_of`` — parameters whose ndarray buffer the return
  value may alias (the cross-boundary form of XDB011's escape facts);
- ``mutates`` — parameters written in place (subscript stores,
  augmented assignment, ``out=``, or transitively through a callee —
  XDB003's write semantics, made transitive);
- ``rng_return_depth`` — when a generator built with no caller-derived
  seed escapes via the return value, how many call boundaries it has
  already crossed (``0`` = constructed here; capped at
  :data:`RNG_MAX_DEPTH`);
- ``return_shapes`` — the abstract shape/dtype values the function may
  return, in the :mod:`xaidb.analysis.shapes` domain, sanitised so
  function-local symbolic dims do not leak (empty = ⊤, nothing
  provable).

Summaries are computed bottom-up over the SCC condensation of the call
graph — callees before callers, with a small fixpoint iteration inside
each cycle — so every lookup a caller makes is already final.  An
unresolved call has no candidates and therefore no summary: consumers
fall back to ⊤ and stay silent, which keeps the whole tier free of
false positives by construction.

:class:`InterprocAnalysis` packages the graph, the summaries and a
content-hash cache: each SCC's summaries are stored in the shared
``.xailint_cache.json`` under a Merkle-style key covering the members'
file digests, their resolved call candidates, and the keys of every
callee SCC — so a warm ``--changed-only`` scan recomputes only the
SCCs reachable *from* the edited file and serves the rest from cache,
finding-for-finding identical to a cold scan.
"""

from __future__ import annotations

import ast
import hashlib
import time
from dataclasses import dataclass

from xaidb.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
    strongly_connected_components,
)
from xaidb.analysis.cfg import function_cfg
from xaidb.analysis.effects import SHARED, EffectVector, function_effects
from xaidb.analysis.dataflow import (
    VIEW_FUNCTIONS,
    VIEW_METHODS,
    State,
    ValueTaint,
    calls_dynamic_scope,
    function_params,
    item_exprs,
    replay,
    solve_forward,
)
from xaidb.analysis.intervals import (
    IntervalAnalysis,
    informative as num_informative,
    decode as num_decode,
    encode as num_encode,
    param_label as num_param_label,
    params_of as num_params_of,
    values_of as num_values_of,
)
from xaidb.analysis.raises import encode_raises, may_raise
from xaidb.analysis.registry import FileContext
from xaidb.analysis.shapes import (
    TOP,
    ShapeAnalysis,
    decode,
    encode,
    sanitize,
)
from xaidb.analysis.typestate import TypestateAnalysis

__all__ = [
    "FunctionSummary",
    "InterprocAnalysis",
    "InterAliasTaint",
    "InterSeedTaint",
    "SharedSourceTaint",
    "summarize_function",
    "map_arguments",
    "iter_mutations",
    "RNG_MAX_DEPTH",
    "PARAM",
    "RNG_PREFIX",
    "VIA_PREFIX",
]

#: Maximum call depth a literal-seeded generator is tracked across
#: (construction → sink crosses at most this many boundaries).
RNG_MAX_DEPTH = 3

#: Seed-taint label for caller-derived entropy (clean).
PARAM = "param"

#: Seed-taint label prefix: ``rng:0`` = built in this frame, ``rng:2``
#: = escaped two call boundaries ago.
RNG_PREFIX = "rng:"

#: Alias-taint label prefix marking "crossed a call boundary" — what
#: separates XDB017's findings from XDB011's.
VIA_PREFIX = "via::"

#: In-SCC fixpoint iteration bound (cycles converge in 2–3 rounds).
_MAX_SCC_ROUNDS = 5

#: Bound on exported return shapes; beyond it the summary says ⊤.
_MAX_RETURN_SHAPES = 4


@dataclass(frozen=True)
class FunctionSummary:
    """Caller-visible facts about one corpus function."""

    qualname: str
    params: tuple[str, ...]
    returns_view_of: tuple[str, ...] = ()
    mutates: tuple[str, ...] = ()
    rng_return_depth: int | None = None
    return_shapes: tuple[str, ...] = ()
    #: Abstract numeric return values (pass E) in the
    #: :mod:`xaidb.analysis.intervals` encoding — empty = ⊤, nothing
    #: provable about the returned range.
    return_ranges: tuple[str, ...] = ()
    #: Numeric obligations on parameters (pass E): each entry is
    #: ``"param|kind|line"`` with ``kind`` ∈ ``nonzero`` (flows to a
    #: denominator), ``positive`` (flows into ``log``) or
    #: ``nonnegative`` (flows into ``sqrt``) — checked at call sites by
    #: XDB023/XDB024.
    param_preconditions: tuple[str, ...] = ()
    #: Concurrency/determinism facts (pass D) — witnesses for the
    #: XDB018–XDB022 tier, ``None`` per field = effect absent.
    effects: EffectVector = EffectVector()
    #: May-raise facts (pass G): each entry is ``"Type@qualname:line"``
    #: — an exception type that may escape, with the throw-site
    #: witness.  ``raises_top`` is the conservative "and possibly
    #: anything else" bit; it defaults to ``True`` so the bottom
    #: summary claims nothing it cannot prove.
    raises_named: tuple[str, ...] = ()
    raises_top: bool = True
    #: Typestate facts (pass F) in the
    #: :mod:`xaidb.analysis.typestate` encodings: ``"param|proto"``
    #: pairs tracked to every exit, ``"param|proto|s_in|outs"``
    #: state-transition entries, and
    #: ``"param|proto|s_in|method|line|kind"`` conditional obligations.
    typestate_tracked: tuple[str, ...] = ()
    typestate_transitions: tuple[str, ...] = ()
    typestate_obligations: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "params": list(self.params),
            "returns_view_of": list(self.returns_view_of),
            "mutates": list(self.mutates),
            "rng_return_depth": self.rng_return_depth,
            "return_shapes": list(self.return_shapes),
            "return_ranges": list(self.return_ranges),
            "param_preconditions": list(self.param_preconditions),
            "effects": self.effects.to_dict(),
            "raises_named": list(self.raises_named),
            "raises_top": self.raises_top,
            "typestate_tracked": list(self.typestate_tracked),
            "typestate_transitions": list(self.typestate_transitions),
            "typestate_obligations": list(self.typestate_obligations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        depth = data["rng_return_depth"]
        if depth is not None and not isinstance(depth, int):
            raise ValueError("rng_return_depth must be int or None")
        raises_top = data["raises_top"]
        if not isinstance(raises_top, bool):
            raise ValueError("raises_top must be bool")
        return cls(
            qualname=str(data["qualname"]),
            params=tuple(str(p) for p in data["params"]),
            returns_view_of=tuple(
                str(p) for p in data["returns_view_of"]
            ),
            mutates=tuple(str(p) for p in data["mutates"]),
            rng_return_depth=depth,
            return_shapes=tuple(str(s) for s in data["return_shapes"]),
            return_ranges=tuple(str(s) for s in data["return_ranges"]),
            param_preconditions=tuple(
                str(s) for s in data["param_preconditions"]
            ),
            effects=EffectVector.from_dict(data["effects"]),
            raises_named=tuple(str(s) for s in data["raises_named"]),
            raises_top=raises_top,
            typestate_tracked=tuple(
                str(s) for s in data["typestate_tracked"]
            ),
            typestate_transitions=tuple(
                str(s) for s in data["typestate_transitions"]
            ),
            typestate_obligations=tuple(
                str(s) for s in data["typestate_obligations"]
            ),
        )


def _syntactic_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def map_arguments(
    site: CallSite, summary: FunctionSummary
) -> dict[str, ast.AST]:
    """Map the call's argument expressions onto the callee's parameter
    names (receiver → ``self`` for bound calls, constructor calls skip
    the implicit instance, ``*args`` stops positional mapping)."""
    call = site.call
    params = list(summary.params)
    mapping: dict[str, ast.AST] = {}
    offset = 0
    if params and params[0] in ("self", "cls"):
        if site.binds_receiver:
            if isinstance(call.func, ast.Attribute):
                mapping[params[0]] = call.func.value
            offset = 1
        elif summary.qualname.endswith(
            ".__init__"
        ) and _syntactic_name(call) != "__init__":
            offset = 1  # SomeClass(x): the instance is implicit
    positional = params[offset:]
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred) or index >= len(positional):
            break
        mapping[positional[index]] = arg
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in params:
            mapping[keyword.arg] = keyword.value
    return mapping


# ---------------------------------------------------------------------------
# taint problems with summary-aware call semantics
# ---------------------------------------------------------------------------


class InterAliasTaint(ValueTaint):
    """View-alias taint (labels are parameter names) whose call
    semantics consults callee summaries: a call to a helper that
    returns a view of parameter ``p`` aliases whatever the argument
    bound to ``p`` aliases — tagged with :data:`VIA_PREFIX` so
    consumers can tell boundary-crossing aliases from direct ones."""

    def __init__(
        self,
        graph: CallGraph,
        summaries: dict[str, FunctionSummary],
        entry: State | None = None,
    ) -> None:
        super().__init__(entry=entry)
        self.graph = graph
        self.summaries = summaries

    def eval_expr(
        self, expr: ast.AST | None, state: State
    ) -> frozenset[str]:
        # mirrors dataflow.view_sources, evaluated to labels so the
        # callee-summary case can plug in at Call nodes
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, (ast.Starred, ast.Subscript)):
            return self.eval_expr(expr.value, state)
        if isinstance(expr, ast.Attribute):
            if expr.attr in VIEW_METHODS:
                return self.eval_expr(expr.value, state)
            return frozenset()
        if isinstance(expr, (ast.Tuple, ast.List)):
            labels: frozenset[str] = frozenset()
            for element in expr.elts:
                labels |= self.eval_expr(element, state)
            return labels
        if isinstance(expr, ast.IfExp):
            return self.eval_expr(expr.body, state) | self.eval_expr(
                expr.orelse, state
            )
        if isinstance(expr, ast.NamedExpr):
            return self.eval_expr(expr.value, state)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, state)
        return frozenset()

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in VIEW_METHODS:
            return self.eval_expr(func.value, state)
        view_fn = (
            isinstance(func, ast.Attribute)
            and func.attr in VIEW_FUNCTIONS
        ) or (isinstance(func, ast.Name) and func.id in VIEW_FUNCTIONS)
        if view_fn and call.args:
            return self.eval_expr(call.args[0], state)
        return self._callee_view_labels(call, state)

    def _callee_view_labels(
        self, call: ast.Call, state: State
    ) -> frozenset[str]:
        site = self.graph.callsites.get(id(call))
        if site is None or not site.candidates:
            return frozenset()
        labels: set[str] = set()
        for qualname in site.candidates:
            summary = self.summaries.get(qualname)
            if summary is None:
                continue
            mapping = map_arguments(site, summary)
            for param in summary.returns_view_of:
                arg = mapping.get(param)
                if arg is None:
                    continue
                for label in self.eval_expr(arg, state):
                    labels.add(
                        label
                        if label.startswith(VIA_PREFIX)
                        else VIA_PREFIX + label
                    )
        return frozenset(labels)


def strip_via(label: str) -> str:
    """The underlying parameter name of an alias-taint label."""
    return label[len(VIA_PREFIX):] if label.startswith(VIA_PREFIX) else label


class SharedSourceTaint(InterAliasTaint):
    """Alias taint whose sources are the shared worker arena instead of
    parameters: ``resolve_shared(payload)`` and zero-argument
    ``.load()`` calls yield :data:`xaidb.analysis.effects.SHARED`, and
    the inherited view semantics then track which names alias that
    read-only buffer.  Lives here (not in effects.py) because the base
    class does — effects.py pulls it in lazily."""

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        func = call.func
        if (
            isinstance(func, (ast.Name, ast.Attribute))
            and _syntactic_name(call) == "resolve_shared"
            and call.args
        ):
            return frozenset({SHARED})
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "load"
            and not call.args
            and not call.keywords
        ):
            return frozenset({SHARED})
        return super().eval_call(call, state)


def _is_default_rng(func: ast.AST) -> bool:
    # mirrors rules/rng_origin (not imported: rule modules import us)
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return isinstance(func, ast.Attribute) and func.attr == "default_rng"


def _is_check_random_state(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "check_random_state"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "check_random_state"
    )


class InterSeedTaint(ValueTaint):
    """XDB010's seed taint, depth-aware: a call to a helper whose
    summary says a literal-seeded generator escapes at depth ``d``
    yields the label ``rng:d+1``; anything at depth ≥ 1 crossed a call
    boundary."""

    def __init__(
        self,
        graph: CallGraph,
        summaries: dict[str, FunctionSummary],
        entry: State | None = None,
    ) -> None:
        super().__init__(entry=entry)
        self.graph = graph
        self.summaries = summaries

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        if _is_check_random_state(call.func):
            return frozenset({PARAM})
        if _is_default_rng(call.func):
            arg_labels = super().eval_call(call, state)
            if PARAM in arg_labels:
                return frozenset({PARAM})
            return frozenset({f"{RNG_PREFIX}0"})
        labels = super().eval_call(call, state)
        site = self.graph.callsites.get(id(call))
        if site is not None:
            for qualname in site.candidates:
                summary = self.summaries.get(qualname)
                if (
                    summary is not None
                    and summary.rng_return_depth is not None
                    and summary.rng_return_depth < RNG_MAX_DEPTH
                ):
                    labels |= frozenset(
                        {f"{RNG_PREFIX}{summary.rng_return_depth + 1}"}
                    )
        return labels


def rng_depths(labels: frozenset[str]) -> list[int]:
    """Escape depths present in a seed-taint label set, ascending."""
    depths = []
    for label in labels:
        if label.startswith(RNG_PREFIX):
            try:
                depths.append(int(label[len(RNG_PREFIX):]))
            except ValueError:
                continue
    return sorted(depths)


# ---------------------------------------------------------------------------
# per-function summary computation
# ---------------------------------------------------------------------------


def iter_mutations(
    item: ast.AST,
    state: State,
    alias: InterAliasTaint,
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
):
    """Yield ``(labels, node, kind, detail)`` for every in-place write
    ``item`` may perform, in XDB003's write semantics made alias- and
    summary-aware.  ``labels`` are the alias-taint labels of the
    written buffer; ``kind`` is one of ``subscript``/``augassign``/
    ``out``/``callee`` (``detail`` = ``"callee_qualname:param"`` for
    the last)."""
    targets: list[ast.AST] = []
    if isinstance(item, ast.Assign):
        targets = list(item.targets)
    elif isinstance(item, ast.AnnAssign) and item.value is not None:
        targets = [item.target]
    elif isinstance(item, ast.AugAssign):
        targets = [item.target]
    for target in targets:
        elements = (
            target.elts
            if isinstance(target, (ast.Tuple, ast.List))
            else [target]
        )
        for element in elements:
            if isinstance(element, ast.Subscript):
                labels = alias.eval_expr(element.value, state)
                if labels:
                    yield labels, element, "subscript", ""
            elif isinstance(element, ast.Name) and isinstance(
                item, ast.AugAssign
            ):
                labels = state.get(element.id, frozenset())
                if labels:
                    yield labels, element, "augassign", ""
    for root in item_exprs(item):
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg == "out":
                    labels = alias.eval_expr(keyword.value, state)
                    if labels:
                        yield labels, node, "out", ""
            site = graph.callsites.get(id(node))
            if site is None or not site.candidates:
                continue
            for qualname in site.candidates:
                summary = summaries.get(qualname)
                if summary is None or not summary.mutates:
                    continue
                mapping = map_arguments(site, summary)
                for param in summary.mutates:
                    arg = mapping.get(param)
                    if arg is None:
                        continue
                    labels = alias.eval_expr(arg, state)
                    if labels:
                        yield (
                            labels,
                            node,
                            "callee",
                            f"{qualname}:{param}",
                        )


def summarize_function(
    fnode: FunctionNode,
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    timings: dict[str, float] | None = None,
) -> FunctionSummary:
    """Compute one function's summary given its callees' summaries.
    ``timings`` (when given) accumulates wall seconds per summary pass
    under the keys ``alias``/``seed``/``shape``/``effects``/
    ``interval``/``typestate``/``raises`` — surfaced by ``--stats`` as
    the per-pass breakdown."""
    fn = fnode.node
    params = tuple(function_params(fn))
    tracked = [p for p in params if p not in ("self", "cls")]
    bottom = FunctionSummary(qualname=fnode.qualname, params=params)
    if calls_dynamic_scope(fn):
        return bottom  # nothing provable: claim nothing
    cfg = function_cfg(fn)

    def _tick(label: str, started: float) -> None:
        if timings is not None:
            timings[label] = (
                timings.get(label, 0.0) + time.perf_counter() - started
            )

    # -- pass A: view aliases and in-place mutation ------------------
    pass_started = time.perf_counter()
    alias = InterAliasTaint(
        graph,
        summaries,
        entry={name: frozenset({name}) for name in tracked},
    )
    alias_in = solve_forward(cfg, alias)
    returns_view: set[str] = set()
    mutated: set[str] = set()

    def visit_alias(item: ast.AST, state: State) -> None:
        if isinstance(item, ast.Return) and item.value is not None:
            if not (
                isinstance(item.value, ast.Name)
                and item.value.id in ("self", "cls")
            ):
                for label in alias.eval_expr(item.value, state):
                    returns_view.add(strip_via(label))
        for labels, _node, _kind, _detail in iter_mutations(
            item, state, alias, graph, summaries
        ):
            mutated.update(strip_via(label) for label in labels)

    replay(cfg, alias, alias_in, visit_alias)
    _tick("alias", pass_started)

    # -- pass B: rng escape depth ------------------------------------
    pass_started = time.perf_counter()
    seed = InterSeedTaint(
        graph,
        summaries,
        entry={name: frozenset({PARAM}) for name in params},
    )
    seed_in = solve_forward(cfg, seed)
    escape_depths: list[int] = []

    def visit_seed(item: ast.AST, state: State) -> None:
        if isinstance(item, ast.Return) and item.value is not None:
            escape_depths.extend(
                rng_depths(seed.eval_expr(item.value, state))
            )

    replay(cfg, seed, seed_in, visit_seed)
    rng_depth = min(escape_depths) if escape_depths else None
    if rng_depth is not None and rng_depth >= RNG_MAX_DEPTH:
        rng_depth = None  # beyond the tracking horizon
    _tick("seed", pass_started)

    # -- pass C: abstract return shapes ------------------------------
    pass_started = time.perf_counter()
    shape = ShapeAnalysis(
        callee_returns=lambda call: _callee_return_shapes(
            graph, summaries, call
        )
    )
    shape_in = solve_forward(cfg, shape)
    return_values: set[str] = set()
    top_seen = False

    def visit_shape(item: ast.AST, state: State) -> None:
        nonlocal top_seen
        if isinstance(item, ast.Return) and item.value is not None:
            labels = shape.eval_expr(item.value, state)
            if labels & TOP or not labels:
                top_seen = True
            else:
                return_values.update(
                    encode(sanitize(decode(label))) for label in labels
                )

    replay(cfg, shape, shape_in, visit_shape)
    if top_seen or len(return_values) > _MAX_RETURN_SHAPES:
        return_shapes: tuple[str, ...] = ()
    else:
        return_shapes = tuple(sorted(return_values))
    _tick("shape", pass_started)

    # -- pass D: concurrency/determinism effect vector ---------------
    pass_started = time.perf_counter()
    effects = function_effects(fnode, graph, summaries, cfg=cfg)
    _tick("effects", pass_started)

    # -- pass E: numeric return ranges and param preconditions -------
    pass_started = time.perf_counter()
    interval = IntervalAnalysis(
        entry={
            name: frozenset({num_param_label(name)}) for name in tracked
        },
        callee_ranges=lambda call: _callee_return_ranges(
            graph, summaries, call
        ),
    )
    interval_in = interval.solve(cfg)
    range_values: set[str] = set()
    range_top = False
    preconditions: set[str] = set()

    def visit_interval(item: ast.AST, state: State) -> None:
        nonlocal range_top
        if isinstance(item, ast.Return) and item.value is not None:
            labels = interval.eval_expr(item.value, state)
            values = num_values_of(labels)
            if (
                num_params_of(labels)
                or not values
                or not all(num_informative(v) for v in values)
            ):
                range_top = True
            else:
                range_values.update(num_encode(v) for v in values)
        for name, kind, line in _numeric_obligations(
            interval, item, state
        ):
            if name in tracked:
                preconditions.add(f"{name}|{kind}|{line}")

    replay(cfg, interval, interval_in, visit_interval)
    if range_top or len(range_values) > _MAX_RETURN_SHAPES:
        return_ranges: tuple[str, ...] = ()
    else:
        return_ranges = tuple(sorted(range_values))
    _tick("interval", pass_started)

    # -- pass F: protocol typestate ----------------------------------
    pass_started = time.perf_counter()
    typestate = TypestateAnalysis(fnode, graph, summaries)
    typestate_in = solve_forward(cfg, typestate)
    typestate_facts = typestate.facts(cfg, typestate_in)
    _tick("typestate", pass_started)

    # -- pass G: may-raise set ---------------------------------------
    pass_started = time.perf_counter()
    raises_named, raises_top = encode_raises(
        *may_raise(fnode, graph, summaries)
    )
    _tick("raises", pass_started)

    return FunctionSummary(
        qualname=fnode.qualname,
        params=params,
        returns_view_of=tuple(sorted(returns_view & set(tracked))),
        mutates=tuple(sorted(mutated & set(tracked))),
        rng_return_depth=rng_depth,
        return_shapes=return_shapes,
        return_ranges=return_ranges,
        param_preconditions=tuple(sorted(preconditions)),
        effects=effects,
        raises_named=raises_named,
        raises_top=raises_top,
        typestate_tracked=typestate_facts.tracked,
        typestate_transitions=typestate_facts.transitions,
        typestate_obligations=typestate_facts.obligations,
    )


#: log-family / sqrt entry points whose argument a precondition covers.
_DOMAIN_OBLIGATIONS = {
    "log": "positive",
    "log2": "positive",
    "log10": "positive",
    "sqrt": "nonnegative",
}


def _numeric_obligations(
    interval: IntervalAnalysis, item: ast.AST, state: State
):
    """Yield ``(param_name, kind, line)`` for every *unguarded*
    parameter that flows into a partial numeric operation in ``item``:
    a denominator (``nonzero``), a ``log`` argument (``positive``) or a
    ``sqrt`` argument (``nonnegative``).  Parameters the function
    already guards (``if x > 0:`` …) carry refined labels instead and
    are checked in-function, not exported."""
    for root in item_exprs(item):
        for node in ast.walk(root):
            operand: ast.AST | None = None
            kind = ""
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv, ast.Mod)
            ):
                operand, kind = node.right, "nonzero"
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                kind = _DOMAIN_OBLIGATIONS.get(node.func.attr, "")
                if kind and node.args:
                    operand = node.args[0]
            if operand is None or not kind:
                continue
            labels = interval.eval_expr(operand, state)
            for name in sorted(num_params_of(labels)):
                yield name, kind, getattr(node, "lineno", 0)


def _callee_return_ranges(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    call: ast.Call,
):
    """The numeric hook: ``None`` for unresolved calls (the numpy
    transfer functions take over), the union of candidate return
    ranges for resolved ones (empty = resolved-but-unknown = ⊤)."""
    site = graph.callsites.get(id(call))
    if site is None or not site.candidates:
        return None
    values = []
    for qualname in site.candidates:
        summary = summaries.get(qualname)
        if summary is None or not summary.return_ranges:
            return []  # ⊤ — never let numpy guesses shadow a callee
        values.extend(
            num_decode(label) for label in summary.return_ranges
        )
    return values


def _callee_return_shapes(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    call: ast.Call,
):
    """The shape hook: ``None`` for unresolved calls (numpy transfer
    functions take over), the union of candidate return shapes for
    resolved ones (empty = resolved-but-unknown = ⊤)."""
    site = graph.callsites.get(id(call))
    if site is None or not site.candidates:
        return None
    values = []
    for qualname in site.candidates:
        summary = summaries.get(qualname)
        if summary is None or not summary.return_shapes:
            return []  # ⊤ — never let numpy guesses shadow a callee
        values.extend(decode(label) for label in summary.return_shapes)
    return values


# ---------------------------------------------------------------------------
# project-level driver with the SCC summary cache
# ---------------------------------------------------------------------------


class InterprocAnalysis:
    """Call graph + condensation + summaries for one parsed corpus.

    Built lazily (once per scan) by
    :meth:`xaidb.analysis.registry.ProjectContext.interproc`; the four
    interprocedural rules share one instance.  ``cache`` is the shared
    :class:`~xaidb.analysis.cache.LintCache`; ``file_digests`` maps
    relpaths to content hashes and feeds the per-SCC Merkle keys.
    """

    def __init__(
        self,
        files: list[FileContext],
        file_digests: dict[str, str] | None = None,
        cache=None,
    ) -> None:
        self.graph = build_call_graph(files)
        self.sccs = strongly_connected_components(self.graph)
        self.summaries: dict[str, FunctionSummary] = {}
        self.hits = 0
        self.misses = 0
        #: Wall seconds per summary pass (alias/seed/shape/effects/
        #: interval/typestate/raises) across every recomputed SCC —
        #: ``--stats`` fodder.
        self.pass_seconds: dict[str, float] = {}
        #: Every SCC cache key used this run (for cache pruning).
        self.used_keys: set[str] = set()
        self._sites_by_caller: dict[str, list[CallSite]] = {}
        for site in self.graph.callsites.values():
            self._sites_by_caller.setdefault(site.caller, []).append(site)
        for sites in self._sites_by_caller.values():
            sites.sort(key=lambda s: (s.call.lineno, s.call.col_offset))
        self._solutions: dict[tuple[str, str], tuple] = {}
        self._compute(file_digests or {}, cache)

    def solution(self, kind: str, qualname: str):
        """Solved ``(cfg, problem, in_states)`` for ``qualname`` under
        one of the rule-facing problems — ``"shape"``
        (:class:`~xaidb.analysis.shapes.ShapeAnalysis`), ``"alias"``
        (:class:`InterAliasTaint`, parameters seeded with their own
        names), ``"seed"`` (:class:`InterSeedTaint`, parameters seeded
        :data:`PARAM`) or ``"interval"``
        (:class:`~xaidb.analysis.intervals.IntervalAnalysis`,
        parameters seeded with opaque range labels, solved with
        widening and branch refinement) or ``"typestate"``
        (:class:`~xaidb.analysis.typestate.TypestateAnalysis`,
        protocol DFAs per abstract object) — memoised so the
        interprocedural rules never re-run a fixpoint the scan already
        paid for."""
        memo_key = (kind, qualname)
        if memo_key not in self._solutions:
            fnode = self.graph.functions[qualname]
            params = function_params(fnode.node)
            tracked = [p for p in params if p not in ("self", "cls")]
            if kind == "shape":
                problem: ValueTaint = ShapeAnalysis(
                    callee_returns=lambda call: _callee_return_shapes(
                        self.graph, self.summaries, call
                    )
                )
            elif kind == "alias":
                problem = InterAliasTaint(
                    self.graph,
                    self.summaries,
                    entry={name: frozenset({name}) for name in tracked},
                )
            elif kind == "seed":
                problem = InterSeedTaint(
                    self.graph,
                    self.summaries,
                    entry={name: frozenset({PARAM}) for name in params},
                )
            elif kind == "interval":
                problem = IntervalAnalysis(
                    entry={
                        name: frozenset({num_param_label(name)})
                        for name in tracked
                    },
                    callee_ranges=lambda call: _callee_return_ranges(
                        self.graph, self.summaries, call
                    ),
                )
            elif kind == "typestate":
                problem = TypestateAnalysis(
                    fnode, self.graph, self.summaries
                )
            else:
                raise ValueError(f"unknown solution kind: {kind!r}")
            cfg = function_cfg(fnode.node)
            if kind == "interval":
                solved = problem.solve(cfg)  # widened + refined
            else:
                solved = solve_forward(cfg, problem)
            self._solutions[memo_key] = (cfg, problem, solved)
        return self._solutions[memo_key]

    def summaries_for_call(
        self, call: ast.Call
    ) -> list[FunctionSummary]:
        """Final summaries of every candidate callee (empty = ⊤)."""
        return [
            self.summaries[qualname]
            for qualname in self.graph.resolve_call(call)
            if qualname in self.summaries
        ]

    # -- bottom-up computation ---------------------------------------

    def _compute(self, file_digests: dict[str, str], cache) -> None:
        key_of: dict[str, str] = {}
        for scc in self.sccs:
            key = self._scc_key(scc, file_digests, key_of)
            for qualname in scc:
                key_of[qualname] = key
            self.used_keys.add(key)
            if cache is not None and self._adopt_cached(cache, key, scc):
                self.hits += 1
                continue
            self.misses += 1
            self._solve_scc(scc)
            if cache is not None:
                cache.store_summaries(
                    key,
                    [self.summaries[q].to_dict() for q in sorted(scc)],
                )

    def _scc_key(
        self,
        scc: list[str],
        file_digests: dict[str, str],
        key_of: dict[str, str],
    ) -> str:
        """Merkle key: member sources + resolved candidates + callee
        SCC keys.  Candidates are part of the key because resolution
        depends on the *whole* corpus (a new subclass override in an
        unrelated file changes dispatch here)."""
        members = set(scc)
        hasher = hashlib.sha256()
        for qualname in sorted(scc):
            fnode = self.graph.functions[qualname]
            hasher.update(qualname.encode())
            hasher.update(
                file_digests.get(fnode.ctx.relpath, "").encode()
            )
            for site in self._sites_by_caller.get(qualname, ()):
                hasher.update(
                    f"{site.binds_receiver}|"
                    f"{','.join(site.candidates)};".encode()
                )
                for candidate in site.candidates:
                    if candidate not in members:
                        hasher.update(
                            key_of.get(candidate, "").encode()
                        )
        return hasher.hexdigest()

    def _adopt_cached(self, cache, key: str, scc: list[str]) -> bool:
        cached = cache.lookup_summaries(key)
        if cached is None:
            return False
        try:
            loaded = [FunctionSummary.from_dict(d) for d in cached]
        except (KeyError, TypeError, ValueError):
            return False
        if {s.qualname for s in loaded} != set(scc):
            return False
        for summary in loaded:
            self.summaries[summary.qualname] = summary
        return True

    def _solve_scc(self, scc: list[str]) -> None:
        for qualname in scc:
            fnode = self.graph.functions[qualname]
            self.summaries[qualname] = FunctionSummary(
                qualname=qualname,
                params=tuple(function_params(fnode.node)),
            )
        single = len(scc) == 1 and scc[0] not in self.graph.edges.get(
            scc[0], set()
        )
        rounds = 1 if single else _MAX_SCC_ROUNDS
        for _ in range(rounds):
            changed = False
            for qualname in scc:
                updated = summarize_function(
                    self.graph.functions[qualname],
                    self.graph,
                    self.summaries,
                    timings=self.pass_seconds,
                )
                if updated != self.summaries[qualname]:
                    self.summaries[qualname] = updated
                    changed = True
            if not changed:
                break
