"""Clean fixture for XDB019: pooled tasks derive every draw from the
per-task seed in their payload — bit-identical for any n_jobs."""

import numpy as np

from xaidb.runtime import parallel_map

__all__ = ["sample_rows"]


def _seeded_task(task):
    seed, scale = task
    rng = np.random.default_rng(seed)  # local generator from the payload
    return rng.normal(scale=scale)


def sample_rows(seeds, scale):
    return parallel_map(_seeded_task, [(s, scale) for s in seeds])
