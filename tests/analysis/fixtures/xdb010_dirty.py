"""Dirty fixture for XDB010: locally-built generators reach sinks."""

import numpy as np

__all__ = ["direct", "through_chain"]


def direct(n):
    rng = np.random.default_rng(42)  # literal seed: caller can't control it
    return rng.normal(size=n)  # finding 1


def through_chain(n):
    source = np.random.default_rng()
    alias, other = source, n  # taint survives tuple unpacking
    gen = alias
    gen2 = gen
    return gen2.choice(other)  # finding 2
