import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.utils.validation import (
    check_array,
    check_fitted,
    check_in_range,
    check_matching_lengths,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_coerces_lists(self):
        out = check_array([[1, 2], [3, 4]], name="m", ndim=2)
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1, 2, 3], name="m", ndim=2)

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError, match="empty"):
            check_array([], name="m", ndim=1)

    def test_allows_empty_when_requested(self):
        out = check_array([], name="m", ndim=1, allow_empty=True)
        assert out.size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([1.0, np.nan], name="m", ndim=1)

    def test_allows_nan_when_finite_not_required(self):
        out = check_array([1.0, np.nan], name="m", ndim=1, ensure_finite=False)
        assert np.isnan(out[1])

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="not convertible"):
            check_array([object()], name="m", dtype=float)

    def test_error_message_uses_name(self):
        with pytest.raises(ValidationError, match="weights"):
            check_array([[1]], name="weights", ndim=1)


class TestCheckMatchingLengths:
    def test_passes_on_equal(self):
        check_matching_lengths(("a", [1, 2]), ("b", [3, 4]))

    def test_raises_with_both_names(self):
        with pytest.raises(ValidationError, match="b has length 3 but a"):
            check_matching_lengths(("a", [1, 2]), ("b", [1, 2, 3]))

    def test_empty_args_is_noop(self):
        check_matching_lengths()


class TestScalarChecks:
    def test_positive_strict(self):
        assert check_positive(1.5, name="x") == 1.5
        with pytest.raises(ValidationError):
            check_positive(0.0, name="x")

    def test_positive_nonstrict_allows_zero(self):
        assert check_positive(0.0, name="x", strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, name="x", strict=False)

    def test_in_range_inclusive(self):
        assert check_in_range(0.0, name="x", low=0.0, high=1.0) == 0.0

    def test_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, name="x", low=0.0, high=1.0, inclusive=False)

    def test_probability(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, name="p")


class TestCheckFitted:
    def test_raises_when_missing(self):
        class Model:
            coef_ = None

        with pytest.raises(NotFittedError, match="coef_"):
            check_fitted(Model(), ["coef_"])

    def test_passes_when_set(self):
        class Model:
            coef_ = np.ones(2)

        check_fitted(Model(), ["coef_"])
