"""Random forests: bagged CART trees with per-split feature subsampling.

Prediction runs on a stacked :class:`~xaidb.models.tree_kernels.
EnsembleKernel`: all trees are packed into padded ``(n_trees,
max_nodes)`` tensors once per fit, so one level-synchronous traversal
serves the whole forest and the per-tree class-code realignment is a
precomputed index map instead of a Python loop per call.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Classifier, Regressor
from xaidb.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from xaidb.models.tree_kernels import EnsembleKernel
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _ForestMixin:
    """Shared bagging machinery."""

    def _init_params(
        self,
        n_estimators,
        max_depth,
        min_samples_leaf,
        max_features,
        bootstrap,
        random_state,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list | None = None
        self._ensemble_kernel: EnsembleKernel | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return max(1, int(np.sqrt(n_features)))
        return min(self.max_features, n_features)

    def _fit_forest(self, X: np.ndarray, y: np.ndarray, tree_factory) -> None:
        rng = check_random_state(self.random_state)
        seeds = spawn_seeds(rng, self.n_estimators)
        n = len(y)
        self.estimators_ = []
        self._ensemble_kernel = None  # rebuilt lazily at first predict
        for seed in seeds:
            tree_rng = check_random_state(seed)
            if self.bootstrap:
                rows = tree_rng.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree = tree_factory(seed)
            tree.fit(X[rows], y[rows])
            self.estimators_.append(tree)


class RandomForestClassifier(_ForestMixin, Classifier):
    """Bagged CART classifier; ``predict_proba`` averages tree leaf
    distributions (soft voting)."""

    def __init__(
        self,
        *,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        bootstrap: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            n_estimators,
            max_depth,
            min_samples_leaf,
            max_features,
            bootstrap,
            random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = self._validate_fit_args(X, y)
        y_index = self._encode_labels(y)
        max_features = self._resolve_max_features(X.shape[1])

        def factory(seed: int) -> DecisionTreeClassifier:
            return DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=seed,
            )

        self._fit_forest(X, y_index.astype(float), factory)
        # each tree re-encodes labels internally; they all see 0..k-1 codes
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["estimators_"])
        X = check_array(X, name="X", ndim=2)
        if self._ensemble_kernel is None:
            # bootstrap samples can miss classes; the kernel realigns by
            # each tree's fitted codes at pack time, once
            self._ensemble_kernel = EnsembleKernel.for_forest_classifier(
                self.estimators_, len(self.classes_)
            )
        total = np.zeros((X.shape[0], len(self.classes_)))
        self._ensemble_kernel.accumulate(X, total)
        # xailint: disable=XDB023 (a fitted forest holds at least one estimator)
        return total / len(self.estimators_)


class RandomForestRegressor(_ForestMixin, Regressor):
    """Bagged CART regressor; ``predict`` averages tree outputs."""

    def __init__(
        self,
        *,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        bootstrap: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            n_estimators,
            max_depth,
            min_samples_leaf,
            max_features,
            bootstrap,
            random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = self._validate_fit_args(X, y)
        max_features = self._resolve_max_features(X.shape[1])

        def factory(seed: int) -> DecisionTreeRegressor:
            return DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=seed,
            )

        self._fit_forest(X, y, factory)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["estimators_"])
        X = check_array(X, name="X", ndim=2)
        if self._ensemble_kernel is None:
            self._ensemble_kernel = EnsembleKernel.for_regressors(
                [tree.tree_ for tree in self.estimators_]
            )
        predictions = np.zeros(X.shape[0])
        self._ensemble_kernel.accumulate(X, predictions)
        # xailint: disable=XDB023 (a fitted forest holds at least one estimator)
        return predictions / len(self.estimators_)
