"""XDB008 — every concrete explainer implements the base interface.

X-SYS argues explanation systems need architectural conformance
checking, not module-by-module discipline.  This is xaidb's version:
every public class named ``*Explainer`` inside ``xaidb.explainers``
must (transitively) subclass :class:`xaidb.explainers.base.Explainer`
and implement its abstract surface (currently ``explain``), so that
pipelines, benchmarks and the registry can treat explanation methods
uniformly.

Unlike the per-file rules this is a *project* rule: it resolves base
classes across modules (through absolute and relative imports) and
walks the static inheritance chain.  When the corpus does not contain
``xaidb.explainers.base`` (e.g. a fixture snippet is linted on its
own), any class literally named ``Explainer`` that declares
``abstractmethod`` members is treated as the interface, which keeps the
rule testable in isolation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import (
    FileContext,
    ProjectContext,
    ProjectRule,
    register,
)

__all__ = ["ExplainerInterfaceRule"]

_INTERFACE_MODULE = "xaidb.explainers.base"
_INTERFACE_NAME = "Explainer"
_PACKAGE_PREFIX = "xaidb.explainers"


def _decorator_is_abstract(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "abstractmethod"
    if isinstance(node, ast.Attribute):
        return node.attr == "abstractmethod"
    return False


def _abstract_methods(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_decorator_is_abstract(d) for d in item.decorator_list):
                names.add(item.name)
    return names


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        item.name
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _Corpus:
    """Classes and import aliases of the explainers subtree."""

    def __init__(self, files: list[FileContext]) -> None:
        #: fq class name -> (ClassDef, defining FileContext)
        self.classes: dict[str, tuple[ast.ClassDef, FileContext]] = {}
        #: module name -> {local name -> fq target name}
        self.imports: dict[str, dict[str, str]] = {}
        for ctx in files:
            module = ctx.module_name
            alias_map: dict[str, str] = {}
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    self.classes[f"{module}.{node.name}"] = (node, ctx)
                elif isinstance(node, ast.ImportFrom):
                    base_module = self._resolve_from(module, node)
                    if base_module is None:
                        continue
                    for alias in node.names:
                        local = alias.asname or alias.name
                        alias_map[local] = f"{base_module}.{alias.name}"
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        alias_map.setdefault(local, alias.name)
            self.imports[module] = alias_map

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # Relative import: strip the module's own name, then one extra
        # package level per dot beyond the first.
        package_parts = module.split(".")[:-1]
        up = node.level - 1
        if up > len(package_parts):
            return None
        base_parts = package_parts[: len(package_parts) - up]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def resolve_base(
        self, ctx: FileContext, base: ast.expr
    ) -> str | None:
        """Fully-qualified class name a base expression refers to."""
        if isinstance(base, ast.Name):
            local = f"{ctx.module_name}.{base.id}"
            if local in self.classes:
                return local
            target = self.imports.get(ctx.module_name, {}).get(base.id)
            if target is not None and target in self.classes:
                return target
            return None
        if isinstance(base, ast.Attribute):
            # `base.Explainer` style access through a module alias.
            if isinstance(base.value, ast.Name):
                prefix = self.imports.get(ctx.module_name, {}).get(
                    base.value.id, base.value.id
                )
                candidate = f"{prefix}.{base.attr}"
                if candidate in self.classes:
                    return candidate
            return None
        return None

    def inheritance_chain(self, fq_name: str) -> list[str]:
        """All fq class names statically reachable from ``fq_name``."""
        chain: list[str] = []
        stack = [fq_name]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            chain.append(current)
            cls, ctx = self.classes[current]
            for base in cls.bases:
                resolved = self.resolve_base(ctx, base)
                if resolved is not None:
                    stack.append(resolved)
        return chain


@register
class ExplainerInterfaceRule(ProjectRule):
    rule_id = "XDB008"
    symbol = "explainer-interface"
    description = (
        "A concrete *Explainer class in xaidb.explainers does not "
        "subclass the base Explainer interface or misses one of its "
        "abstract methods."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        files = project.modules_under(_PACKAGE_PREFIX)
        if not files:
            return
        corpus = _Corpus(files)

        interface_fq = f"{_INTERFACE_MODULE}.{_INTERFACE_NAME}"
        if interface_fq not in corpus.classes:
            fallbacks = [
                fq
                for fq, (cls, _) in corpus.classes.items()
                if cls.name == _INTERFACE_NAME and _abstract_methods(cls)
            ]
            if len(fallbacks) != 1:
                return  # no interface in scope — nothing to enforce
            interface_fq = fallbacks[0]
        interface_cls, _ = corpus.classes[interface_fq]
        abstract = _abstract_methods(interface_cls)

        for fq_name, (cls, ctx) in sorted(corpus.classes.items()):
            if fq_name == interface_fq:
                continue
            if not cls.name.endswith("Explainer"):
                continue
            if cls.name.startswith("_"):
                continue
            if _abstract_methods(cls):
                continue  # abstract intermediates are not concrete
            chain = corpus.inheritance_chain(fq_name)
            if interface_fq not in chain:
                yield ctx.finding(
                    self,
                    cls,
                    f"concrete explainer {cls.name!r} does not subclass "
                    f"the Explainer interface "
                    f"({interface_fq})",
                )
                continue
            implemented: set[str] = set()
            for ancestor in chain:
                if ancestor == interface_fq:
                    continue
                ancestor_cls, _ = corpus.classes[ancestor]
                implemented |= _method_names(ancestor_cls)
            for missing in sorted(abstract - implemented):
                yield ctx.finding(
                    self,
                    cls,
                    f"concrete explainer {cls.name!r} does not implement "
                    f"abstract method {missing!r} of the Explainer "
                    f"interface",
                )
