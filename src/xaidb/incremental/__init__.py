"""Incremental model maintenance for data deletion (tutorial §3):
PrIU-style provenance-based incremental updates for linear/logistic
models, and HedgeCut-style low-latency unlearning for randomised trees."""

from xaidb.incremental.priu import (
    IncrementalLinearRegression,
    IncrementalLogisticRegression,
)
from xaidb.incremental.unlearning import UnlearnableExtraTrees

__all__ = [
    "IncrementalLinearRegression",
    "IncrementalLogisticRegression",
    "UnlearnableExtraTrees",
]
