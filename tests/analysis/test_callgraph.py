"""Call-graph construction edge cases: recursion SCCs, subclass
dispatch, import aliasing, and the unresolved-call ⊤ contract."""

from __future__ import annotations

import ast
from pathlib import Path

from xaidb.analysis.callgraph import (
    build_call_graph,
    dotted_name,
    strongly_connected_components,
)
from xaidb.analysis.registry import FileContext


def _ctx(module: str, source: str) -> FileContext:
    relpath = "src/" + module.replace(".", "/") + ".py"
    return FileContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=ast.parse(source),
        in_xaidb_package=module.split(".", 1)[0] == "xaidb",
        module_name=module,
    )


def _graph(modules: dict[str, str]):
    return build_call_graph(
        [_ctx(name, source) for name, source in modules.items()]
    )


def _calls_in(graph, qualname: str) -> list[ast.Call]:
    fn = graph.functions[qualname].node
    return sorted(
        (n for n in ast.walk(fn) if isinstance(n, ast.Call)),
        key=lambda c: (c.lineno, c.col_offset),
    )


def test_same_module_direct_call_edge():
    graph = _graph(
        {
            "xaidb.mod": (
                "def helper(x):\n"
                "    return x\n"
                "\n"
                "def caller(x):\n"
                "    return helper(x)\n"
            )
        }
    )
    assert graph.edges["xaidb.mod.caller"] == {"xaidb.mod.helper"}
    (call,) = _calls_in(graph, "xaidb.mod.caller")
    assert graph.resolve_call(call) == ("xaidb.mod.helper",)
    assert not graph.callsites[id(call)].binds_receiver


def test_mutual_recursion_is_one_scc_emitted_before_its_callers():
    graph = _graph(
        {
            "xaidb.rec": (
                "def even(n):\n"
                "    return True if n == 0 else odd(n - 1)\n"
                "\n"
                "def odd(n):\n"
                "    return False if n == 0 else even(n - 1)\n"
                "\n"
                "def driver(n):\n"
                "    return even(n)\n"
            )
        }
    )
    sccs = strongly_connected_components(graph)
    cycle = next(scc for scc in sccs if len(scc) > 1)
    assert cycle == ["xaidb.rec.even", "xaidb.rec.odd"]
    # callees before callers: the cycle must precede the driver's SCC
    assert sccs.index(cycle) < sccs.index(["xaidb.rec.driver"])


def test_self_dispatch_includes_transitive_subclass_overrides():
    graph = _graph(
        {
            "xaidb.base": (
                "class Base:\n"
                "    def run(self, x):\n"
                "        return self._impl(x)\n"
                "\n"
                "    def _impl(self, x):\n"
                "        return x\n"
            ),
            "xaidb.sub": (
                "from xaidb.base import Base\n"
                "\n"
                "class Child(Base):\n"
                "    def _impl(self, x):\n"
                "        return x + 1\n"
            ),
        }
    )
    (call,) = _calls_in(graph, "xaidb.base.Base.run")
    site = graph.callsites[id(call)]
    # self may be any subtype: both bodies are candidates
    assert set(site.candidates) == {
        "xaidb.base.Base._impl",
        "xaidb.sub.Child._impl",
    }
    assert site.binds_receiver


def test_inherited_method_resolves_to_nearest_base_definition():
    graph = _graph(
        {
            "xaidb.base": (
                "class Base:\n"
                "    def run(self, x):\n"
                "        return x\n"
            ),
            "xaidb.sub": (
                "from xaidb.base import Base\n"
                "\n"
                "class Child(Base):\n"
                "    pass\n"
            ),
        }
    )
    assert graph.method_resolution("xaidb.sub.Child", "run") == [
        "xaidb.base.Base.run"
    ]


def test_aliased_from_import_resolves_cross_module():
    graph = _graph(
        {
            "xaidb.helpers": "def norm(x):\n    return x\n",
            "xaidb.user": (
                "from xaidb.helpers import norm as n\n"
                "\n"
                "def caller(x):\n"
                "    return n(x)\n"
            ),
        }
    )
    assert graph.edges["xaidb.user.caller"] == {"xaidb.helpers.norm"}


def test_aliased_module_import_resolves_qualified_call():
    graph = _graph(
        {
            "xaidb.helpers": "def norm(x):\n    return x\n",
            "xaidb.user": (
                "import xaidb.helpers as h\n"
                "\n"
                "def caller(x):\n"
                "    return h.norm(x)\n"
            ),
        }
    )
    assert graph.edges["xaidb.user.caller"] == {"xaidb.helpers.norm"}


def test_relative_import_resolves_against_the_package():
    graph = _graph(
        {
            "xaidb.pkg.helpers": "def norm(x):\n    return x\n",
            "xaidb.pkg.user": (
                "from .helpers import norm\n"
                "\n"
                "def caller(x):\n"
                "    return norm(x)\n"
            ),
        }
    )
    assert graph.edges["xaidb.pkg.user.caller"] == {
        "xaidb.pkg.helpers.norm"
    }


def test_constructor_call_resolves_to_init():
    graph = _graph(
        {
            "xaidb.w": (
                "class Widget:\n"
                "    def __init__(self, x):\n"
                "        self.x = x\n"
                "\n"
                "def make(x):\n"
                "    return Widget(x)\n"
            )
        }
    )
    assert graph.edges["xaidb.w.make"] == {"xaidb.w.Widget.__init__"}


def test_unresolvable_dynamic_calls_have_no_candidates():
    graph = _graph(
        {
            "xaidb.dyn": (
                "def caller(fns, x):\n"
                "    fn = fns[0]\n"
                "    y = fn(x)\n"
                '    z = getattr(x, "transform")(y)\n'
                "    return (lambda v: v)(z)\n"
            )
        }
    )
    calls = _calls_in(graph, "xaidb.dyn.caller")
    assert calls  # the walk found the dynamic call expressions
    for call in calls:
        # ⊤: no candidates, so summary consumers claim nothing
        assert graph.resolve_call(call) == ()
    assert graph.edges["xaidb.dyn.caller"] == set()


def test_functions_of_lists_a_files_functions_in_source_order():
    ctx = _ctx(
        "xaidb.order",
        "def b():\n    return 1\n\ndef a():\n    return 2\n",
    )
    graph = build_call_graph([ctx])
    assert [f.qualname for f in graph.functions_of(ctx)] == [
        "xaidb.order.b",
        "xaidb.order.a",
    ]


def test_dotted_name_handles_chains_and_rejects_interruptions():
    assert dotted_name(ast.parse("a.b.c", mode="eval").body) == "a.b.c"
    assert dotted_name(ast.parse("f().g", mode="eval").body) is None
