import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import FeatureAttribution, as_predict_fn, predict_positive_proba


class TestFeatureAttribution:
    def test_as_dict(self):
        att = FeatureAttribution(["a", "b"], np.asarray([1.0, -2.0]))
        assert att.as_dict() == {"a": 1.0, "b": -2.0}

    def test_ranked_by_absolute_value(self):
        att = FeatureAttribution(["a", "b", "c"], np.asarray([1.0, -3.0, 2.0]))
        assert [name for name, __ in att.ranked()] == ["b", "c", "a"]

    def test_top_k(self):
        att = FeatureAttribution(["a", "b", "c"], np.asarray([1.0, -3.0, 2.0]))
        assert att.top(1) == [("b", -3.0)]
        with pytest.raises(ValidationError):
            att.top(0)

    def test_additive_check(self):
        att = FeatureAttribution(
            ["a", "b"], np.asarray([0.2, 0.3]), base_value=0.5, prediction=1.0
        )
        assert att.additive_check()
        att_bad = FeatureAttribution(
            ["a", "b"], np.asarray([0.2, 0.3]), base_value=0.5, prediction=2.0
        )
        assert not att_bad.additive_check()

    def test_additive_check_requires_prediction(self):
        att = FeatureAttribution(["a"], np.asarray([1.0]))
        with pytest.raises(ValidationError):
            att.additive_check()

    def test_name_value_length_mismatch(self):
        with pytest.raises(ValidationError):
            FeatureAttribution(["a"], np.asarray([1.0, 2.0]))

    def test_stable_ranking_on_ties(self):
        att = FeatureAttribution(["a", "b"], np.asarray([1.0, 1.0]))
        assert [name for name, __ in att.ranked()] == ["a", "b"]


class TestPredictFnAdapters:
    def test_probability_adapter(self, income_logistic, income):
        f = as_predict_fn(income_logistic, output="probability", class_index=1)
        out = f(income.dataset.X[:5])
        assert out.shape == (5,)
        assert np.all((out >= 0) & (out <= 1))

    def test_class_index_zero(self, income_logistic, income):
        f0 = as_predict_fn(income_logistic, output="probability", class_index=0)
        f1 = as_predict_fn(income_logistic, output="probability", class_index=1)
        X = income.dataset.X[:5]
        assert np.allclose(f0(X) + f1(X), 1.0)

    def test_margin_adapter(self, income_logistic, income):
        f = as_predict_fn(income_logistic, output="margin")
        out = f(income.dataset.X[:5])
        assert out.shape == (5,)

    def test_value_adapter(self, income_logistic, income):
        f = as_predict_fn(income_logistic, output="value")
        assert set(np.unique(f(income.dataset.X[:20]))) <= {0.0, 1.0}

    def test_missing_method_raises(self):
        class Bare:
            def predict(self, X):
                return np.zeros(len(X))

        with pytest.raises(ValidationError):
            as_predict_fn(Bare(), output="probability")
        with pytest.raises(ValidationError):
            as_predict_fn(Bare(), output="margin")

    def test_unknown_output(self, income_logistic):
        with pytest.raises(ValidationError):
            as_predict_fn(income_logistic, output="logits")

    def test_positive_proba_shorthand(self, income_logistic, income):
        f = predict_positive_proba(income_logistic)
        g = as_predict_fn(income_logistic, output="probability", class_index=1)
        X = income.dataset.X[:3]
        assert np.allclose(f(X), g(X))
