"""The built-in xailint rule pack (XDB001–XDB032).

Importing this package registers every rule with
:mod:`xaidb.analysis.registry`; the ids are stable and documented in
``docs/LINTING.md``.  XDB010–XDB013 are the flow-sensitive tier built
on :mod:`xaidb.analysis.cfg` / :mod:`xaidb.analysis.dataflow`;
XDB014–XDB017 are the interprocedural tier built on
:mod:`xaidb.analysis.callgraph` / :mod:`xaidb.analysis.summaries` /
:mod:`xaidb.analysis.shapes`; XDB018–XDB022 are the concurrency &
determinism tier built on the effect vectors of
:mod:`xaidb.analysis.effects`; XDB023–XDB027 are the numeric-safety
tier built on the value-range abstract interpretation of
:mod:`xaidb.analysis.intervals`; XDB028–XDB032 are the typestate &
exception-flow tier built on the protocol DFAs of
:mod:`xaidb.analysis.typestate` and the may-raise summaries of
:mod:`xaidb.analysis.raises`.
"""

from xaidb.analysis.rules.api_surface import MissingAllRule
from xaidb.analysis.rules.concurrency import (
    BlockingCallInAsyncRule,
    LeakedSharedResourceRule,
    NondeterministicWorkerTaskRule,
    SharedArrayMutationRule,
    UnpicklableTaskCaptureRule,
)
from xaidb.analysis.rules.dead_store import DeadStoreRule
from xaidb.analysis.rules.defaults import MutableDefaultRule
from xaidb.analysis.rules.error_handling import BroadExceptRule
from xaidb.analysis.rules.float_compare import FloatEqualityRule
from xaidb.analysis.rules.imports_rule import BannedImportsRule
from xaidb.analysis.rules.interproc import (
    DtypeDegradationRule,
    MutationThroughCalleeRule,
    RngEscapesHelperRule,
    ShapeMismatchRule,
)
from xaidb.analysis.rules.numeric import (
    DegenerateReductionRule,
    DivisionByPossibleZeroRule,
    LogSqrtDomainRule,
    ReciprocalScaleRule,
    UnnormalizedProbabilityRule,
)
from xaidb.analysis.rules.project import ExplainerInterfaceRule
from xaidb.analysis.rules.protocol import (
    SwallowedExceptionRule,
    UnawaitedCoroutineRule,
    UntypedExceptionEscapesRule,
    UseAfterCloseRule,
    UseBeforeFitRule,
)
from xaidb.analysis.rules.purity import ExplainerPurityRule
from xaidb.analysis.rules.randomness import UnseededRandomnessRule
from xaidb.analysis.rules.rng_origin import RngOriginRule
from xaidb.analysis.rules.runtime_rule import PredictLoopRule
from xaidb.analysis.rules.suppression_audit import SuppressionAuditRule
from xaidb.analysis.rules.view_escape import InputViewEscapeRule

__all__ = [
    "BannedImportsRule",
    "UnseededRandomnessRule",
    "ExplainerPurityRule",
    "MissingAllRule",
    "BroadExceptRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "ExplainerInterfaceRule",
    "PredictLoopRule",
    "RngOriginRule",
    "InputViewEscapeRule",
    "SuppressionAuditRule",
    "DeadStoreRule",
    "ShapeMismatchRule",
    "DtypeDegradationRule",
    "RngEscapesHelperRule",
    "MutationThroughCalleeRule",
    "SharedArrayMutationRule",
    "NondeterministicWorkerTaskRule",
    "UnpicklableTaskCaptureRule",
    "BlockingCallInAsyncRule",
    "LeakedSharedResourceRule",
    "DivisionByPossibleZeroRule",
    "LogSqrtDomainRule",
    "DegenerateReductionRule",
    "UnnormalizedProbabilityRule",
    "ReciprocalScaleRule",
    "UseBeforeFitRule",
    "UseAfterCloseRule",
    "UnawaitedCoroutineRule",
    "UntypedExceptionEscapesRule",
    "SwallowedExceptionRule",
]
