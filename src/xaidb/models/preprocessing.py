"""Data preprocessing for the ML substrate."""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_fitted, check_matching_lengths

__all__ = ["StandardScaler", "train_test_split"]


class StandardScaler:
    """Column-wise standardisation to zero mean and unit variance.

    Constant columns keep their values centred but are not divided by a
    zero scale.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X, name="X", ndim=2)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        self.scale_ = np.where(scale > 0, scale, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mean_", "scale_"])
        X = check_array(X, name="X", ndim=2)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} columns, scaler was fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mean_", "scale_"])
        X = check_array(X, name="X", ndim=2)
        return X * self.scale_ + self.mean_


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.25,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split arrays into ``(X_train, X_test, y_train, y_test)``."""
    X = check_array(X, name="X", ndim=2)
    y = check_array(y, name="y", ndim=1)
    check_matching_lengths(("X", X), ("y", y))
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = check_random_state(random_state)
    order = rng.permutation(len(y))
    n_test = max(1, int(round(len(y) * test_fraction)))
    if n_test >= len(y):
        raise ValidationError("split would leave the training set empty")
    test_rows, train_rows = order[:n_test], order[n_test:]
    return X[train_rows], X[test_rows], y[train_rows], y[test_rows]
