"""Influence functions for parametric models (Koh & Liang 2017; Basu,
You & Feizi 2020).

For a model minimising the average twice-differentiable loss, the effect
of removing training point ``i`` on the parameters is approximated by one
implicit Newton step:

    theta_{-i} - theta*  ~=  H^{-1} grad_i / (n - 1)

where ``H`` is the Hessian of the average loss at ``theta*``.  Chained
with the gradient of a test loss or prediction this ranks training points
by influence *without retraining* — the core §2.3.2 method.

Group removal: summing single-point influences ("first order") ignores
how removing the group changes the curvature itself; the "second order"
variant here takes the Newton step against the *downweighted* Hessian
``H_{-U}`` (computable exactly for GLMs), which is what makes group
estimates accurate under correlated groups — the Basu et al. point that
experiment E16 reproduces.

The Hessian solve is exact by default; ``solver="cg"`` uses conjugate
gradients on Hessian-vector products (Koh & Liang's stochastic-estimation
alternative), the E16 ablation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import clone
from xaidb.models.linear import LinearRegression
from xaidb.models.logistic import LogisticRegression
from xaidb.utils.linalg import conjugate_gradient, sigmoid, solve_psd
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["GLM", "InfluenceFunctions"]

GLM = LinearRegression | LogisticRegression


class InfluenceFunctions:
    """Influence analysis bound to a fitted GLM and its training data.

    Parameters
    ----------
    model:
        Fitted :class:`LinearRegression` or :class:`LogisticRegression`.
    X_train, y_train:
        The data the model was fitted on.
    solver:
        ``"exact"`` (Cholesky on the assembled Hessian) or ``"cg"``
        (matrix-free conjugate gradients).
    """

    def __init__(
        self,
        model: GLM,
        X_train: np.ndarray,
        y_train: np.ndarray,
        *,
        solver: str = "exact",
    ) -> None:
        if not isinstance(model, (LinearRegression, LogisticRegression)):
            raise ValidationError(
                "InfluenceFunctions supports LinearRegression and "
                "LogisticRegression (use LeafRefitInfluence for GBDTs)"
            )
        if solver not in ("exact", "cg"):
            raise ValidationError("solver must be 'exact' or 'cg'")
        self.model = model
        self.X_train = check_array(X_train, name="X_train", ndim=2)
        self.y_train = check_array(y_train, name="y_train", ndim=1)
        check_matching_lengths(("X_train", self.X_train), ("y_train", self.y_train))
        self.solver = solver
        self.n = len(self.y_train)
        # per-example gradients at theta* and the average-loss Hessian
        self.gradients_ = model.loss_gradients(self.X_train, self.y_train)
        self.hessian_ = model.loss_hessian(self.X_train)

    # ------------------------------------------------------------------
    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        if self.solver == "exact":
            return solve_psd(self.hessian_, rhs)
        return conjugate_gradient(lambda v: self.hessian_ @ v, rhs)

    # ------------------------------------------------------------------
    def parameter_influence(self, index: int) -> np.ndarray:
        """Estimated parameter change ``theta_{-i} - theta*`` from removing
        one training point."""
        if not 0 <= index < self.n:
            raise ValidationError("index out of range")
        return self._solve(self.gradients_[index]) / (self.n - 1)

    def group_parameter_influence(
        self, indices: Sequence[int], *, order: str = "second"
    ) -> np.ndarray:
        """Estimated ``theta_{-U} - theta*`` for removing a group ``U``.

        ``order="first"`` sums per-point influences (no curvature
        interaction — inaccurate for correlated groups);
        ``order="second"`` takes the Newton step against the exact
        downweighted Hessian ``H_{-U}``.
        """
        indices = np.asarray(sorted(set(int(i) for i in indices)))
        if indices.size == 0:
            raise ValidationError("indices must be non-empty")
        if indices.size >= self.n:
            raise ValidationError("cannot remove the entire training set")
        group_gradient = self.gradients_[indices].sum(axis=0)
        remaining = self.n - indices.size
        if order == "first":
            return self._solve(group_gradient) / remaining
        if order != "second":
            raise ValidationError("order must be 'first' or 'second'")
        keep = np.setdiff1d(np.arange(self.n), indices)
        hessian_without = self.model.loss_hessian(self.X_train[keep])
        return solve_psd(hessian_without, group_gradient) / remaining

    # ------------------------------------------------------------------
    def _prediction_gradient(self, X: np.ndarray) -> np.ndarray:
        """d prediction / d theta per row of ``X`` (intercept included)."""
        X = check_array(X, name="X", ndim=2)
        design = (
            np.column_stack([X, np.ones(X.shape[0])])
            if self.model.fit_intercept
            else X
        )
        if isinstance(self.model, LogisticRegression):
            p = sigmoid(design @ self.model.theta_)
            return design * (p * (1.0 - p))[:, None]
        return design

    def prediction_influence(
        self, index: int, X_test: np.ndarray
    ) -> np.ndarray:
        """Estimated change in the model's prediction at each test row if
        training point ``index`` were removed."""
        delta = self.parameter_influence(index)
        return self._prediction_gradient(X_test) @ delta

    def group_prediction_influence(
        self, indices: Sequence[int], X_test: np.ndarray, *, order: str = "second"
    ) -> np.ndarray:
        """Group analogue of :meth:`prediction_influence`."""
        delta = self.group_parameter_influence(indices, order=order)
        return self._prediction_gradient(X_test) @ delta

    def loss_influence(
        self, index: int, X_test: np.ndarray, y_test: np.ndarray
    ) -> float:
        """Estimated change in total test loss if point ``index`` were
        removed (positive = removal hurts; the Koh-Liang ``-I_up,loss``
        scaled by ``1/n``)."""
        delta = self.parameter_influence(index)
        test_gradients = self.model.loss_gradients(X_test, y_test)
        return float(test_gradients.sum(axis=0) @ delta)

    def self_influence(self) -> np.ndarray:
        """``grad_i^T H^{-1} grad_i / n`` per training point — the memorisation
        score often used to surface mislabeled points."""
        solved = np.column_stack(
            [self._solve(g) for g in self.gradients_]
        ).T
        return np.einsum("ij,ij->i", self.gradients_, solved) / self.n

    # ------------------------------------------------------------------
    def actual_parameter_change(self, indices: Sequence[int]) -> np.ndarray:
        """Ground truth by retraining without ``indices`` (used by the
        tests and E16 to score the approximations)."""
        indices = np.asarray(list(indices), dtype=int)
        keep = np.setdiff1d(np.arange(self.n), indices)
        retrained = clone(self.model)
        retrained.fit(self.X_train[keep], self.y_train[keep])
        return retrained.theta_ - self.model.theta_
