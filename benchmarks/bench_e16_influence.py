"""E16 — Influence functions approximate retraining; groups need
second-order (Koh & Liang 2017 Fig. 2; Basu, You & Feizi 2020) + the
Hessian-solver ablation.

Reproduced shapes:

- single-point predicted parameter changes correlate ~1 with actual
  leave-one-out retraining;
- for growing coherent groups, the additive first-order estimate's error
  grows faster than the curvature-aware second-order estimate's;
- the conjugate-gradient solve matches the exact solve (ablation).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.datavaluation import InfluenceFunctions
from xaidb.models import LogisticRegression

GROUP_SIZES = [10, 30, 60, 100]


def compute_rows():
    workload = make_income(800, random_state=0)
    X, y = workload.dataset.X, workload.dataset.y
    model = LogisticRegression(l2=1e-2).fit(X, y)
    influence = InfluenceFunctions(model, X, y)

    # single-point correlation
    predicted = np.asarray(
        [influence.parameter_influence(i) for i in range(40)]
    )
    actual = np.asarray(
        [influence.actual_parameter_change([i]) for i in range(40)]
    )
    single_corr = float(
        np.corrcoef(predicted.ravel(), actual.ravel())[0, 1]
    )

    # group curves: coherent group = highest-education positives
    order = np.argsort(-X[:, 1])
    # xailint: disable=XDB006 (labels are exact 0.0/1.0 floats)
    coherent_pool = [i for i in order if y[i] == 1.0]
    group_rows = []
    for size in GROUP_SIZES:
        group = coherent_pool[:size]
        first = influence.group_parameter_influence(group, order="first")
        second = influence.group_parameter_influence(group, order="second")
        truth = influence.actual_parameter_change(group)
        group_rows.append(
            (
                size,
                float(np.linalg.norm(first - truth)),
                float(np.linalg.norm(second - truth)),
            )
        )

    # solver ablation
    cg = InfluenceFunctions(model, X, y, solver="cg")
    solver_gap = float(
        np.abs(
            influence.parameter_influence(7) - cg.parameter_influence(7)
        ).max()
    )
    return single_corr, group_rows, solver_gap


def test_e16_influence(benchmark):
    single_corr, group_rows, solver_gap = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print(f"\nE16a: single-point influence vs retraining correlation: "
          f"{single_corr:.4f} (paper: ~1)")
    print_table(
        "E16b: group-removal parameter error (paper: first-order degrades "
        "with group size; second-order stays accurate)",
        ["group size", "first-order error", "second-order error"],
        group_rows,
    )
    print(f"E16c: exact-vs-CG solver max gap: {solver_gap:.2e}")
    assert single_corr > 0.99
    # second-order at least matches first-order at every size, and is
    # strictly better for the largest group
    for __, first_error, second_error in group_rows:
        assert second_error <= first_error + 1e-12
    assert group_rows[-1][2] < group_rows[-1][1]
    assert solver_gap < 1e-5
