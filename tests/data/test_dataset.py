import numpy as np
import pytest

from xaidb.data import Dataset, FeatureSpec
from xaidb.exceptions import ValidationError


@pytest.fixture()
def toy():
    features = [
        FeatureSpec("age"),
        FeatureSpec("color", kind="categorical", categories=("red", "blue")),
    ]
    X = np.asarray([[30.0, 0.0], [40.0, 1.0], [50.0, 0.0]])
    return Dataset(X=X, y=np.asarray([0.0, 1.0, 1.0]), features=features)


class TestFeatureSpec:
    def test_categorical_needs_categories(self):
        with pytest.raises(ValidationError):
            FeatureSpec("c", kind="categorical")

    def test_numeric_rejects_categories(self):
        with pytest.raises(ValidationError):
            FeatureSpec("n", categories=("a",))

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            FeatureSpec("x", kind="ordinal")

    def test_invalid_monotone(self):
        with pytest.raises(ValidationError):
            FeatureSpec("x", monotone=2)

    def test_decode_encode_roundtrip(self):
        spec = FeatureSpec("c", kind="categorical", categories=("a", "b"))
        assert spec.decode(spec.encode("b")) == "b"

    def test_decode_out_of_range(self):
        spec = FeatureSpec("c", kind="categorical", categories=("a", "b"))
        with pytest.raises(ValidationError):
            spec.decode(5.0)

    def test_encode_unknown_category(self):
        spec = FeatureSpec("c", kind="categorical", categories=("a", "b"))
        with pytest.raises(ValidationError):
            spec.encode("z")


class TestDataset:
    def test_basic_shape_properties(self, toy):
        assert toy.n_rows == 3
        assert toy.n_features == 2
        assert toy.feature_names == ["age", "color"]
        assert len(toy) == 3

    def test_indices_by_kind(self, toy):
        assert toy.categorical_indices == [1]
        assert toy.numeric_indices == [0]

    def test_feature_index(self, toy):
        assert toy.feature_index("color") == 1
        with pytest.raises(ValidationError):
            toy.feature_index("nope")

    def test_row_as_dict_decodes(self, toy):
        row = toy.row_as_dict(1)
        assert row == {"age": 40.0, "color": "blue"}

    def test_row_as_dict_raw(self, toy):
        row = toy.row_as_dict(1, decode=False)
        assert row["color"] == 1.0

    def test_anonymous_features_generated(self):
        ds = Dataset(X=np.ones((2, 3)))
        assert ds.feature_names == ["x0", "x1", "x2"]

    def test_mismatched_spec_count(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((2, 2)), features=[FeatureSpec("a")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(
                X=np.ones((2, 2)),
                features=[FeatureSpec("a"), FeatureSpec("a")],
            )

    def test_xy_length_mismatch(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((3, 1)), y=np.ones(2))

    def test_subset_preserves_metadata(self, toy):
        sub = toy.subset([0, 2])
        assert sub.n_rows == 2
        assert sub.features == toy.features
        assert np.array_equal(sub.y, [0.0, 1.0])

    def test_subset_is_a_copy(self, toy):
        sub = toy.subset([0])
        sub.X[0, 0] = -1.0
        assert toy.X[0, 0] == 30.0

    def test_drop_rows(self, toy):
        kept = toy.drop_rows([1])
        assert kept.n_rows == 2
        assert 40.0 not in kept.X[:, 0]

    def test_split_sizes(self, toy):
        train, test = toy.split(test_fraction=0.34, random_state=0)
        assert train.n_rows + test.n_rows == 3
        assert test.n_rows == 1

    def test_split_rejects_bad_fraction(self, toy):
        with pytest.raises(ValidationError):
            toy.split(test_fraction=1.5)

    def test_split_deterministic(self, toy):
        a1, b1 = toy.split(test_fraction=0.34, random_state=5)
        a2, b2 = toy.split(test_fraction=0.34, random_state=5)
        assert np.array_equal(a1.X, a2.X)
        assert np.array_equal(b1.X, b2.X)

    def test_from_records(self):
        features = [
            FeatureSpec("n"),
            FeatureSpec("c", kind="categorical", categories=("x", "y")),
        ]
        ds = Dataset.from_records(
            [{"n": 1.0, "c": "y"}, {"n": 2.0, "c": "x"}], features, y=[0, 1]
        )
        assert ds.X[0, 1] == 1.0
        assert ds.y is not None

    def test_from_records_missing_feature(self):
        with pytest.raises(ValidationError, match="missing feature"):
            Dataset.from_records([{"n": 1.0}], [FeatureSpec("n"), FeatureSpec("m")])
