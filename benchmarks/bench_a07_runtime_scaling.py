"""A7 (ablation) — the shared evaluation runtime's cost accounting
(DESIGN.md; tutorial §2's "explanations are many model evaluations"
cost claim, made measurable).

Reproduced shape: perturbation explainers are dominated by model
evaluations, so the three runtime levers must show up directly in the
ledger —

1. *memoisation*: repeated/overlapping KernelSHAP coalition workloads
   (the interactive what-if pattern from the tutorial's DB use cases)
   cut model evaluations by >= 2x when calls share a
   :class:`~xaidb.runtime.GameRuntime`, and the saving is exactly
   accounted by ``cache_hit_rate``;
2. *chunking*: ``max_batch_rows`` bounds the peak rows per
   ``predict_fn`` call (the memory ceiling) while leaving the
   attributions bit-identical;
3. *parallelism*: TMC-Shapley with ``n_jobs > 1`` returns bitwise the
   same values as the serial run under the same seed, because each
   permutation draws from its own spawned child seed.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.datavaluation import UtilityFunction, tmc_shapley_values
from xaidb.explainers.shapley import KernelShapExplainer
from xaidb.models import KNeighborsClassifier
from xaidb.runtime import RuntimeConfig

# 2^10 - 2 = 1022 coalitions fits the default budget, so every explain
# call enumerates the same exhaustive coalition set — the fully
# overlapping workload of the tutorial's interactive what-if pattern.
D = 10
N_COALITIONS = 2048


class _LedgerPredict:
    """A linear model that records every call's row count."""

    def __init__(self, weights: np.ndarray) -> None:
        self.weights = weights
        self.n_rows = 0
        self.n_calls = 0
        self.peak_rows = 0

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(X)
        self.n_rows += X.shape[0]
        self.n_calls += 1
        self.peak_rows = max(self.peak_rows, X.shape[0])
        return X @ self.weights


def _workload():
    rng = np.random.default_rng(70)
    background = rng.normal(size=(25, D))
    instance = rng.normal(size=D)
    weights = rng.normal(size=D)
    return background, instance, weights


def _repeated_workload_rows():
    """The memoisation lever: explain the same instance three times
    (exhaustive enumeration, so the coalition sets coincide exactly —
    the re-requested-explanation workload), cold versus sharing one
    runtime."""
    background, instance, weights = _workload()
    seeds = [0, 1, 2]

    cold = _LedgerPredict(weights)
    explainer = KernelShapExplainer(
        cold, background, n_coalitions=N_COALITIONS,
        config=RuntimeConfig(cache=False),
    )
    for seed in seeds:
        explainer.explain(instance, random_state=seed)

    shared = _LedgerPredict(weights)
    explainer = KernelShapExplainer(
        shared, background, n_coalitions=N_COALITIONS
    )
    runtime = explainer.make_runtime(instance)
    hit_rates = [
        explainer.explain(
            instance, random_state=seed, runtime=runtime
        ).metadata["cache_hit_rate"]
        for seed in seeds
    ]
    return cold, shared, hit_rates


def _chunking_row():
    """The memory lever: a max_batch_rows ceiling caps the peak rows per
    predict call, bit-identically."""
    background, instance, weights = _workload()

    unchunked = _LedgerPredict(weights)
    reference = KernelShapExplainer(
        unchunked, background, n_coalitions=N_COALITIONS,
    ).explain(instance, random_state=0)

    max_batch_rows = 512
    chunked = _LedgerPredict(weights)
    bounded = KernelShapExplainer(
        chunked, background, n_coalitions=N_COALITIONS,
        config=RuntimeConfig(max_batch_rows=max_batch_rows),
    ).explain(instance, random_state=0)

    identical = bool(np.array_equal(reference.values, bounded.values))
    return unchunked, chunked, max_batch_rows, identical


def _parallel_tmc_row():
    """The parallelism lever: spawned per-permutation seeds make the
    process-pool run reproduce the serial run bitwise."""
    workload = make_income(300, random_state=0)
    train, valid = workload.dataset.split(test_fraction=0.4, random_state=1)
    X, y = train.X[:40], train.y[:40]
    utility = UtilityFunction(
        KNeighborsClassifier(n_neighbors=5), valid.X, valid.y
    )
    serial, __ = tmc_shapley_values(
        utility, X, y, n_permutations=16, random_state=0,
    )
    parallel, __ = tmc_shapley_values(
        utility, X, y, n_permutations=16, random_state=0, n_jobs=2,
    )
    return bool(np.array_equal(serial, parallel))


def compute_rows():
    cold, shared, hit_rates = _repeated_workload_rows()
    unchunked, chunked, max_batch_rows, identical = _chunking_row()
    tmc_match = _parallel_tmc_row()
    rows = [
        ("kernelshap x3, cold cache", cold.n_rows, cold.peak_rows, "-"),
        (
            "kernelshap x3, shared runtime",
            shared.n_rows,
            shared.peak_rows,
            f"{hit_rates[-1]:.2f}",
        ),
        (
            f"kernelshap chunked (max_batch_rows={max_batch_rows})",
            chunked.n_rows,
            chunked.peak_rows,
            "bit-identical" if identical else "DIVERGED",
        ),
        (
            "tmc n_jobs=2 vs serial",
            "-",
            "-",
            "bit-identical" if tmc_match else "DIVERGED",
        ),
    ]
    context = {
        "cold": cold,
        "shared": shared,
        "unchunked": unchunked,
        "chunked": chunked,
        "max_batch_rows": max_batch_rows,
        "chunk_identical": identical,
        "final_hit_rate": hit_rates[-1],
        "tmc_match": tmc_match,
    }
    return rows, context


def test_a07_runtime_scaling(benchmark):
    rows, context = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "A7 (ablation): shared evaluation runtime — memoisation, chunking, "
        "parallelism (paper: explanation cost = model evaluations)",
        ["workload", "model-eval rows", "peak rows/call", "invariant"],
        rows,
    )
    cold, shared = context["cold"], context["shared"]
    # memoisation: repeated workloads cost >= 2x less model evaluation
    assert cold.n_rows >= 2 * shared.n_rows
    # ... and the repeat calls are (almost) pure cache hits
    assert context["final_hit_rate"] > 0.9
    # chunking: the ceiling binds and held
    assert context["unchunked"].peak_rows > context["max_batch_rows"]
    assert context["chunked"].peak_rows <= context["max_batch_rows"]
    assert context["chunk_identical"]
    # parallelism: same seed, same values, pool or not
    assert context["tmc_match"]
