import numpy as np
import pytest

from xaidb.exceptions import ConvergenceError
from xaidb.utils.linalg import (
    batched_outer_sum,
    conjugate_gradient,
    logsumexp,
    sigmoid,
    solve_psd,
)


class TestSolvePsd:
    def test_solves_well_conditioned(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 5))
        m = a.T @ a + np.eye(5)
        rhs = rng.normal(size=5)
        x = solve_psd(m, rhs)
        assert np.allclose(m @ x, rhs, atol=1e-8)

    def test_ridge_regularises(self):
        m = np.zeros((3, 3))
        rhs = np.ones(3)
        x = solve_psd(m, rhs, ridge=1.0)
        assert np.allclose(x, rhs)

    def test_singular_falls_back_to_lstsq(self):
        m = np.asarray([[1.0, 1.0], [1.0, 1.0]])
        rhs = np.asarray([2.0, 2.0])
        x = solve_psd(m, rhs)
        assert np.allclose(m @ x, rhs, atol=1e-8)


class TestConjugateGradient:
    def test_matches_direct_solve(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(8, 8))
        m = a.T @ a + np.eye(8)
        rhs = rng.normal(size=8)
        x_cg = conjugate_gradient(lambda v: m @ v, rhs)
        assert np.allclose(x_cg, np.linalg.solve(m, rhs), atol=1e-6)

    def test_raises_on_no_convergence(self):
        m = np.diag([1.0, 1e12])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(lambda v: m @ v, np.ones(2), max_iter=1, tol=1e-16)

    def test_zero_rhs(self):
        x = conjugate_gradient(lambda v: v, np.zeros(3))
        assert np.allclose(x, 0.0)


class TestBatchedOuterSum:
    def test_unweighted(self):
        v = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        expected = np.outer(v[0], v[0]) + np.outer(v[1], v[1])
        assert np.allclose(batched_outer_sum(v), expected)

    def test_weighted(self):
        v = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        out = batched_outer_sum(v, np.asarray([2.0, 3.0]))
        assert np.allclose(out, np.diag([2.0, 3.0]))


class TestScalarHelpers:
    def test_logsumexp_stability(self):
        big = np.asarray([1000.0, 1000.0])
        assert logsumexp(big) == pytest.approx(1000.0 + np.log(2.0))

    def test_logsumexp_axis(self):
        values = np.log(np.asarray([[1.0, 3.0], [2.0, 2.0]]))
        out = logsumexp(values, axis=1)
        assert np.allclose(np.exp(out), [4.0, 4.0])

    def test_sigmoid_extremes(self):
        assert sigmoid(np.asarray([-1000.0]))[0] == pytest.approx(0.0, abs=1e-12)
        assert sigmoid(np.asarray([1000.0]))[0] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_midpoint(self):
        assert sigmoid(np.asarray([0.0]))[0] == pytest.approx(0.5)
