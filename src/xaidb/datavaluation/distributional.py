"""Distributional Shapley values (Ghorbani, Kim & Zou 2020; Kwon, Rivas &
Zou 2021).

Data Shapley values a point *relative to one fixed dataset*; the tutorial
notes this "ignores the fact that training data is sampled from an
unknown underlying distribution".  The distributional Shapley value of a
point ``z`` at cardinality ``m`` is the expected marginal contribution of
``z`` to a random size-``(m-1)`` dataset drawn from the distribution:

    nu(z; m) = E_{S ~ D^{m-1}} [ v(S ∪ {z}) - v(S) ]

and the overall value averages ``nu(z; m)`` over cardinalities.  Because
it conditions on the distribution rather than a dataset, the value of a
point is *stable across resampled datasets* — the property experiment E15
measures.

The estimator here is the paper's Monte-Carlo scheme with a data pool
standing in for the distribution (or fresh SCM samples when the caller
passes a resampler).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from xaidb.datavaluation.utility import UtilityFunction
from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["Resampler", "distributional_shapley_values"]

Resampler = Callable[[int, np.random.Generator], tuple[np.ndarray, np.ndarray]]


def distributional_shapley_values(
    utility: UtilityFunction,
    points_X: np.ndarray,
    points_y: np.ndarray,
    pool_X: np.ndarray,
    pool_y: np.ndarray,
    *,
    n_iterations: int = 100,
    min_cardinality: int = 10,
    max_cardinality: int | None = None,
    resampler: Resampler | None = None,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Estimate ``nu(z)`` for each row of ``(points_X, points_y)``.

    Parameters
    ----------
    utility:
        The training-and-scoring game payoff.
    points_X, points_y:
        Points to value.
    pool_X, pool_y:
        A large sample standing in for the underlying distribution, used
        to draw the random context datasets (ignored when ``resampler``
        is given).
    n_iterations:
        Context datasets per valued point.
    min_cardinality / max_cardinality:
        Context sizes are drawn uniformly from this range (defaults to
        ``[10, len(pool)]``).
    resampler:
        Optional callable ``(m, rng) -> (X, y)`` drawing a fresh context
        from the true distribution (e.g. an SCM), for experiments with
        generative ground truth.

    Returns
    -------
    (values, standard_errors)
    """
    points_X = check_array(points_X, name="points_X", ndim=2)
    points_y = check_array(points_y, name="points_y", ndim=1)
    check_matching_lengths(("points_X", points_X), ("points_y", points_y))
    pool_X = check_array(pool_X, name="pool_X", ndim=2)
    pool_y = check_array(pool_y, name="pool_y", ndim=1)
    if n_iterations < 1:
        raise ValidationError("n_iterations must be >= 1")
    max_cardinality = max_cardinality or len(pool_y)
    if not min_cardinality < max_cardinality:
        raise ValidationError("need min_cardinality < max_cardinality")
    rng = check_random_state(random_state)

    n_points = len(points_y)
    samples = np.zeros((n_iterations, n_points))
    for iteration in range(n_iterations):
        m = int(rng.integers(min_cardinality, max_cardinality + 1))
        if resampler is not None:
            context_X, context_y = resampler(m - 1, rng)
        else:
            rows = rng.choice(len(pool_y), size=m - 1, replace=False)
            context_X, context_y = pool_X[rows], pool_y[rows]
        base = utility(context_X, context_y)
        for j in range(n_points):
            with_point_X = np.vstack([context_X, points_X[j : j + 1]])
            with_point_y = np.append(context_y, points_y[j])
            samples[iteration, j] = utility(with_point_X, with_point_y) - base
    values = samples.mean(axis=0)
    if n_iterations > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(n_iterations)
    else:
        errors = np.full(n_points, np.nan)
    return values, errors
