import pytest

from xaidb.db import Provenance, Relation
from xaidb.exceptions import ProvenanceError, SchemaError


class TestProvenance:
    def test_atom(self):
        p = Provenance.atom("t1")
        assert p.lineage() == frozenset({"t1"})
        assert p.satisfied_by({"t1"})
        assert not p.satisfied_by(set())

    def test_product_is_conjunction(self):
        p = Provenance.atom("a") * Provenance.atom("b")
        assert not p.satisfied_by({"a"})
        assert p.satisfied_by({"a", "b"})

    def test_sum_is_disjunction(self):
        p = Provenance.atom("a") + Provenance.atom("b")
        assert p.satisfied_by({"a"})
        assert p.satisfied_by({"b"})

    def test_absorption(self):
        # a + a·b == a
        p = Provenance.atom("a") + Provenance.atom("a") * Provenance.atom("b")
        assert p == Provenance.atom("a")

    def test_distributivity(self):
        a, b, c = (Provenance.atom(x) for x in "abc")
        assert a * (b + c) == a * b + a * c

    def test_commutativity(self):
        a, b = Provenance.atom("a"), Provenance.atom("b")
        assert a * b == b * a
        assert a + b == b + a

    def test_always_and_empty(self):
        assert Provenance.always().satisfied_by(set())
        assert not Provenance.empty().satisfied_by({"a"})
        assert bool(Provenance.always())
        assert not bool(Provenance.empty())

    def test_always_absorbs_everything(self):
        assert Provenance.always() + Provenance.atom("a") == Provenance.always()

    def test_multiplying_by_always_is_identity(self):
        a = Provenance.atom("a")
        assert a * Provenance.always() == a

    def test_counterfactual_cause(self):
        # (a·b + a·c): a appears in every witness
        p = Provenance([{"a", "b"}, {"a", "c"}])
        assert p.is_counterfactual_cause("a")
        assert not p.is_counterfactual_cause("b")

    def test_counterfactual_on_empty_raises(self):
        with pytest.raises(ProvenanceError):
            Provenance.empty().is_counterfactual_cause("a")

    def test_hashable(self):
        assert len({Provenance.atom("a"), Provenance.atom("a")}) == 1


class TestRelation:
    def test_from_dicts_assigns_atoms(self):
        rel = Relation.from_dicts("r", [{"x": 1}, {"x": 2}])
        assert rel.rows[0].provenance == Provenance.atom("r:0")
        assert len(rel) == 2

    def test_custom_tuple_ids(self):
        rel = Relation.from_dicts("r", [{"x": 1}], tuple_ids=["mine"])
        assert rel.tuple_ids() == ["mine"]

    def test_inconsistent_records_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts("r", [{"x": 1}, {"y": 2}])

    def test_row_getitem(self):
        rel = Relation.from_dicts("r", [{"x": 1, "y": "a"}])
        assert rel.rows[0]["y"] == "a"
        with pytest.raises(SchemaError):
            rel.rows[0]["z"]

    def test_column_values(self):
        rel = Relation.from_dicts("r", [{"x": 1}, {"x": 5}])
        assert rel.column_values("x") == [1, 5]
        with pytest.raises(SchemaError):
            rel.column_values("q")

    def test_restrict_to(self):
        rel = Relation.from_dicts("r", [{"x": 1}, {"x": 2}, {"x": 3}])
        restricted = rel.restrict_to({"r:0", "r:2"})
        assert restricted.column_values("x") == [1, 3]

    def test_restrict_empty(self):
        rel = Relation.from_dicts("r", [{"x": 1}])
        assert len(rel.restrict_to(set())) == 0

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation(name="r", columns=["a", "a"])

    def test_to_dicts_roundtrip(self):
        records = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
        rel = Relation.from_dicts("r", records)
        assert rel.to_dicts() == records
