"""Shared table rendering for the benchmark harness.

Every ``bench_eXX`` module computes the rows of the table/figure it
reproduces, prints them in a uniform format (so ``pytest benchmarks/
--benchmark-only -s`` regenerates the report), and asserts the
qualitative *shape* documented in EXPERIMENTS.md.

:func:`merge_bench_record` is the shared writer for the machine-readable
baseline artifacts (``BENCH_inference.json``): each benchmark owns one
top-level key and merges into the file instead of overwriting it, so
A10's inference rows and A15's explainer rows coexist.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence


def merge_bench_record(path: Path, key: str, record: dict) -> None:
    """Write ``record`` under ``key`` in the JSON file at ``path``,
    preserving every other benchmark's key.

    A legacy file holding one benchmark's record at top level (the
    pre-A15 ``BENCH_inference.json`` shape: ``workloads`` with no
    namespace) is migrated under ``"a10_inference"`` first.
    """
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    if "workloads" in data:  # legacy single-record layout
        data = {"a10_inference": data}
    data[key] = record
    path.write_text(json.dumps(data, indent=2) + "\n")


def print_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    """Render one experiment table to stdout.

    An empty ``rows`` list renders the header and an ``(no rows)``
    marker — a benchmark that finds nothing must still report a table,
    not crash the harness (``max()`` over a bare int would raise).
    """
    widths = [
        max(
            len(str(header[i])),
            *(len(_fmt(row[i])) for row in rows),
        )
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-+-".join("-" * w for w in widths))
    if not rows:
        print("(no rows)")
        return
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
