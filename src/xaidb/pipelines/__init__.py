"""Provenance-tracked ML pipelines (tutorial §3 "Provenance-Based
Explanations"): data-preparation operators that record per-row lineage
across stages, and stage-level attribution of model errors."""

from xaidb.pipelines.debugging import PipelineDebugger, StageAttribution
from xaidb.pipelines.operators import (
    DropOutliers,
    FilterRows,
    ImputeMean,
    LabelFlipCorruption,
    Operator,
    ScaleStandard,
)
from xaidb.pipelines.pipeline import PipelineResult, ProvenancePipeline

__all__ = [
    "Operator",
    "ImputeMean",
    "ScaleStandard",
    "FilterRows",
    "DropOutliers",
    "LabelFlipCorruption",
    "ProvenancePipeline",
    "PipelineResult",
    "PipelineDebugger",
    "StageAttribution",
]
