"""GeCo-style genetic counterfactual search (Schleich et al. 2021).

GeCo's thesis — echoed by the tutorial's §3 — is that counterfactuals must
be *plausible*, *feasible* and generated *in real time*.  The algorithm:

1. maintain a population of candidates that differ from the instance in a
   small number of features (GeCo's Δ-representation: we store only the
   changed features, which also keeps candidates sparse);
2. evolve it with selection / mutation / crossover, where every operator
   respects the feasibility constraints (immutables, monotone directions,
   category domains) and a plausibility check against the data manifold;
3. fitness is lexicographic exactly as in the paper: valid candidates
   always beat invalid ones, then fewer changed features, then smaller
   distance; invalid candidates are ranked by how close they are to
   flipping.

The ``require_plausible`` switch is the E9 ablation: turning it off
reproduces the "unrealistic counterfactuals" failure mode of
unconstrained search.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import InfeasibleError, ValidationError
from xaidb.explainers.base import Explainer, PredictFn
from xaidb.explainers.counterfactual.base import (
    ActionSpace,
    Counterfactual,
    CounterfactualSet,
    mad_distance,
)
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["GecoExplainer"]


@dataclass(frozen=True)
class _Delta:
    """GeCo's sparse candidate representation: only the changed features."""

    changes: tuple[tuple[int, float], ...]

    def apply(self, origin: np.ndarray) -> np.ndarray:
        out = origin.copy()
        for feature, value in self.changes:
            out[feature] = value
        return out

    @property
    def n_changed(self) -> int:
        return len(self.changes)


class GecoExplainer(Explainer):
    """Feasibility- and plausibility-constrained genetic counterfactuals.

    Parameters
    ----------
    predict_fn:
        Positive-class probability function of the model.
    dataset:
        Supplies the action space and the data manifold for plausibility.
    population_size / n_generations:
        Genetic search budget.
    require_plausible:
        If True, candidates whose nearest-neighbour distance to the
        training data (standardised) exceeds ``plausibility_quantile`` of
        the data's own nearest-neighbour distances are rejected.
    range_expansion:
        Widens the numeric search box beyond the observed data range by
        this multiple of each feature's range (0 = stay inside observed
        values).  Unconstrained counterfactual search effectively uses a
        large expansion — the E9 ablation pairs ``range_expansion > 0``
        with ``require_plausible=False`` to reproduce the "unrealistic
        counterfactuals" failure mode.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        dataset: Dataset,
        *,
        population_size: int = 60,
        n_generations: int = 30,
        mutation_rate: float = 0.7,
        require_plausible: bool = True,
        plausibility_quantile: float = 0.95,
        range_expansion: float = 0.0,
    ) -> None:
        if population_size < 4:
            raise ValidationError("population_size must be >= 4")
        if range_expansion < 0:
            raise ValidationError("range_expansion must be >= 0")
        self.predict_fn = predict_fn
        self.dataset = dataset
        self.space = ActionSpace.from_dataset(dataset)
        if range_expansion > 0:
            span = self.space.upper - self.space.lower
            for col in dataset.numeric_indices:
                self.space.lower[col] -= range_expansion * span[col]
                self.space.upper[col] += range_expansion * span[col]
        self.range_expansion = range_expansion
        self.population_size = population_size
        self.n_generations = n_generations
        self.mutation_rate = mutation_rate
        self.require_plausible = require_plausible
        self._scale = np.maximum(dataset.X.std(axis=0), 1e-9)
        self._data_scaled = dataset.X / self._scale
        if require_plausible:
            distances = pairwise_distances(self._data_scaled)
            np.fill_diagonal(distances, np.inf)
            nearest = distances.min(axis=1)
            self._plausibility_radius = float(
                np.quantile(nearest, plausibility_quantile)
            )
        else:
            self._plausibility_radius = np.inf

    # ------------------------------------------------------------------
    def is_plausible(self, candidate: np.ndarray) -> bool:
        """On-manifold proxy: the candidate's nearest training neighbour is
        no farther than the typical nearest-neighbour distance in data."""
        if not self.require_plausible:
            return True
        scaled = (candidate / self._scale)[None, :]
        nearest = pairwise_distances(scaled, self._data_scaled).min()
        return bool(nearest <= self._plausibility_radius)

    # ------------------------------------------------------------------
    def explain(self, instance: np.ndarray, **kwargs: Any) -> CounterfactualSet:
        """Alias for :meth:`generate` (the Explainer-interface entry point)."""
        return self.generate(instance, **kwargs)

    def generate(
        self,
        instance: np.ndarray,
        *,
        n_counterfactuals: int = 3,
        target_class: int | None = None,
        random_state: RandomState = None,
    ) -> CounterfactualSet:
        """Search for the ``n_counterfactuals`` best counterfactuals.

        Raises :class:`InfeasibleError` when no valid counterfactual is
        found within the generation budget.
        """
        instance = check_array(instance, name="instance", ndim=1)
        rng = check_random_state(random_state)
        original_score = float(self.predict_fn(instance[None, :])[0])
        if target_class is None:
            target_class = 0 if original_score >= 0.5 else 1

        population = [
            self._random_delta(instance, rng) for _ in range(self.population_size)
        ]
        for _ in range(self.n_generations):
            ranked = self._rank(population, instance, target_class)
            elite = [delta for delta, _ in ranked[: self.population_size // 2]]
            offspring: list[_Delta] = []
            while len(elite) + len(offspring) < self.population_size:
                if rng.random() < self.mutation_rate or len(elite) < 2:
                    parent = elite[int(rng.integers(0, len(elite)))]
                    offspring.append(self._mutate(parent, instance, rng))
                else:
                    a, b = rng.choice(len(elite), size=2, replace=False)
                    offspring.append(self._crossover(elite[int(a)], elite[int(b)], rng))
            population = elite + offspring

        ranked = self._rank(population, instance, target_class)
        valid = [
            delta
            for delta, key in ranked
            if key[0] == 0  # validity flag in sort key: 0 = valid
        ]
        if not valid:
            raise InfeasibleError(
                "GeCo found no valid counterfactual within the budget; "
                "loosen constraints or increase n_generations"
            )
        # deduplicate by the applied vector
        unique: list[_Delta] = []
        seen: set[tuple] = set()
        for delta in valid:
            key = tuple(np.round(delta.apply(instance), 9))
            if key not in seen:
                seen.add(key)
                unique.append(delta)
        chosen = unique[:n_counterfactuals]
        counterfactuals = []
        for delta in chosen:
            candidate = delta.apply(instance)
            # xailint: disable=XDB009 (final rescoring of the handful of selected counterfactuals; the search itself scores populations in batch)
            score = float(self.predict_fn(candidate[None, :])[0])
            counterfactuals.append(
                Counterfactual(
                    original=instance.copy(),
                    counterfactual=candidate,
                    feature_names=self.dataset.feature_names,
                    original_score=original_score,
                    counterfactual_score=score,
                    distance=mad_distance(instance, candidate, self.space.mad),
                )
            )
        return CounterfactualSet(counterfactuals, mad=self.space.mad)

    # ------------------------------------------------------------------
    def _feasible_value(
        self, origin: np.ndarray, feature: int, rng: np.random.Generator
    ) -> float:
        spec = self.space.features[feature]
        if spec.is_categorical:
            codes = self.space.category_codes[feature]
            options = codes[~np.isclose(codes, origin[feature])]
            if options.size == 0:
                return float(origin[feature])
            return float(rng.choice(options))
        low, high = self.space.lower[feature], self.space.upper[feature]
        if spec.monotone == 1:
            low = origin[feature]
        elif spec.monotone == -1:
            high = origin[feature]
        if high <= low:
            return float(origin[feature])
        return float(rng.uniform(low, high))

    def _random_delta(self, origin: np.ndarray, rng: np.random.Generator) -> _Delta:
        actionable = self.space.actionable_indices()
        if not actionable:
            raise ValidationError("no actionable features")
        n_changes = int(rng.integers(1, min(3, len(actionable)) + 1))
        chosen = rng.choice(actionable, size=n_changes, replace=False)
        changes = tuple(
            (int(f), self._feasible_value(origin, int(f), rng)) for f in chosen
        )
        return _Delta(changes)

    def _mutate(
        self, delta: _Delta, origin: np.ndarray, rng: np.random.Generator
    ) -> _Delta:
        changes = dict(delta.changes)
        actionable = self.space.actionable_indices()
        move = rng.random()
        if move < 0.4 or not changes:
            feature = int(rng.choice(actionable))
            changes[feature] = self._feasible_value(origin, feature, rng)
        elif move < 0.8:
            feature = int(rng.choice(list(changes)))
            changes[feature] = self._feasible_value(origin, feature, rng)
        else:
            feature = int(rng.choice(list(changes)))
            del changes[feature]
        if not changes:
            return self._random_delta(origin, rng)
        return _Delta(tuple(sorted(changes.items())))

    def _crossover(
        self, a: _Delta, b: _Delta, rng: np.random.Generator
    ) -> _Delta:
        merged = dict(a.changes)
        for feature, value in b.changes:
            if rng.random() < 0.5:
                merged[feature] = value
        if not merged:
            merged = dict(a.changes)
        return _Delta(tuple(sorted(merged.items())))

    def _rank(
        self, population: list[_Delta], origin: np.ndarray, target_class: int
    ) -> list[tuple[_Delta, tuple]]:
        """Lexicographic fitness: valid > sparse > close; invalid candidates
        rank by distance-to-flipping.  Implausible/infeasible candidates go
        last."""
        candidates = np.asarray([delta.apply(origin) for delta in population])
        scores = np.asarray(self.predict_fn(candidates), dtype=float)
        target_probability = scores if target_class == 1 else 1.0 - scores
        keyed = []
        for delta, candidate, probability in zip(
            population, candidates, target_probability
        ):
            feasible = self.space.is_feasible(origin, candidate)
            plausible = self.is_plausible(candidate)
            if not (feasible and plausible):
                keyed.append((delta, (2, 0, np.inf, np.inf)))
                continue
            valid = probability >= 0.5
            distance = mad_distance(origin, candidate, self.space.mad)
            if valid:
                keyed.append((delta, (0, delta.n_changed, distance, -probability)))
            else:
                keyed.append((delta, (1, 0, 1.0 - probability, distance)))
        keyed.sort(key=lambda pair: pair[1])
        return keyed
