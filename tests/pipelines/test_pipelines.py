import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import LogisticRegression, accuracy
from xaidb.pipelines import (
    DropOutliers,
    FilterRows,
    ImputeMean,
    LabelFlipCorruption,
    PipelineDebugger,
    ProvenancePipeline,
    ScaleStandard,
)


@pytest.fixture()
def raw_data(income):
    X = income.dataset.X.copy()
    y = income.dataset.y.copy()
    X[::25, 0] = np.nan  # plant missing values
    return X, y


class TestOperators:
    def test_impute_fills_with_mean(self, raw_data):
        X, y = raw_data
        rng = np.random.default_rng(0)
        out_X, out_y, lineage, record = ImputeMean().apply(
            X, y, np.arange(len(y)), rng
        )
        assert not np.any(np.isnan(out_X))
        observed_mean = np.nanmean(X[:, 0])
        assert out_X[0, 0] == pytest.approx(observed_mean)
        assert 0 in record.touched_rows

    def test_impute_records_only_missing_rows(self, raw_data):
        X, y = raw_data
        __, __, __, record = ImputeMean().apply(
            X, y, np.arange(len(y)), np.random.default_rng(0)
        )
        assert set(record.touched_rows) == set(range(0, len(y), 25))

    def test_scale_standardises(self, income):
        X, y = income.dataset.X, income.dataset.y
        out_X, __, __, record = ScaleStandard().apply(
            X, y, np.arange(len(y)), np.random.default_rng(0)
        )
        assert np.allclose(out_X.mean(axis=0), 0.0, atol=1e-10)
        assert record.n_rows_out == len(y)

    def test_filter_drops_and_records(self, income):
        X, y = income.dataset.X, income.dataset.y
        op = FilterRows(lambda row: row[0] > 0, description="age > 0")
        out_X, out_y, lineage, record = op.apply(
            X, y, np.arange(len(y)), np.random.default_rng(0)
        )
        assert np.all(out_X[:, 0] > 0)
        assert record.n_rows_out == len(out_y)
        assert len(record.dropped_rows) == len(y) - len(out_y)
        # lineage points back at surviving original ids
        assert np.all(X[lineage, 0] > 0)

    def test_filter_dropping_everything_raises(self, income):
        X, y = income.dataset.X, income.dataset.y
        with pytest.raises(ValidationError):
            FilterRows(lambda row: False).apply(
                X, y, np.arange(len(y)), np.random.default_rng(0)
            )

    def test_outliers_dropped(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        X[7] = [50.0, 50.0]
        y = np.zeros(100)
        y[:50] = 1.0
        out_X, __, lineage, record = DropOutliers(z_threshold=4.0).apply(
            X, y, np.arange(100), rng
        )
        assert 7 in record.dropped_rows
        assert 7 not in lineage

    def test_outliers_nan_tolerant(self):
        X = np.asarray([[np.nan, 0.0], [1.0, 1.0], [2.0, 0.5]])
        y = np.zeros(3)
        out_X, __, __, __ = DropOutliers(z_threshold=4.0).apply(
            X, y, np.arange(3), np.random.default_rng(0)
        )
        assert out_X.shape[0] == 3

    def test_label_flip_records_ground_truth(self, income):
        X, y = income.dataset.X, income.dataset.y
        op = LabelFlipCorruption(fraction=0.1)
        out_X, out_y, lineage, record = op.apply(
            X, y.copy(), np.arange(len(y)), np.random.default_rng(0)
        )
        flipped = record.touched_rows
        assert len(flipped) == int(round(0.1 * len(y)))
        for row in flipped:
            assert out_y[row] == 1.0 - y[row]

    def test_label_flip_fraction_validated(self):
        with pytest.raises(ValidationError):
            LabelFlipCorruption(fraction=0.0)


class TestProvenancePipeline:
    def test_run_chains_stages(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [ImputeMean(), DropOutliers(z_threshold=3.5), ScaleStandard()],
            random_state=0,
        )
        result = pipe.run(X, y)
        assert not np.any(np.isnan(result.X))
        assert [r.name for r in result.records] == [
            "impute_mean",
            "drop_outliers",
            "scale_standard",
        ]

    def test_lineage_tracks_original_rows(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [FilterRows(lambda row: row[1] > 0.0)], random_state=0
        )
        result = pipe.run(X, y)
        assert np.array_equal(result.y, y[result.lineage])

    def test_stages_touching_query(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [ImputeMean(), ScaleStandard()], random_state=0
        )
        result = pipe.run(X, y)
        assert result.stages_touching(0) == ["impute_mean", "scale_standard"]
        assert result.stages_touching(1) == ["scale_standard"]

    def test_deterministic(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [LabelFlipCorruption(fraction=0.1)], random_state=5
        )
        a = pipe.run(X, y)
        b = pipe.run(X, y)
        assert np.array_equal(a.y, b.y)

    def test_run_without_stage(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [ImputeMean(), LabelFlipCorruption(fraction=0.1)], random_state=1
        )
        without_flip = pipe.run_without_stage(X, y, 1)
        assert [r.name for r in without_flip.records] == ["impute_mean"]
        # labels untouched
        assert np.array_equal(without_flip.y, y)

    def test_ablating_preserves_other_stage_seeds(self, raw_data):
        """Removing stage 0 must not change stage 1's randomness."""
        X, y = raw_data
        pipe = ProvenancePipeline(
            [ScaleStandard(), LabelFlipCorruption(fraction=0.1)],
            random_state=2,
        )
        full = pipe.run(X, y)
        ablated = pipe.run_without_stage(X, y, 0)
        flipped_full = full.records[1].touched_rows
        flipped_ablated = ablated.records[0].touched_rows
        assert flipped_full == flipped_ablated

    def test_output_row_of(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [FilterRows(lambda row: row[1] > 0.0)], random_state=0
        )
        result = pipe.run(X, y)
        surviving = result.surviving_original_rows()
        first = int(surviving[0])
        out_row = result.output_row_of(first)
        assert result.lineage[out_row] == first

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValidationError):
            ProvenancePipeline([])


class TestPipelineDebugger:
    def test_corruption_stage_blamed(self, raw_data, income):
        """Leave-one-stage-out must rank the label-flip stage as the most
        harmful one."""
        X, y = raw_data
        pipe = ProvenancePipeline(
            [
                ImputeMean(),
                LabelFlipCorruption(fraction=0.35),
                ScaleStandard(),
            ],
            random_state=3,
        )
        fresh = income.resample(400, random_state=77)
        debugger = PipelineDebugger(pipe, LogisticRegression(l2=1e-2), accuracy)
        attributions = debugger.stage_ablation(X, y, fresh.X, fresh.y)
        assert attributions[0].stage_name == "label_flip_corruption"
        assert attributions[0].harm > 0

    def test_blame_stages_for_rows(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline(
            [ImputeMean(), LabelFlipCorruption(fraction=0.2)], random_state=4
        )
        result = pipe.run(X, y)
        flipped_originals = result.records[1].touched_rows
        harmful_outputs = [
            result.output_row_of(row) for row in flipped_originals[:10]
        ]
        counts = PipelineDebugger(
            pipe, LogisticRegression(), accuracy
        ).blame_stages_for_rows(result, harmful_outputs)
        assert counts["label_flip_corruption"] == 10

    def test_blame_requires_rows(self, raw_data):
        X, y = raw_data
        pipe = ProvenancePipeline([ScaleStandard()], random_state=0)
        result = pipe.run(X, y)
        with pytest.raises(ValidationError):
            PipelineDebugger(
                pipe, LogisticRegression(), accuracy
            ).blame_stages_for_rows(result, [])
