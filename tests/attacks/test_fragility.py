import numpy as np
import pytest

from xaidb.attacks import fragility_attack, top_k_intersection
from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba, saliency, smoothgrad
from xaidb.models import MLPClassifier


class TestTopKIntersection:
    def test_identical(self):
        a = np.asarray([3.0, 2.0, 1.0])
        assert top_k_intersection(a, a, 2) == 1.0

    def test_disjoint(self):
        a = np.asarray([1.0, 0.0, 0.0, 0.0])
        b = np.asarray([0.0, 0.0, 0.0, 1.0])
        assert top_k_intersection(a, b, 1) == 0.0

    def test_uses_magnitudes(self):
        a = np.asarray([-5.0, 1.0])
        b = np.asarray([5.0, 1.0])
        assert top_k_intersection(a, b, 1) == 1.0

    def test_k_validated(self):
        with pytest.raises(ValidationError):
            top_k_intersection(np.ones(2), np.ones(2), 0)


class TestFragilityAttack:
    @pytest.fixture(scope="class")
    def mlp(self, moons):
        return MLPClassifier(
            hidden_sizes=(16, 16), max_iter=600, random_state=0
        ).fit(moons.X, moons.y)

    def test_prediction_budget_respected(self, mlp, moons):
        f = predict_positive_proba(mlp)
        result = fragility_attack(
            f,
            lambda x: saliency(mlp, x).values,
            moons.X[0],
            radius=0.1,
            max_prediction_change=0.05,
            n_iterations=50,
            random_state=0,
        )
        assert abs(result.prediction_change) <= 0.05 + 1e-9

    def test_perturbation_within_radius(self, mlp, moons):
        f = predict_positive_proba(mlp)
        result = fragility_attack(
            f,
            lambda x: saliency(mlp, x).values,
            moons.X[1],
            radius=0.15,
            n_iterations=40,
            random_state=1,
        )
        assert result.perturbation_norm <= 0.15 + 1e-9

    def test_robust_attribution_resists(self, mlp, moons):
        """A constant attribution cannot be disrupted: overlap stays 1."""
        f = predict_positive_proba(mlp)
        result = fragility_attack(
            f,
            lambda x: np.asarray([2.0, 1.0]),
            moons.X[2],
            n_iterations=30,
            random_state=2,
        )
        assert result.top_k_overlap == 1.0
        assert not result.succeeded

    def test_saliency_on_2d_moons_can_be_disrupted(self, mlp, moons):
        """With k=1 on a 2-feature problem, flipping the top feature is
        frequently possible near the decision boundary — the fragility
        phenomenon in miniature."""
        f = predict_positive_proba(mlp)
        scores = f(moons.X)
        near_boundary = moons.X[np.argsort(np.abs(scores - 0.5))[:10]]
        successes = 0
        for i, x in enumerate(near_boundary):
            result = fragility_attack(
                f,
                lambda z: saliency(mlp, z).values,
                x,
                radius=0.25,
                k=1,
                n_iterations=80,
                max_prediction_change=0.1,
                random_state=i,
            )
            successes += result.top_k_overlap == 0.0
        assert successes >= 3

    def test_smoothgrad_at_least_as_robust_as_saliency(self, mlp, moons):
        f = predict_positive_proba(mlp)
        scores = f(moons.X)
        probes = moons.X[np.argsort(np.abs(scores - 0.5))[:6]]

        def overlap(attribution_fn, seed):
            total = 0.0
            for i, x in enumerate(probes):
                result = fragility_attack(
                    f, attribution_fn, x,
                    radius=0.25, k=1, n_iterations=40,
                    max_prediction_change=0.1, random_state=seed + i,
                )
                total += result.top_k_overlap
            return total / len(probes)

        raw = overlap(lambda z: saliency(mlp, z).values, 100)
        smooth = overlap(
            lambda z: smoothgrad(mlp, z, n_samples=20, random_state=0).values,
            100,
        )
        assert smooth >= raw - 0.2  # robustness does not get worse

    def test_iteration_validation(self, mlp, moons):
        f = predict_positive_proba(mlp)
        with pytest.raises(ValidationError):
            fragility_attack(
                f, lambda x: x, moons.X[0], n_iterations=0
            )
