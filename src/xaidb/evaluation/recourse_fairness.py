"""Fairness of recourse (tutorial §1 objective (3): identifying sources
of harm; Ustun et al. 2019 §"disparities in recourse").

Even a classifier that satisfies predictive-parity style metrics can
leave one protected group with systematically more expensive recourse —
the cost of *undoing* a negative decision is itself a fairness surface.
:func:`recourse_cost_disparity` measures it: for every denied individual,
compute the minimal-cost recourse action; report per-group mean costs,
the infeasibility rate, and the max pairwise cost ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import InfeasibleError, ValidationError
from xaidb.explainers.counterfactual.recourse import LinearRecourse

__all__ = ["GroupRecourseStats", "recourse_cost_disparity"]


@dataclass
class GroupRecourseStats:
    """Recourse summary for one protected-group value."""

    group: str
    n_denied: int
    n_feasible: int
    mean_cost: float
    max_cost: float

    @property
    def infeasible_rate(self) -> float:
        if self.n_denied == 0:
            return 0.0
        return 1.0 - self.n_feasible / self.n_denied


def recourse_cost_disparity(
    recourse: LinearRecourse,
    dataset: Dataset,
    group_feature: str,
) -> tuple[list[GroupRecourseStats], float]:
    """Per-group recourse costs for every *denied* row of ``dataset``.

    Returns ``(per_group_stats, cost_ratio)`` where ``cost_ratio`` is the
    max over group pairs of mean-cost ratios (1.0 = perfectly equal
    recourse burden).  Groups with no feasible recourse at all contribute
    an infinite ratio.
    """
    column = dataset.feature_index(group_feature)
    spec = dataset.features[column]
    if not spec.is_categorical:
        raise ValidationError(
            f"group feature {group_feature!r} must be categorical"
        )
    scores = recourse.model.predict_proba(dataset.X)[:, 1]
    denied_rows = np.flatnonzero(scores < 0.5)
    if denied_rows.size == 0:
        raise ValidationError("no denied rows to compute recourse for")

    stats: list[GroupRecourseStats] = []
    for code in np.unique(dataset.X[:, column]):
        members = denied_rows[dataset.X[denied_rows, column] == code]
        costs = []
        for row in members:
            try:
                action = recourse.find(dataset.X[row])
            except InfeasibleError:
                continue
            costs.append(action.cost)
        stats.append(
            GroupRecourseStats(
                group=str(spec.decode(code)),
                n_denied=int(members.size),
                n_feasible=len(costs),
                mean_cost=float(np.mean(costs)) if costs else float("inf"),
                max_cost=float(np.max(costs)) if costs else float("inf"),
            )
        )
    means = [s.mean_cost for s in stats if s.n_denied > 0]
    if len(means) < 2:
        ratio = 1.0
    else:
        low = min(means)
        high = max(means)
        ratio = float("inf") if low == 0 or not np.isfinite(high) else high / low
    return stats, ratio
