"""Shapley-value explanation methods (tutorial §2.1.2-§2.1.3).

The common abstraction is a *cooperative game* over feature indices; the
estimators differ in how they traverse coalitions:

- :mod:`exact` — full enumeration (the ground truth everything else is
  validated against);
- :mod:`sampling` — permutation-sampling Monte Carlo;
- :mod:`kernel` — KernelSHAP's weighted-least-squares regression;
- :mod:`tree` — TreeSHAP's polynomial-time recursion for tree ensembles,
  plus the interventional (background-set) variant;
- :mod:`tree_shap_kernels` — the arena-wide vectorized TreeSHAP kernels
  behind :meth:`TreeShapExplainer.explain_batch` (all rows × all trees,
  bitwise identical to the retained recursion);
- :mod:`qii` — Quantitative Input Influence set-based measures;
- :mod:`causal` — asymmetric and causal Shapley values on an SCM;
- :mod:`flow` — Shapley flow's edge-based credit assignment.
"""

from xaidb.explainers.shapley.banzhaf import (
    banzhaf_of_tuples_boolean,
    banzhaf_values,
    banzhaf_values_sampled,
)
from xaidb.explainers.shapley.causal import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
)
from xaidb.explainers.shapley.exact import (
    ExactShapleyExplainer,
    exact_shapley_values,
)
from xaidb.explainers.shapley.flow import ShapleyFlowExplainer
from xaidb.explainers.shapley.global_summary import (
    global_shap_importance,
    shap_matrix,
    shap_summary,
    supervised_clustering,
)
from xaidb.explainers.shapley.games import (
    CachedGame,
    Game,
    MarginalImputationGame,
)
from xaidb.explainers.shapley.kernel import KernelShapExplainer
from xaidb.explainers.shapley.qii import QIIExplainer
from xaidb.explainers.shapley.sampling import (
    PermutationShapleyExplainer,
    permutation_shapley_values,
)
from xaidb.explainers.shapley.tree import (
    TreeShapExplainer,
    interventional_tree_shap,
    tree_expected_value,
)
from xaidb.explainers.shapley.tree_shap_kernels import (
    ensemble_interventional_shap,
    ensemble_path_dependent_shap,
)

__all__ = [
    "Game",
    "CachedGame",
    "MarginalImputationGame",
    "exact_shapley_values",
    "ExactShapleyExplainer",
    "permutation_shapley_values",
    "PermutationShapleyExplainer",
    "KernelShapExplainer",
    "TreeShapExplainer",
    "interventional_tree_shap",
    "tree_expected_value",
    "ensemble_path_dependent_shap",
    "ensemble_interventional_shap",
    "QIIExplainer",
    "AsymmetricShapleyExplainer",
    "CausalShapleyExplainer",
    "ShapleyFlowExplainer",
    "shap_matrix",
    "global_shap_importance",
    "shap_summary",
    "supervised_clustering",
    "banzhaf_values",
    "banzhaf_values_sampled",
    "banzhaf_of_tuples_boolean",
]
