import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import accuracy
from xaidb.rules import (
    ABSTAIN,
    LabelingFunction,
    LabelModel,
    apply_labeling_functions,
    mine_labeling_rules,
)


@pytest.fixture()
def simple_votes():
    """4 voters: perfect, two noisy ones wrong on disjoint rows (so the
    majority is always right — Dawid-Skene identifiability needs >= 3
    informative voters), and one that always abstains."""
    truth = np.asarray([1, 1, 0, 0, 1, 0, 1, 0])
    noisy_a = truth.copy()
    noisy_a[0] = 1 - noisy_a[0]
    noisy_a[3] = 1 - noisy_a[3]
    noisy_b = truth.copy()
    noisy_b[1] = 1 - noisy_b[1]
    noisy_b[5] = 1 - noisy_b[5]
    votes = np.column_stack(
        [truth, noisy_a, noisy_b, np.full(8, ABSTAIN)]
    )
    return votes, truth


class TestLabelingFunction:
    def test_valid_votes_pass(self):
        lf = LabelingFunction("f", lambda row: 1)
        assert lf(np.zeros(2)) == 1

    def test_invalid_vote_rejected(self):
        lf = LabelingFunction("bad", lambda row: 7)
        with pytest.raises(ValidationError, match="bad"):
            lf(np.zeros(2))

    def test_apply_builds_matrix(self):
        fs = [
            LabelingFunction("a", lambda row: 1 if row[0] > 0 else 0),
            LabelingFunction("b", lambda row: ABSTAIN),
        ]
        X = np.asarray([[1.0], [-1.0]])
        votes = apply_labeling_functions(fs, X)
        assert votes.tolist() == [[1, ABSTAIN], [0, ABSTAIN]]

    def test_apply_needs_functions(self):
        with pytest.raises(ValidationError):
            apply_labeling_functions([], np.ones((2, 2)))


class TestLabelModel:
    def test_majority_consensus(self, simple_votes):
        votes, truth = simple_votes
        model = LabelModel().fit(votes)
        predictions = model.predict(votes)
        assert accuracy(truth.astype(float), predictions) == 1.0

    def test_accuracies_identify_good_and_noisy_voters(self, simple_votes):
        votes, __ = simple_votes
        model = LabelModel().fit(votes)
        assert model.accuracies_[0] > model.accuracies_[1]  # perfect > noisy
        assert model.accuracies_[0] > model.accuracies_[2]
        assert model.accuracies_[1] > 0.6  # noisy voters still informative
        assert model.accuracies_[3] == pytest.approx(0.5)  # abstainer

    def test_anti_correlated_voter_is_inverted(self):
        """A reliably wrong voter still carries signal: the label model
        should learn to flip it."""
        truth = np.asarray([1, 0, 1, 0, 1, 0] * 5)
        votes = np.column_stack([truth, 1 - truth, truth])
        model = LabelModel().fit(votes)
        # rows where only the anti-voter speaks
        solo = np.column_stack(
            [np.full(6, ABSTAIN), 1 - truth[:6], np.full(6, ABSTAIN)]
        )
        predictions = model.predict(solo)
        assert accuracy(truth[:6].astype(float), predictions) == 1.0

    def test_probabilities_in_unit_interval(self, simple_votes):
        votes, __ = simple_votes
        proba = LabelModel().fit(votes).predict_proba(votes)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_coverage(self, simple_votes):
        votes, __ = simple_votes
        model = LabelModel().fit(votes)
        assert model.coverage(votes) == 1.0
        all_abstain = np.full((3, 3), ABSTAIN)
        assert model.coverage(all_abstain) == 0.0

    def test_predict_before_fit(self):
        with pytest.raises(ValidationError):
            LabelModel().predict_proba(np.zeros((2, 2), dtype=int))


class TestMineLabelingRules:
    def test_mined_rules_meet_precision_on_seed(self, income):
        seed = income.dataset.subset(range(150))
        functions = mine_labeling_rules(seed, min_precision=0.75, max_rules=8)
        assert functions
        votes = apply_labeling_functions(functions, seed.X)
        for j in range(votes.shape[1]):
            cast = votes[:, j] != ABSTAIN
            agreement = np.mean(votes[cast, j] == seed.y[cast])
            assert agreement >= 0.75 - 1e-9

    def test_end_to_end_weak_supervision_beats_chance(self, income):
        """Mine rules on a small seed, label the rest, check the denoised
        labels beat the majority baseline on covered rows."""
        seed = income.dataset.subset(range(120))
        rest = income.dataset.subset(range(120, income.dataset.n_rows))
        functions = mine_labeling_rules(seed, min_precision=0.7, max_rules=8)
        votes = apply_labeling_functions(functions, rest.X)
        model = LabelModel().fit(votes)
        covered = (votes != ABSTAIN).any(axis=1)
        assert covered.mean() > 0.1
        acc = accuracy(rest.y[covered], model.predict(votes)[covered])
        majority = max(rest.y.mean(), 1 - rest.y.mean())
        assert acc > majority - 0.05

    def test_unlabelled_seed_rejected(self, income):
        from xaidb.data import Dataset

        unlabelled = Dataset(X=income.dataset.X, features=income.dataset.features)
        with pytest.raises(ValidationError):
            mine_labeling_rules(unlabelled)

    def test_max_rules_respected(self, income):
        seed = income.dataset.subset(range(150))
        functions = mine_labeling_rules(seed, min_precision=0.6, max_rules=3)
        assert len(functions) <= 3

    def test_rules_have_readable_names(self, income):
        seed = income.dataset.subset(range(150))
        functions = mine_labeling_rules(seed, min_precision=0.7, max_rules=4)
        for function in functions:
            assert "=>" in function.name
