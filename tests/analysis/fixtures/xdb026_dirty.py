"""Dirty fixture for XDB026: values provably outside [0, 1] flowing
into probability positions."""

import numpy as np

__all__ = ["predict_proba_margin", "draw_bucket"]


def predict_proba_margin(margin):
    return 2.0 + np.abs(margin)  # finding 1: proven range [2, inf]


def draw_bucket(rng):
    weights = np.full(8, -0.125)  # proven range [-0.125, -0.125]
    return rng.choice(8, p=weights)  # finding 2: negative "probability"
