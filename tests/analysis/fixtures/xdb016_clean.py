"""Clean fixture for XDB016: helpers that thread the caller's seed (or
return a caller-derived generator) carry no literal-seed taint."""

import numpy as np

__all__ = ["make_rng", "wrap_rng", "perturb"]


def make_rng(seed):
    return np.random.default_rng(seed)  # caller-derived entropy


def wrap_rng(seed):
    return make_rng(seed)


def perturb(X, seed):
    rng = wrap_rng(seed)  # the seed threads through the whole chain
    return X + rng.normal(size=X.shape)
