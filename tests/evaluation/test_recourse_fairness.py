import numpy as np
import pytest

from xaidb.data import Dataset, FeatureSpec
from xaidb.evaluation import recourse_cost_disparity
from xaidb.exceptions import ValidationError
from xaidb.explainers.counterfactual import LinearRecourse
from xaidb.models import LogisticRegression


@pytest.fixture(scope="module")
def disparate_setup():
    """A scorer with a direct group penalty: group b needs a larger skill
    change to flip, so its recourse cost must come out higher."""
    rng = np.random.default_rng(0)
    n = 600
    group = (rng.random(n) < 0.5).astype(float)
    skill = rng.normal(size=n)
    logits = 1.5 * skill - 1.2 * group + 0.2 * rng.normal(size=n)
    y = (logits > 0).astype(float)
    dataset = Dataset(
        X=np.column_stack([skill, group]),
        y=y,
        features=[
            FeatureSpec("skill"),
            FeatureSpec(
                "group",
                kind="categorical",
                categories=("a", "b"),
                actionable=False,
            ),
        ],
    )
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    return dataset, LinearRecourse(model, dataset)


class TestRecourseCostDisparity:
    def test_penalised_group_pays_more(self, disparate_setup):
        dataset, recourse = disparate_setup
        stats, ratio = recourse_cost_disparity(recourse, dataset, "group")
        by_group = {s.group: s for s in stats}
        assert by_group["b"].mean_cost > by_group["a"].mean_cost
        assert ratio > 1.2

    def test_counts_cover_denied_population(self, disparate_setup):
        dataset, recourse = disparate_setup
        stats, __ = recourse_cost_disparity(recourse, dataset, "group")
        scores = recourse.model.predict_proba(dataset.X)[:, 1]
        assert sum(s.n_denied for s in stats) == int((scores < 0.5).sum())

    def test_feasibility_reported(self, disparate_setup):
        dataset, recourse = disparate_setup
        stats, __ = recourse_cost_disparity(recourse, dataset, "group")
        for s in stats:
            assert 0.0 <= s.infeasible_rate <= 1.0
            assert s.n_feasible <= s.n_denied

    def test_fair_model_has_ratio_near_one(self):
        """No group term in the scorer: costs should be ~equal."""
        rng = np.random.default_rng(1)
        n = 600
        group = (rng.random(n) < 0.5).astype(float)
        skill = rng.normal(size=n)
        y = (1.5 * skill + 0.2 * rng.normal(size=n) > 0).astype(float)
        dataset = Dataset(
            X=np.column_stack([skill, group]),
            y=y,
            features=[
                FeatureSpec("skill"),
                FeatureSpec(
                    "group",
                    kind="categorical",
                    categories=("a", "b"),
                    actionable=False,
                ),
            ],
        )
        model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
        recourse = LinearRecourse(model, dataset)
        __, ratio = recourse_cost_disparity(recourse, dataset, "group")
        assert ratio < 1.3

    def test_numeric_group_feature_rejected(self, disparate_setup):
        dataset, recourse = disparate_setup
        with pytest.raises(ValidationError):
            recourse_cost_disparity(recourse, dataset, "skill")
