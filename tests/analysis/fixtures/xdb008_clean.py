"""XDB008 clean fixture: conforming concrete explainers."""

from abc import ABC, abstractmethod

__all__ = ["GoodExplainer", "DerivedExplainer"]


class Explainer(ABC):
    @abstractmethod
    def explain(self, *args, **kwargs):
        """Produce an explanation."""


class GoodExplainer(Explainer):
    def explain(self, x):
        return x


class _AbstractMixin(Explainer):
    @abstractmethod
    def explain(self, x):
        """Still abstract — intermediates are not checked."""


class DerivedExplainer(GoodExplainer):
    """Inherits explain() through the chain."""

    def extra(self):
        return None
