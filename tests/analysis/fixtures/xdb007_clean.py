"""XDB007 clean fixture: None defaults constructed inside the body."""

__all__ = ["accumulate"]


def accumulate(value: int, bucket: list | None = None) -> list:
    if bucket is None:
        bucket = []
    bucket.append(value)
    return bucket
