"""The benchmark table renderer must survive every row shape the
harness can produce — including none at all (regression: ``max()`` over
a bare header length raised TypeError on empty rows)."""

from __future__ import annotations

from benchmarks._tables import print_table


def test_print_table_renders_rows(capsys):
    print_table("demo", ["name", "value"], [("a", 1.0), ("bb", 0.25)])
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "name" in out and "bb" in out
    assert "0.25" in out


def test_print_table_empty_rows_regression(capsys):
    print_table("nothing found", ["name", "value"], [])
    out = capsys.readouterr().out
    assert "== nothing found ==" in out
    assert "(no rows)" in out


def test_print_table_floats_are_compact(capsys):
    print_table("fmt", ["x"], [(0.123456789,)])
    out = capsys.readouterr().out
    assert "0.1235" in out
