import numpy as np
import pytest

from xaidb.db import (
    BooleanQueryGame,
    Provenance,
    Relation,
    aggregate,
    aggregate_interventions,
    responsibility,
    shapley_of_tuples,
    shapley_of_tuples_boolean,
    why_not_provenance,
    why_provenance,
)
from xaidb.db.query_explain import all_responsibilities
from xaidb.exceptions import ValidationError


@pytest.fixture()
def disjunctive():
    """answer derivable via d·e1 or d·e2 — the glove-game structure."""
    return Provenance([{"d", "e1"}, {"d", "e2"}])


class TestBooleanShapley:
    def test_glove_structure(self, disjunctive):
        phi = shapley_of_tuples_boolean(disjunctive, ["d", "e1", "e2"])
        assert phi["d"] == pytest.approx(2 / 3)
        assert phi["e1"] == pytest.approx(1 / 6)
        assert phi["e2"] == pytest.approx(1 / 6)

    def test_efficiency(self, disjunctive):
        phi = shapley_of_tuples_boolean(disjunctive, ["d", "e1", "e2"])
        assert sum(phi.values()) == pytest.approx(1.0)

    def test_exogenous_tuples_shift_game(self, disjunctive):
        # with d exogenous (always present), e1 and e2 split the credit
        phi = shapley_of_tuples_boolean(
            disjunctive, ["e1", "e2"], exogenous=["d"]
        )
        assert phi["e1"] == pytest.approx(0.5)
        assert phi["e2"] == pytest.approx(0.5)

    def test_irrelevant_tuple_gets_zero(self, disjunctive):
        phi = shapley_of_tuples_boolean(
            disjunctive, ["d", "e1", "e2", "zzz"]
        )
        assert phi["zzz"] == pytest.approx(0.0)

    def test_sampled_mode_close(self, disjunctive):
        phi = shapley_of_tuples_boolean(
            disjunctive,
            ["d", "e1", "e2"],
            n_permutations=2000,
            random_state=0,
        )
        assert phi["d"] == pytest.approx(2 / 3, abs=0.05)

    def test_empty_endogenous_rejected(self, disjunctive):
        with pytest.raises(ValidationError):
            shapley_of_tuples_boolean(disjunctive, [])

    def test_game_object(self, disjunctive):
        game = BooleanQueryGame(disjunctive, ["d", "e1", "e2"])
        assert game.value([0, 1]) == 1.0
        assert game.value([1, 2]) == 0.0


class TestNumericShapley:
    @pytest.fixture()
    def sales(self):
        return Relation.from_dicts(
            "sales",
            [{"amount": 10.0}, {"amount": 20.0}, {"amount": 30.0}],
        )

    def test_sum_query_gives_amounts(self, sales):
        phi = shapley_of_tuples(
            sales, lambda rel: aggregate(rel, "sum", "amount")
        )
        assert phi["sales:0"] == pytest.approx(10.0)
        assert phi["sales:1"] == pytest.approx(20.0)
        assert phi["sales:2"] == pytest.approx(30.0)

    def test_count_query_symmetric(self, sales):
        phi = shapley_of_tuples(sales, lambda rel: aggregate(rel, "count"))
        assert all(v == pytest.approx(1.0) for v in phi.values())

    def test_max_query(self, sales):
        phi = shapley_of_tuples(
            sales, lambda rel: aggregate(rel, "max", "amount")
        )
        # the max tuple dominates; efficiency: values sum to max(D) - max(∅)=30
        assert sum(phi.values()) == pytest.approx(30.0)
        assert phi["sales:2"] == max(phi.values())

    def test_endogenous_restriction(self, sales):
        phi = shapley_of_tuples(
            sales,
            lambda rel: aggregate(rel, "sum", "amount"),
            endogenous=["sales:0"],
        )
        assert list(phi) == ["sales:0"]
        assert phi["sales:0"] == pytest.approx(10.0)


class TestResponsibility:
    def test_counterfactual_cause_responsibility_one(self, disjunctive):
        assert responsibility(disjunctive, "d") == pytest.approx(1.0)

    def test_contingent_cause_half(self, disjunctive):
        assert responsibility(disjunctive, "e1") == pytest.approx(0.5)

    def test_non_cause_zero(self, disjunctive):
        assert responsibility(disjunctive, "zzz") == 0.0

    def test_max_contingency_budget(self, disjunctive):
        assert responsibility(disjunctive, "e1", max_contingency=0) == 0.0

    def test_all_responsibilities_sorted(self, disjunctive):
        scores = all_responsibilities(disjunctive)
        values = list(scores.values())
        assert values == sorted(values, reverse=True)
        assert list(scores)[0] == "d"


class TestWhyAndWhyNot:
    def test_why_lists_minimal_witnesses(self, disjunctive):
        assert why_provenance(disjunctive) == [["d", "e1"], ["d", "e2"]]

    def test_why_not_reports_missing(self):
        repairs = why_not_provenance(
            [{"a", "b"}, {"a", "c"}], present={"a", "c"}
        )
        assert repairs == [["b"]]

    def test_why_not_sorted_by_repair_size(self):
        repairs = why_not_provenance(
            [{"a", "b", "c"}, {"d"}], present=set()
        )
        assert repairs[0] == ["d"]


class TestAggregateInterventions:
    @pytest.fixture()
    def sales(self):
        return Relation.from_dicts(
            "sales",
            [{"region": "n", "amount": 10.0}, {"region": "n", "amount": 40.0},
             {"region": "s", "amount": 20.0}],
        )

    def test_per_tuple_effects(self, sales):
        effects = dict(
            aggregate_interventions(
                sales, lambda rel: aggregate(rel, "sum", "amount")
            )
        )
        assert effects["sales:1"] == pytest.approx(40.0)

    def test_group_effects(self, sales):
        effects = dict(
            aggregate_interventions(
                sales,
                lambda rel: aggregate(rel, "sum", "amount"),
                groups={"north": ["sales:0", "sales:1"], "south": ["sales:2"]},
            )
        )
        assert effects["north"] == pytest.approx(50.0)
        assert effects["south"] == pytest.approx(20.0)

    def test_sorted_by_magnitude_and_topk(self, sales):
        effects = aggregate_interventions(
            sales, lambda rel: aggregate(rel, "sum", "amount"), top_k=1
        )
        assert effects == [("sales:1", pytest.approx(40.0))]

    def test_unknown_group_member(self, sales):
        from xaidb.exceptions import ProvenanceError

        with pytest.raises(ProvenanceError):
            aggregate_interventions(
                sales,
                lambda rel: aggregate(rel, "count"),
                groups={"bad": ["nope"]},
            )
