"""Persistent worker pool + shared-memory arrays for parallel outer loops.

TMC permutations, permutation-sampling Shapley draws and multi-instance
LIME/KernelSHAP batches are independent given their seeds, so they
parallelise trivially — *provided* determinism survives.  The contract
here: callers pre-spawn one seed per task with
:func:`xaidb.utils.rng.spawn_seeds` and the worker derives all of its
randomness from that seed, so ``parallel_map(fn, tasks, n_jobs=k)``
returns bit-identical results for every ``k`` (including serial).

The seed implementation paid two recurring taxes on top of the work
itself: every ``parallel_map`` call spawned a fresh process pool, and
every task re-pickled its large read-only payloads (the background
dataset, the instance batch) across the process boundary.  Both are
fixed here:

- :class:`WorkerPool` is a lazily created singleton that keeps its
  worker processes alive across calls (``n_pool_reuses`` counts the
  saved spawns; :class:`~xaidb.runtime.stats.EvalStats` surfaces it),
  growing only when a caller asks for more workers than it holds;
- :meth:`WorkerPool.share` places a read-only array in
  :mod:`multiprocessing.shared_memory` once and hands back a
  pickle-cheap :class:`SharedArrayRef`; each worker attaches the
  segment on first use and caches the mapping for the life of the
  process, so the array crosses the process boundary zero times per
  task.

Process pools require picklable work; closures and lambdas (e.g. the
``predict_fn`` adapters) are not.  Rather than making callers probe
picklability, the map falls back to the serial path when the pool cannot
ship the work — results are identical either way, only wall-clock
changes.  ``WorkerPool.close()`` (or interpreter exit) shuts the workers
down and unlinks every shared segment.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.runtime.stats import EvalStats

__all__ = [
    "SharedArrayRef",
    "WorkerPool",
    "parallel_map",
    "resolve_shared",
]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Failures that mean "this work cannot be shipped to a process pool"
#: (unpicklable callables/results, dead workers, missing OS support) —
#: all recoverable by running serially.
_POOL_FAILURES = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    EOFError,
    OSError,
    BrokenProcessPool,
)

#: Per-process cache of attached segments: ``name -> (segment, array)``.
#: Worker processes populate their own copy on first
#: :meth:`SharedArrayRef.load`, which is what makes the payload travel
#: once per worker instead of once per task.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop an *attached* segment from this process's resource tracker.

    On Python < 3.13 every attach registers the segment with the
    resource tracker, which would unlink it (and warn) when the worker
    exits even though the creating process still owns it.  The creator
    keeps its registration; attach-only processes must unregister.
    """
    try:  # pragma: no cover - defensive against stdlib refactors
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    # xailint: disable=XDB005,XDB032 (stdlib-private tracker API varies across versions; cleanup must never break a worker)
    except Exception:  # noqa: BLE001 - cleanup must never break a worker
        pass


def _retrack(segment: shared_memory.SharedMemory) -> None:
    """Re-register a segment with the resource tracker before unlinking.

    The inverse hazard of :func:`_untrack`: under the ``fork`` start
    method workers share the creator's tracker process, so a worker's
    unregister also drops the *creator's* registration — and the
    creator's eventual ``unlink()`` then sends an unbalanced unregister
    that makes the tracker daemon print a ``KeyError`` traceback at
    exit.  Registering (a set-add, idempotent) immediately before
    unlink keeps the tracker's books balanced either way.
    """
    try:  # pragma: no cover - defensive against stdlib refactors
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    # xailint: disable=XDB005,XDB032 (stdlib-private tracker API varies across versions; cleanup must never break shutdown)
    except Exception:  # noqa: BLE001 - cleanup must never break shutdown
        pass


class SharedArrayRef:
    """Pickle-cheap handle to a read-only ndarray in shared memory.

    Created by :meth:`WorkerPool.share`; resolved (in any process) by
    :meth:`load` or the :func:`resolve_shared` pass-through helper.
    """

    def __init__(
        self,
        name: str,
        shape: tuple,
        dtype: np.dtype,
        window: tuple[int, int] | None = None,
    ) -> None:
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        #: optional ``(start, stop)`` row window — :meth:`load` returns
        #: a zero-copy view of those rows
        self.window = window

    def slice(self, start: int, stop: int) -> "SharedArrayRef":
        """Handle to rows ``[start, stop)`` of the shared array.

        The segment is attached once per process regardless of how many
        windows point into it, so fanning one arena array out as many
        window handles ships the data zero times per task — the payload
        each task pickles is just ``(name, shape, dtype, window)``.
        """
        return SharedArrayRef(
            self.name, self.shape, self.dtype, (int(start), int(stop))
        )

    def load(self) -> np.ndarray:
        """Attach (once per process) and return the read-only array
        (or its :attr:`window` view)."""
        cached = _ATTACHED.get(self.name)
        if cached is None:
            segment = shared_memory.SharedMemory(name=self.name)
            _untrack(segment)
            array = np.ndarray(
                self.shape, dtype=self.dtype, buffer=segment.buf
            )
            array.flags.writeable = False
            cached = _ATTACHED[self.name] = (segment, array)
        if self.window is not None:
            return cached[1][self.window[0] : self.window[1]]
        return cached[1]


def resolve_shared(payload):
    """``payload.load()`` for :class:`SharedArrayRef`, identity
    otherwise — lets one task function serve both the pooled path
    (handles) and the serial path (plain arrays)."""
    if isinstance(payload, SharedArrayRef):
        return payload.load()
    return payload


class WorkerPool:
    """Lazily created, persistent process pool + shared-memory arena.

    One instance (the module singleton reached through :meth:`get`)
    outlives individual ``parallel_map`` calls, so repeated explainer
    invocations reuse warm workers instead of paying pool spawn and
    interpreter start-up per call.  The pool grows when a caller asks
    for more workers than it holds and is indifferent to smaller
    requests — task results never depend on worker count, only
    wall-clock does.

    Counters: ``n_maps`` (pool-served maps) and ``n_pool_reuses``
    (maps served by already-warm workers); ``parallel_map`` mirrors the
    latter into the caller's :class:`~xaidb.runtime.stats.EvalStats`.
    """

    _global: "WorkerPool | None" = None

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._max_workers = 0
        #: ``id(source) -> (source, segment, ref)``; holding ``source``
        #: keeps the id stable for the memo.
        self._segments: dict[int, tuple] = {}
        self.n_maps = 0
        self.n_pool_reuses = 0

    # ------------------------------------------------------------------
    @classmethod
    def get(cls) -> "WorkerPool":
        """The process-wide pool, created on first use."""
        if cls._global is None:
            cls._global = WorkerPool()
        return cls._global

    @classmethod
    def close_global(cls) -> None:
        """Shut down the singleton (workers + shared segments)."""
        if cls._global is not None:
            cls._global.close()
            cls._global = None

    # ------------------------------------------------------------------
    def share(self, array: np.ndarray) -> SharedArrayRef:
        """Place ``array`` in a shared segment (memoised per source
        object) and return its handle.

        The copy happens once; subsequent ``share`` calls with the same
        object return the existing handle, which is how repeated
        explainer calls over one background dataset ship it exactly
        once for the life of the pool.
        """
        entry = self._segments.get(id(array))
        if entry is not None:
            return entry[2]
        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, contiguous.nbytes)
        )
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
        )
        view[...] = contiguous
        view.flags.writeable = False
        ref = SharedArrayRef(segment.name, contiguous.shape, contiguous.dtype)
        # pre-populate this process's attach cache so the serial
        # fallback reads the same segment without re-attaching
        _ATTACHED[ref.name] = (segment, view)
        self._segments[id(array)] = (array, segment, ref)
        return ref

    @property
    def n_shared_arrays(self) -> int:
        """Arrays currently resident in the shared arena."""
        return len(self._segments)

    # ------------------------------------------------------------------
    def _ensure_workers(self, n_workers: int) -> bool:
        """Make sure the executor holds >= ``n_workers`` workers;
        returns True when the existing (warm) pool could serve the
        request as-is."""
        if self._executor is not None and self._max_workers >= n_workers:
            return True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        # test hook: force a start method (fork/spawn/forkserver) so the
        # determinism contract can be pinned under each of them
        method = os.environ.get("XAIDB_POOL_START_METHOD")
        self._executor = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=(
                multiprocessing.get_context(method) if method else None
            ),
        )
        self._max_workers = n_workers
        return False

    def map(
        self,
        fn: Callable[[_Task], _Result],
        tasks: Sequence[_Task],
        *,
        n_jobs: int,
    ) -> tuple[list, bool]:
        """Order-preserving pooled map; returns ``(results, reused)``.

        Raises one of the pool-shippability failures when the work
        cannot cross the process boundary — the caller owns the serial
        fallback.
        """
        reused = self._ensure_workers(min(n_jobs, len(tasks)))
        futures = [self._executor.submit(fn, task) for task in tasks]
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool:
            # dead workers poison the executor; discard it so the next
            # call starts clean
            self._executor = None
            self._max_workers = 0
            raise
        except BaseException:
            # quiesce before re-raising: cancel what has not started
            # and let in-flight tasks finish, so the caller's fallback
            # bookkeeping (e.g. retrack_segments) cannot race a worker
            # that is still attaching/untracking arena segments
            for future in futures:
                future.cancel()
            wait(futures)
            raise
        self.n_maps += 1
        if reused:
            self.n_pool_reuses += 1
        return results, reused

    # ------------------------------------------------------------------
    def retrack_segments(self) -> None:
        """Re-register every arena segment with the resource tracker.

        Under the ``fork`` start method workers share the creator's
        tracker daemon, so a worker's attach (which calls
        :func:`_untrack`) strips the *creator's* registration too.
        That is harmless while :meth:`close` runs — it re-registers
        before unlinking — but a map that died mid-flight and fell back
        to serial leaves the segments untracked: if the process then
        exits without ``close()``, nothing reaps them from
        ``/dev/shm``.  Calling this on the fallback path restores the
        safety net (``register`` is a set-add, so double-tracking is
        impossible).
        """
        for __, segment, _ref in self._segments.values():
            _retrack(segment)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down workers and unlink every shared segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._max_workers = 0
        for __, segment, ref in self._segments.values():
            _ATTACHED.pop(ref.name, None)
            try:
                segment.close()
                _retrack(segment)
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


atexit.register(WorkerPool.close_global)


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    *,
    n_jobs: int | None = None,
    stats: EvalStats | None = None,
) -> list[_Result]:
    """Order-preserving ``[fn(t) for t in tasks]`` with optional workers.

    Parameters
    ----------
    fn:
        Pure task function; all randomness must come from the task
        payload (a spawned seed), never from global state.
    tasks:
        Task payloads; results are returned in task order.
    n_jobs:
        ``None`` or ``1`` runs serially in-process; ``k > 1`` uses up to
        ``k`` processes from the persistent :class:`WorkerPool`,
        falling back to serial execution when the work cannot be
        pickled across the process boundary.
    stats:
        Optional ledger; its ``n_pool_reuses`` counter is bumped when
        this map was served by already-warm workers (the second and
        later pooled calls of a session).
    """
    if n_jobs is not None and n_jobs < 1:
        raise ValidationError("n_jobs must be >= 1 or None")
    task_list: Sequence[_Task] = list(tasks)
    if n_jobs is None or n_jobs == 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    pool = WorkerPool.get()
    try:
        results, reused = pool.map(fn, task_list, n_jobs=n_jobs)
    except _POOL_FAILURES:
        # fork-mode workers may already have untracked the creator's
        # arena segments; rebalance the tracker's books before running
        # serially so a crash without close() still gets reaped
        pool.retrack_segments()
        if stats is not None:
            stats.n_serial_fallbacks += 1
        return [fn(task) for task in task_list]
    if stats is not None and reused:
        stats.n_pool_reuses += 1
    return results
