"""Dirty fixture for XDB013: stores no path ever reads."""

__all__ = ["overwritten_before_use", "unused_unpack_slot"]


def overwritten_before_use(a):
    x = a * a  # finding 1: every path redefines x before reading it
    if a > 0:
        x = 1.0
    else:
        x = 2.0
    return x


def unused_unpack_slot(pairs):
    total = 0.0
    for pair in pairs:
        lo, hi = pair[0], pair[1]  # finding 2: 'hi' is never read
        total += lo
    return total
