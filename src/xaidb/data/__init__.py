"""Tabular data substrate: the :class:`Dataset` container, synthetic
workload generators with ground-truth causal models, perturbation samplers
for neighborhood-based explainers, and transaction databases for rule
mining."""

from xaidb.data.dataset import Dataset, FeatureSpec
from xaidb.data.perturbation import ConditionalSampler, LimeTabularSampler
from xaidb.data.synthetic import (
    SyntheticWorkload,
    make_credit,
    make_income,
    make_loans,
    make_recidivism,
    make_two_moons,
)
from xaidb.data.transactions import TransactionDatabase, make_transactions

__all__ = [
    "Dataset",
    "FeatureSpec",
    "LimeTabularSampler",
    "ConditionalSampler",
    "SyntheticWorkload",
    "make_income",
    "make_credit",
    "make_recidivism",
    "make_loans",
    "make_two_moons",
    "TransactionDatabase",
    "make_transactions",
]
