"""XDB009 dirty fixture: per-iteration predict_fn calls inside loops."""

import numpy as np

__all__ = ["loop_explainer", "LoopExplainer"]


def loop_explainer(predict_fn, masks: np.ndarray) -> np.ndarray:
    values = np.empty(len(masks))
    for i, mask in enumerate(masks):  # per-coalition model call
        values[i] = float(predict_fn(mask[None, :])[0])
    return values


class LoopExplainer:
    def __init__(self, predict_fn) -> None:
        self.predict_fn = predict_fn

    def explain(self, rows: np.ndarray) -> list:
        # attribute access and comprehensions count too
        return [float(self.predict_fn(row[None, :])[0]) for row in rows]
