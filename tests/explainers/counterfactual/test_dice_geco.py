import numpy as np
import pytest

from xaidb.exceptions import InfeasibleError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import DiceExplainer, GecoExplainer
from xaidb.models import LogisticRegression


@pytest.fixture(scope="module")
def credit_model(credit):
    return LogisticRegression(l2=1e-2).fit(credit.dataset.X, credit.dataset.y)


@pytest.fixture(scope="module")
def denied_instance(credit, credit_model):
    f = predict_positive_proba(credit_model)
    scores = f(credit.dataset.X)
    # a clearly denied but not hopeless instance
    candidates = np.flatnonzero((scores > 0.05) & (scores < 0.3))
    return credit.dataset.X[candidates[0]]


class TestDice:
    def test_counterfactuals_flip_decision(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        dice = DiceExplainer(f, credit.dataset, n_iterations=300)
        cfs = dice.generate(denied_instance, n_counterfactuals=3, random_state=0)
        assert cfs.validity() == 1.0

    def test_immutables_never_changed(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        dice = DiceExplainer(f, credit.dataset, n_iterations=200)
        cfs = dice.generate(denied_instance, n_counterfactuals=3, random_state=1)
        age = credit.dataset.feature_index("age")
        for cf in cfs:
            assert cf.counterfactual[age] == pytest.approx(denied_instance[age])

    def test_monotone_respected(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        dice = DiceExplainer(f, credit.dataset, n_iterations=200)
        cfs = dice.generate(denied_instance, n_counterfactuals=3, random_state=2)
        savings = credit.dataset.feature_index("savings")
        for cf in cfs:
            assert cf.counterfactual[savings] >= denied_instance[savings] - 1e-9

    def test_requested_count_returned(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        dice = DiceExplainer(f, credit.dataset, n_iterations=100)
        cfs = dice.generate(denied_instance, n_counterfactuals=5, random_state=3)
        assert len(cfs) == 5

    def test_deterministic(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        dice = DiceExplainer(f, credit.dataset, n_iterations=100)
        a = dice.generate(denied_instance, n_counterfactuals=2, random_state=4)
        b = dice.generate(denied_instance, n_counterfactuals=2, random_state=4)
        assert np.allclose(a[0].counterfactual, b[0].counterfactual)

    def test_diversity_weight_increases_diversity(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        low = DiceExplainer(
            f, credit.dataset, n_iterations=300, diversity_weight=0.0
        ).generate(denied_instance, n_counterfactuals=4, random_state=5)
        high = DiceExplainer(
            f, credit.dataset, n_iterations=300, diversity_weight=3.0
        ).generate(denied_instance, n_counterfactuals=4, random_state=5)
        assert high.diversity() >= low.diversity() - 1e-9

    def test_target_class_zero(self, credit, credit_model):
        f = predict_positive_proba(credit_model)
        scores = f(credit.dataset.X)
        approved = credit.dataset.X[int(np.argmax(scores))]
        dice = DiceExplainer(f, credit.dataset, n_iterations=300)
        cfs = dice.generate(approved, n_counterfactuals=2, random_state=6)
        assert cfs.validity() > 0.0  # flipped down to denial


class TestGeco:
    def test_finds_valid_sparse_counterfactuals(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(f, credit.dataset, n_generations=20)
        cfs = geco.generate(denied_instance, n_counterfactuals=3, random_state=0)
        assert cfs.validity() == 1.0
        assert cfs.sparsity() <= 3.5

    def test_feasibility_constraints_respected(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(f, credit.dataset, n_generations=15)
        cfs = geco.generate(denied_instance, n_counterfactuals=3, random_state=1)
        age = credit.dataset.feature_index("age")
        savings = credit.dataset.feature_index("savings")
        for cf in cfs:
            assert cf.counterfactual[age] == pytest.approx(denied_instance[age])
            assert cf.counterfactual[savings] >= denied_instance[savings] - 1e-9

    def test_plausibility_check(self, credit, credit_model):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(f, credit.dataset, n_generations=5)
        on_manifold = credit.dataset.X[10]
        off_manifold = credit.dataset.X.max(axis=0) * 5.0
        assert geco.is_plausible(on_manifold)
        assert not geco.is_plausible(off_manifold)

    def test_plausibility_disabled(self, credit, credit_model):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(
            f, credit.dataset, n_generations=5, require_plausible=False
        )
        assert geco.is_plausible(credit.dataset.X.max(axis=0) * 5.0)

    def test_counterfactuals_are_plausible(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(f, credit.dataset, n_generations=20)
        cfs = geco.generate(denied_instance, n_counterfactuals=3, random_state=2)
        for cf in cfs:
            assert geco.is_plausible(cf.counterfactual)

    def test_infeasible_raises(self, credit):
        """A constant model can never flip: GeCo must say so."""
        constant = lambda X: np.full(X.shape[0], 0.1)
        geco = GecoExplainer(constant, credit.dataset, n_generations=3)
        with pytest.raises(InfeasibleError):
            geco.generate(credit.dataset.X[0], random_state=3)

    def test_deterministic(self, credit, credit_model, denied_instance):
        f = predict_positive_proba(credit_model)
        geco = GecoExplainer(f, credit.dataset, n_generations=10)
        a = geco.generate(denied_instance, n_counterfactuals=1, random_state=4)
        b = geco.generate(denied_instance, n_counterfactuals=1, random_state=4)
        assert np.allclose(a[0].counterfactual, b[0].counterfactual)
