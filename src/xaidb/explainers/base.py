"""Common explanation containers and model-adapter helpers.

Model-agnostic explainers in xaidb consume a *prediction function*
``f(X) -> scores`` rather than a model object, so they work on literally
any callable (tutorial dimension (b): model-agnostic).  The adapters here
standardise how models are wrapped into such functions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = [
    "PredictFn",
    "Explainer",
    "as_predict_fn",
    "predict_positive_proba",
    "FeatureAttribution",
]

PredictFn = Callable[[np.ndarray], np.ndarray]


class Explainer(ABC):
    """Abstract interface every xaidb explanation method implements.

    The contract is deliberately thin — one entry point, ``explain`` —
    so that pipelines, benchmarks and evaluation harnesses can treat
    feature-attribution, rule-based and counterfactual methods
    uniformly.  Methods whose historical entry point has a more specific
    name (``generate`` for counterfactual search, ``shapley_qii`` for
    QII) keep that name and alias it from ``explain``.

    Conformance is machine-checked: rule XDB008 of the xailint pass
    (:mod:`xaidb.analysis`) verifies statically that every concrete
    ``*Explainer`` class in this package subclasses this interface and
    implements its abstract surface.
    """

    @abstractmethod
    def explain(self, *args: Any, **kwargs: Any) -> Any:
        """Produce an explanation for one instance (or globally).

        Signatures vary by method family; see the concrete class.
        """


def as_predict_fn(
    model: Any,
    *,
    output: str = "probability",
    class_index: int = 1,
) -> PredictFn:
    """Wrap a fitted model into a scalar-output prediction function.

    Parameters
    ----------
    model:
        Fitted estimator.
    output:
        ``"probability"`` uses ``predict_proba[:, class_index]``;
        ``"margin"`` uses ``decision_function``; ``"value"`` uses
        ``predict`` (regression or hard labels).
    class_index:
        Which class probability to expose for ``"probability"``.
    """
    if output == "probability":
        if not hasattr(model, "predict_proba"):
            raise ValidationError(
                f"{type(model).__name__} has no predict_proba; "
                f"use output='value'"
            )
        return lambda X: np.asarray(model.predict_proba(X))[:, class_index]
    if output == "margin":
        if not hasattr(model, "decision_function"):
            raise ValidationError(
                f"{type(model).__name__} has no decision_function"
            )
        return lambda X: np.asarray(model.decision_function(X))
    if output == "value":
        return lambda X: np.asarray(model.predict(X), dtype=float)
    raise ValidationError(
        f"output must be 'probability', 'margin' or 'value', got {output!r}"
    )


def predict_positive_proba(model: Any) -> PredictFn:
    """Shorthand for the positive-class probability function."""
    return as_predict_fn(model, output="probability", class_index=1)


@dataclass
class FeatureAttribution:
    """A per-feature importance explanation for one instance (or globally).

    Attributes
    ----------
    feature_names:
        Names aligned with ``values``.
    values:
        Signed attribution per feature.
    base_value:
        The explainer's reference output (e.g. the mean prediction for
        Shapley methods, the surrogate intercept for LIME).
    prediction:
        The black-box output being explained, when known.
    metadata:
        Method-specific extras (surrogate R^2, sample counts, ...).
    """

    feature_names: list[str]
    values: np.ndarray
    base_value: float = 0.0
    prediction: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = check_array(self.values, name="values", ndim=1)
        check_matching_lengths(
            ("feature_names", self.feature_names), ("values", self.values)
        )

    def as_dict(self) -> dict[str, float]:
        """``{feature_name: attribution}`` mapping."""
        return {
            name: float(value)
            for name, value in zip(self.feature_names, self.values)
        }

    def ranked(self) -> list[tuple[str, float]]:
        """Features sorted by decreasing absolute attribution."""
        order = np.argsort(-np.abs(self.values), kind="mergesort")
        return [
            (self.feature_names[i], float(self.values[i])) for i in order
        ]

    def top(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` most important features."""
        if k < 1:
            raise ValidationError("k must be >= 1")
        return self.ranked()[:k]

    def additive_check(self, *, atol: float = 1e-6) -> bool:
        """Whether ``base_value + sum(values)`` reproduces ``prediction``
        (the local-accuracy / efficiency axiom).  Requires ``prediction``."""
        if self.prediction is None:
            raise ValidationError("additive_check requires a prediction")
        return bool(
            np.isclose(
                self.base_value + float(self.values.sum()),
                self.prediction,
                atol=atol,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{n}={v:+.4f}" for n, v in self.top(3))
        return f"FeatureAttribution({parts}, ...)"
